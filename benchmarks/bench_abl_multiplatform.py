"""ABL2 — multi-platform task execution (paper §2, §4.2).

"one may aggregate large datasets with traditional queries on top of a
relational database such as PostgreSQL, but ML tasks might be much
faster if executed on Spark."

A two-stage pipeline — relational-friendly aggregation feeding a
UDF-heavy scoring stage — is costed for each single platform and for the
free multi-platform assignment; the optimizer's choice must never be
worse than the best single platform, and on a workload with strongly
platform-skewed stages it genuinely mixes platforms.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import ms, pick, record_bench, record_table
from repro import CostHints, RheemContext
from repro.core.optimizer.cost import MovementCostModel
from repro.core.types import Schema
from repro.platforms import JavaPlatform, PostgresPlatform, SparkPlatform
from repro.platforms.java.platform import JavaCostModel
from repro.platforms.postgres.platform import PostgresCostModel

ROWS = pick(50_000, 20_000)


def measurements(n):
    schema = Schema(["well", "depth", "pressure"])
    return [
        schema.record(i % 40, float(i % 997), float((i * 31) % 500))
        for i in range(n)
    ]


def pipeline(ctx, rows):
    return (
        ctx.collection(rows)
        .filter(lambda r: r["pressure"] > 100.0,
                hints=CostHints(selectivity=0.8))
        .group_by(lambda r: r["well"], hints=CostHints(key_fanout=0.001))
        .map(
            lambda kv: (kv[0], sum(r["pressure"] for r in kv[1]) / len(kv[1])),
            name="featurize",
            hints=CostHints(udf_load=2000.0),
        )
        .sort(lambda kv: kv[0])
    )


def test_abl2_mixed_vs_single_platform(benchmark):
    # A context where the relational stage is dramatically cheaper on the
    # relational platform and the UDF stage dramatically cheaper in-process,
    # with cheap movement: the classic mixed-plan sweet spot.
    platforms = [
        JavaPlatform(cost_model=JavaCostModel(startup=5.0)),
        PostgresPlatform(
            cost_model=PostgresCostModel(
                startup=5.0, relational_unit_ms=0.00001, udf_unit_ms=0.05
            )
        ),
        SparkPlatform(),
    ]
    ctx = RheemContext(
        platforms=platforms,
        movement=MovementCostModel(per_transfer_ms=0.5, per_quantum_ms=0.0005),
    )
    rows = measurements(ROWS)
    handle = pipeline(ctx, rows)
    physical = ctx.app_optimizer.optimize(handle.plan)

    table = record_table(
        "ABL2",
        f"aggregation->UDF pipeline over {ROWS} rows — estimated cost per "
        "platform assignment",
        ["assignment", "estimated virtual time"],
    )
    singles = {}
    for name in ("java", "spark", "postgres"):
        singles[name] = ctx.task_optimizer.estimated_plan_cost(physical, name)
        table.rows.append([f"all-{name}", ms(singles[name])])
    mixed = ctx.task_optimizer.estimated_plan_cost(physical)
    table.rows.append(["optimizer (free choice)", ms(mixed)])

    execution = ctx.task_optimizer.optimize(physical)
    used = sorted({atom.platform.name for atom in execution.atoms})
    table.rows.append(["platforms used by chosen plan", "+".join(used)])
    table.notes.append(
        "the multi-platform plan is never worse than the best single "
        "platform; with skewed stage affinities it splits the pipeline"
    )
    record_bench(
        "ABL2",
        rows=ROWS,
        single_platform_ms=singles,
        mixed_ms=mixed,
        platforms_used=used,
        mixed_never_worse=mixed <= min(singles.values()) + 1e-6,
    )
    assert mixed <= min(singles.values()) + 1e-6
    assert len(used) >= 2, f"expected a mixed plan, got {used}"

    out = pipeline(ctx, rows).collect()
    reference = pipeline(RheemContext(), rows).collect(platform="java")
    assert out == reference

    small = measurements(2_000)
    benchmark.pedantic(
        lambda: pipeline(ctx, small).collect(), rounds=3, iterations=1
    )
