"""ABL3 — inter-platform data-movement costs (paper §4.2, aspect 3).

The paper contrasts RHEEM with Musketeer, which "considers neither the
costs of data movement across processing platforms nor the fact that
multiple platforms may be able to perform the same job".  This ablation
optimizes the same plan twice — once with the movement cost model, once
with movement priced at zero (Musketeer-style) — then *executes both
under the real movement model* and compares the bill.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import ms, pick, record_bench, record_table
from repro import CostHints, RheemContext
from repro.core.optimizer.cost import FreeMovementCostModel, MovementCostModel
from repro.platforms import JavaPlatform, PostgresPlatform
from repro.platforms.java.platform import JavaCostModel
from repro.platforms.postgres.platform import PostgresCostModel

ROWS = pick(40_000, 8_000)
#: an expensive interconnect: what moving tuples between engines costs
REAL_MOVEMENT = MovementCostModel(per_transfer_ms=20.0, per_quantum_ms=0.01)


def build_platforms():
    """Two platforms with mildly skewed affinities, so that ignoring
    movement makes bouncing between them *look* attractive."""
    java = JavaPlatform(cost_model=JavaCostModel(startup=2.0))
    postgres = PostgresPlatform(
        cost_model=PostgresCostModel(
            startup=2.0, relational_unit_ms=0.0002, udf_unit_ms=0.002
        )
    )
    return [java, postgres]


def pipeline(ctx, rows):
    # Alternating relational / UDF steps over a *large* intermediate: a
    # movement-naive optimizer flip-flops platforms between steps.
    return (
        ctx.collection(rows)
        .filter(lambda t: t[1] % 3 != 0, hints=CostHints(selectivity=0.66))
        .map(lambda t: (t[0], t[1] * 2), name="udf1",
             hints=CostHints(udf_load=6.0))
        .filter(lambda t: t[1] % 5 != 0, hints=CostHints(selectivity=0.8))
        .map(lambda t: (t[0], t[1] + 1), name="udf2",
             hints=CostHints(udf_load=6.0))
        .count()
    )


def run_with(optimizer_movement, rows):
    ctx = RheemContext(platforms=build_platforms(), movement=optimizer_movement)
    # Execution is always billed with the REAL movement model.
    ctx.executor.movement = REAL_MOVEMENT
    out, metrics = pipeline(ctx, rows).collect_with_metrics()
    return out, metrics


def test_abl3_movement_aware_vs_naive(benchmark):
    rows = [(i, i * 7) for i in range(ROWS)]
    aware_out, aware = run_with(REAL_MOVEMENT, rows)
    naive_out, naive = run_with(FreeMovementCostModel(), rows)
    assert aware_out == naive_out

    table = record_table(
        "ABL3",
        f"movement-aware vs movement-naive optimization ({ROWS} rows, "
        "both executed under the real movement bill)",
        ["optimizer", "total virtual", "movement share", "platforms"],
    )
    for label, metrics in (("movement-aware", aware), ("movement-naive", naive)):
        table.rows.append(
            [
                label,
                ms(metrics.virtual_ms),
                ms(metrics.movement_ms),
                "+".join(sorted(metrics.by_platform())),
            ]
        )
    table.notes.append(
        "paper: Musketeer 'considers neither the costs of data movement "
        "across processing platforms ...' — the naive plan pays for it at "
        "run time"
    )
    record_bench(
        "ABL3",
        rows=ROWS,
        aware_virtual_ms=aware.virtual_ms,
        naive_virtual_ms=naive.virtual_ms,
        aware_movement_ms=aware.movement_ms,
        naive_movement_ms=naive.movement_ms,
        outputs_identical=aware_out == naive_out,
    )
    assert aware.virtual_ms <= naive.virtual_ms + 1e-6
    assert aware.movement_ms <= naive.movement_ms + 1e-6

    small = [(i, i * 7) for i in range(2_000)]
    benchmark.pedantic(
        lambda: run_with(REAL_MOVEMENT, small), rounds=3, iterations=1
    )
