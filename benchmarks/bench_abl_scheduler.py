"""ABL10 — concurrent DAG scheduler (parallel atom execution).

The Executor's concurrent scheduler (``repro.core.scheduler``) runs
independent task atoms on worker threads while replaying every stateful
effect — ledger charges, spans, health transitions, counters — in plan
order on the coordinator.  The contract this ablation pins down:

* **identical results** — outputs are byte-identical at any
  parallelism;
* **identical bill** — ``virtual_ms`` (the simulated cost) is *exactly*
  the sequential value, entry for entry, because replay preserves the
  sequential ledger order;
* **real wall-clock speedup** — the atoms here carry latency-bound UDFs
  (simulated I/O waits), so threads overlap them despite the GIL; the
  branching multi-sink plan finishes ≥1.5x faster at parallelism 4;
* **makespan ≤ virtual** — the critical-path clock (what a perfectly
  parallel deployment would pay) never exceeds the serialized bill.
"""

from __future__ import annotations

import time

from benchmarks.harness import (
    maybe_resources,
    ms,
    pick,
    ratio,
    record_bench,
    record_table,
)
from repro.core.executor import Executor
from repro.core.logical.operators import CollectionSource, CollectSink, Map
from repro.core.logical.plan import LogicalPlan
from repro.core.optimizer.application import ApplicationOptimizer
from repro.core.optimizer.enumerator import MultiPlatformOptimizer
from repro.platforms import JavaPlatform

#: independent source→map→sink pipelines (each becomes its own atom)
PIPELINES = pick(6, 4)
#: rows per pipeline
ROWS = pick(30, 12)
#: simulated per-row I/O wait inside the UDF (latency-bound, not
#: CPU-bound, so worker threads genuinely overlap under the GIL)
SLEEP_S = 0.002

PARALLELISMS = (1, 2, 4)


def _udf(offset):
    def work(x):
        time.sleep(SLEEP_S)
        return x * 7 + offset

    return work


def branching_plan() -> LogicalPlan:
    """PIPELINES independent pipelines in one multi-sink plan.

    Separate sources keep the greedy atom cutter from fusing the
    branches into one atom — the plan really does offer
    ``PIPELINES``-way parallelism.
    """
    plan = LogicalPlan()
    for p in range(PIPELINES):
        src = plan.add(CollectionSource(list(range(p * ROWS, (p + 1) * ROWS))))
        mapped = plan.add(Map(_udf(p)), [src])
        plan.add(CollectSink(), [mapped])
    return plan


def test_abl10_concurrent_scheduler():
    physical = ApplicationOptimizer().optimize(branching_plan())
    optimizer = MultiPlatformOptimizer([JavaPlatform()])

    table = record_table(
        "ABL10",
        f"concurrent DAG scheduler — {PIPELINES} independent pipelines "
        f"x {ROWS} rows, {SLEEP_S * 1000:.0f}ms simulated I/O per row",
        ["parallelism", "wall", "speedup", "virtual time", "makespan",
         "identical"],
    )

    runs = {}
    for parallelism in PARALLELISMS:
        execution = optimizer.optimize(physical)
        executor = Executor(parallelism=parallelism)
        started = time.perf_counter()
        result = executor.execute(execution)
        wall_s = time.perf_counter() - started
        runs[parallelism] = (result, wall_s)

    base_result, base_wall = runs[PARALLELISMS[0]]
    for parallelism in PARALLELISMS:
        result, wall_s = runs[parallelism]
        metrics = result.metrics
        identical = (
            result.outputs == base_result.outputs
            and metrics.virtual_ms == base_result.metrics.virtual_ms
        )
        table.rows.append([
            parallelism,
            ms(wall_s * 1000.0),
            ratio(base_wall, wall_s),
            ms(metrics.virtual_ms),
            ms(metrics.makespan_ms),
            "yes" if identical else "NO!",
        ])
        # the determinism contract: same answers, same bill, at any width
        assert result.outputs == base_result.outputs
        assert metrics.virtual_ms == base_result.metrics.virtual_ms
        assert metrics.makespan_ms <= metrics.virtual_ms

    _, wide_wall = runs[PARALLELISMS[-1]]
    speedup = base_wall / wide_wall
    table.notes.append(
        f"wall-clock speedup at parallelism {PARALLELISMS[-1]}: "
        f"{speedup:.1f}x (virtual time unchanged — the bill is "
        "deterministic, only the clock moves)"
    )
    record_bench(
        "ABL10",
        pipelines=PIPELINES,
        rows=ROWS,
        parallelisms=list(PARALLELISMS),
        wall_ms={str(p): wall_s * 1000.0 for p, (_, wall_s) in runs.items()},
        virtual_ms=base_result.metrics.virtual_ms,
        speedup=speedup,
        speedup_floor=1.5,
        deterministic=True,
        **maybe_resources(runs[PARALLELISMS[-1]][0].metrics),
    )
    assert speedup >= 1.5, (
        f"expected >=1.5x wall speedup at parallelism "
        f"{PARALLELISMS[-1]}, got {speedup:.2f}x"
    )
