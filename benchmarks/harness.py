"""Benchmark harness utilities.

Each benchmark registers the tables/series it reproduces (one per paper
figure or ablation) through :func:`record_table`; the ``conftest``
terminal-summary hook prints every recorded table after the run — so the
table output survives pytest's output capture — and mirrors it into
``benchmarks/results/latest.txt`` for EXPERIMENTS.md.

Scale is controlled with ``REPRO_BENCH_SCALE``:

* ``full``  (default) — the sweep sizes quoted in EXPERIMENTS.md;
* ``quick`` — reduced sizes for smoke runs.

Tracing is opt-in with ``REPRO_TRACE_DIR``: when set to a directory,
:func:`traced_context` attaches a
:class:`~repro.core.observability.Tracer` to the contexts it hands out
and writes one Chrome trace-event JSON file per traced run into that
directory (``<name>.trace.json``).  Unset (the default) the benchmarks
run untraced — zero spans, zero overhead.

Baselines the paper had to kill ("we had to stop after 22 hours") are
mirrored with a *virtual-time cap*: when a baseline's predicted virtual
time exceeds :data:`VIRTUAL_CAP_MS`, the row reports ``>cap`` instead of
burning wall-clock on a hopeless configuration.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field

#: virtual-time cap standing in for the paper's 22-hour baseline kill
VIRTUAL_CAP_MS = 60 * 60 * 1000.0  # one virtual hour


def scale() -> str:
    """Benchmark scale: ``full`` or ``quick`` (REPRO_BENCH_SCALE)."""
    value = os.environ.get("REPRO_BENCH_SCALE", "full").lower()
    return value if value in ("full", "quick") else "full"


def pick(full_value, quick_value):
    """Choose a parameter by the active scale."""
    return quick_value if scale() == "quick" else full_value


def trace_dir() -> str | None:
    """Trace output directory (REPRO_TRACE_DIR), or None when untraced."""
    value = os.environ.get("REPRO_TRACE_DIR", "").strip()
    return value or None


@contextmanager
def traced_context(name: str, ctx=None):
    """Yield a :class:`RheemContext`, traced when REPRO_TRACE_DIR is set.

    With tracing off this is just ``RheemContext()`` (or the passed
    ``ctx``) — no tracer, no spans.  With tracing on, a fresh tracer is
    attached and the span tree is exported to
    ``$REPRO_TRACE_DIR/<name>.trace.json`` on exit.
    """
    from repro import RheemContext

    ctx = ctx or RheemContext()
    directory = trace_dir()
    if directory is None:
        yield ctx
        return

    from repro import Tracer, write_chrome_trace

    tracer = Tracer()
    ctx.attach_tracer(tracer)
    try:
        yield ctx
    finally:
        ctx.attach_tracer(None)
        os.makedirs(directory, exist_ok=True)
        write_chrome_trace(
            tracer, os.path.join(directory, f"{name}.trace.json")
        )


@dataclass
class Table:
    """One recorded result table."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        widths = [
            max(len(str(cell)) for cell in column)
            for column in zip(self.headers, *self.rows)
        ] if self.rows else [len(h) for h in self.headers]

        def fmt(cells):
            return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))

        lines = [f"== {self.exp_id}: {self.title} ==", fmt(self.headers)]
        lines.append("  ".join("-" * w for w in widths))
        lines.extend(fmt(row) for row in self.rows)
        lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)


#: global registry the conftest summary hook drains
_TABLES: list[Table] = []

#: machine-readable payloads, one per experiment id; the conftest hook
#: writes each as ``benchmarks/results/BENCH_<exp_id>.json``
_BENCH: dict[str, dict] = {}


def record_table(exp_id: str, title: str, headers: list[str]) -> Table:
    """Create and register a result table; fill rows via ``table.rows``."""
    table = Table(exp_id, title, list(headers))
    _TABLES.append(table)
    return table


def recorded_tables() -> list[Table]:
    return list(_TABLES)


def record_bench(exp_id: str, **payload) -> dict:
    """Register a machine-readable result payload for one experiment.

    The conftest terminal-summary hook serialises each payload to
    ``benchmarks/results/BENCH_<exp_id>.json`` with run provenance
    (scale, git sha, UTC timestamp) merged in, so CI and dashboards can
    assert on numbers without scraping the rendered tables.  Repeated
    calls for the same ``exp_id`` merge keys (last write wins).
    """
    entry = _BENCH.setdefault(exp_id, {})
    entry.update(payload)
    return entry


def recorded_benches() -> dict[str, dict]:
    return dict(_BENCH)


def write_atomic(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (write-temp + rename).

    A bench run that crashes mid-write must never leave a truncated
    ``latest.txt`` / ``BENCH_*.json`` behind: the temp file lives in the
    same directory so ``os.replace`` is an atomic rename, and the data
    is fsync'd before the swap so the rename never publishes an
    incomplete file.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


#: history file name under benchmarks/results/ — one JSON document per
#: line, one line per experiment per bench run (the perf observatory's
#: durable record; ``repro report`` reads it)
HISTORY_NAME = "history.jsonl"


def append_history(results_dir: str, documents: list[dict]) -> str:
    """Append bench documents to ``results/history.jsonl``, durably.

    Appends are a single ``write`` per line followed by ``fsync``, so a
    crash can at worst tear the final line — ``repro report`` skips
    unparsable lines instead of failing.
    """
    import json

    path = os.path.join(results_dir, HISTORY_NAME)
    with open(path, "a", encoding="utf-8") as fh:
        for document in documents:
            fh.write(json.dumps(document, sort_keys=False) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    return path


def git_sha() -> str | None:
    """The repo's HEAD commit sha, or None outside a git checkout."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def maybe_resources(metrics) -> dict:
    """``{"resources": summary}`` when the run was profiled, else ``{}``.

    Benches splat this into :func:`record_bench` so profiled runs
    (``REPRO_PROFILE=1``) carry their real-resource totals into the
    history record without changing the unprofiled baseline schema.
    """
    from repro.core.observability.resources import (
        profiling_enabled,
        resource_summary,
    )

    if not profiling_enabled():
        return {}
    summary = resource_summary(metrics.registry)
    return {"resources": summary} if summary else {}


def ms(value: float) -> str:
    """Format virtual milliseconds compactly (ms / s / min)."""
    if value >= 120_000:
        return f"{value / 60000:.1f}min"
    if value >= 1_000:
        return f"{value / 1000:.2f}s"
    return f"{value:.1f}ms"


def ratio(a: float, b: float) -> str:
    """a:b speed-up factor rendered as e.g. '12.3x'."""
    if b == 0:
        return "inf"
    return f"{a / b:.1f}x"
