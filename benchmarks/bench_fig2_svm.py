"""FIG2 — Figure 2 of the paper: "SVM on Spark and Java".

The paper trains SVM (100 iterations) on LIBSVM datasets of increasing
size, once as a Spark job and once as a plain Java program, and finds:

* plain Java is up to an order of magnitude faster on small datasets
  (fixed cluster overheads dominate),
* Spark pays off only on large datasets (parallelism wins),
* the gap grows with the number of iterations.

This bench sweeps dataset size and reports both platforms' virtual time,
their ratio, and the crossover; a second table varies the iteration
count at a fixed small size to reproduce the "gap grows with iterations"
claim.  Training is real (the models agree across platforms); time is
the calibrated virtual-time model (DESIGN.md §2).
"""

from __future__ import annotations

import pytest

from benchmarks.harness import ms, pick, ratio, record_bench, record_table
from repro import RheemContext
from repro.apps.ml import SVMClassifier, linearly_separable

SIZES = pick([200, 1_000, 5_000, 20_000, 60_000], [200, 1_000, 5_000])
ITERATIONS = pick(30, 10)
ITER_SWEEP = pick([5, 20, 50], [5, 20])
ITER_SWEEP_SIZE = 1_000
DIM = 4


def train(ctx: RheemContext, data, platform: str, iterations: int):
    svm = SVMClassifier(iterations=iterations, dim=DIM).fit(
        ctx, data, platform=platform
    )
    return svm


@pytest.fixture(scope="module")
def ctx():
    return RheemContext()


def test_fig2_size_sweep(benchmark, ctx):
    table = record_table(
        "FIG2",
        f"SVM on Spark and Java — virtual time vs dataset size "
        f"({ITERATIONS} iterations)",
        ["points", "java", "spark", "winner", "factor"],
    )
    crossover = None
    previous_winner = None
    points = []
    for size in SIZES:
        data = linearly_separable(size, dim=DIM, seed=29)
        java = train(ctx, data, "java", ITERATIONS)
        spark = train(ctx, data, "spark", ITERATIONS)
        assert java.weights == pytest.approx(spark.weights)
        jms = java.metrics.virtual_ms
        sms = spark.metrics.virtual_ms
        winner = "java" if jms <= sms else "spark"
        factor = ratio(max(jms, sms), min(jms, sms))
        table.rows.append([size, ms(jms), ms(sms), winner, factor])
        points.append(
            {"size": size, "java_ms": jms, "spark_ms": sms, "winner": winner}
        )
        if previous_winner == "java" and winner == "spark":
            crossover = size
        previous_winner = winner
    if crossover is not None:
        table.notes.append(f"crossover between sizes at ~{crossover} points")
    record_bench(
        "FIG2",
        iterations=ITERATIONS,
        sweep=points,
        crossover_size=crossover,
        small_input_winner=points[0]["winner"],
        large_input_winner=points[-1]["winner"],
    )
    table.notes.append(
        "paper: Java up to ~1 order of magnitude faster on small inputs; "
        "Spark pays off on large inputs only"
    )

    small = linearly_separable(500, dim=DIM, seed=29)
    benchmark.pedantic(
        lambda: train(ctx, small, "java", 5), rounds=3, iterations=1
    )


def test_fig2_iteration_sweep(benchmark, ctx):
    table = record_table(
        "FIG2b",
        f"SVM — java/spark gap vs iteration count "
        f"(fixed size {ITER_SWEEP_SIZE})",
        ["iterations", "java", "spark", "gap (spark - java)"],
    )
    data = linearly_separable(ITER_SWEEP_SIZE, dim=DIM, seed=31)
    gaps = []
    for iterations in ITER_SWEEP:
        java = train(ctx, data, "java", iterations)
        spark = train(ctx, data, "spark", iterations)
        jms, sms = java.metrics.virtual_ms, spark.metrics.virtual_ms
        gap = sms - jms
        gaps.append(gap)
        table.rows.append([iterations, ms(jms), ms(sms), ms(gap)])
    record_bench(
        "FIG2b",
        size=ITER_SWEEP_SIZE,
        iteration_sweep=list(ITER_SWEEP),
        gaps_ms=gaps,
        gap_grows=gaps[-1] > gaps[0],
    )
    table.notes.append(
        "paper: 'this performance gap gets bigger with the number of "
        f"iterations' — measured gap grows {ms(gaps[0])} -> {ms(gaps[-1])} "
        "(every extra iteration adds per-stage scheduling + shuffle on the "
        "cluster but only compute in-process)"
        if gaps[-1] > gaps[0]
        else "WARNING: gap did not grow with iterations"
    )
    assert gaps[-1] > gaps[0]

    benchmark.pedantic(
        lambda: train(ctx, data, "spark", 5), rounds=3, iterations=1
    )
