"""Benchmark-suite plumbing: print recorded result tables after the run
(outside pytest's capture), mirror them to benchmarks/results/, and
serialise every machine-readable payload registered via
``harness.record_bench`` to ``benchmarks/results/BENCH_<exp_id>.json``."""

from __future__ import annotations

import datetime
import json
import os

from benchmarks.harness import git_sha, recorded_benches, recorded_tables, scale


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tables = recorded_tables()
    benches = recorded_benches()
    if not tables and not benches:
        return
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    if tables:
        rendered = "\n\n".join(table.render() for table in tables)
        terminalreporter.write_sep("=", "reproduced paper tables and figures")
        terminalreporter.write_line(rendered)
        with open(
            os.path.join(results_dir, "latest.txt"), "w", encoding="utf-8"
        ) as fh:
            fh.write(rendered + "\n")
    if benches:
        provenance = {
            "scale": scale(),
            "git_sha": git_sha(),
            "recorded_at_utc": datetime.datetime.now(
                datetime.timezone.utc
            ).isoformat(timespec="seconds"),
        }
        for exp_id, payload in benches.items():
            document = {"exp_id": exp_id, **provenance, **payload}
            path = os.path.join(results_dir, f"BENCH_{exp_id}.json")
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(document, fh, indent=2, sort_keys=False)
                fh.write("\n")
            terminalreporter.write_line(f"bench payload: {path}")
