"""Benchmark-suite plumbing: print recorded result tables after the run
(outside pytest's capture), mirror them to benchmarks/results/, and
serialise every machine-readable payload registered via
``harness.record_bench`` to ``benchmarks/results/BENCH_<exp_id>.json``.

All result files are written atomically (write-temp + rename) so a
crashed run never leaves truncated baselines behind, and every payload
is also appended to ``benchmarks/results/history.jsonl`` — the perf
observatory's durable run record (``repro report`` compares it against
the committed baselines).
"""

from __future__ import annotations

import datetime
import json
import os

from benchmarks.harness import (
    append_history,
    git_sha,
    recorded_benches,
    recorded_tables,
    scale,
    write_atomic,
)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tables = recorded_tables()
    benches = recorded_benches()
    if not tables and not benches:
        return
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    if tables:
        rendered = "\n\n".join(table.render() for table in tables)
        terminalreporter.write_sep("=", "reproduced paper tables and figures")
        terminalreporter.write_line(rendered)
        write_atomic(os.path.join(results_dir, "latest.txt"), rendered + "\n")
    if benches:
        from repro.core.observability.resources import profiling_enabled

        provenance = {
            "scale": scale(),
            "git_sha": git_sha(),
            "recorded_at_utc": datetime.datetime.now(
                datetime.timezone.utc
            ).isoformat(timespec="seconds"),
            "profiled": profiling_enabled(),
        }
        documents = []
        for exp_id, payload in benches.items():
            document = {"exp_id": exp_id, **provenance, **payload}
            documents.append(document)
            path = os.path.join(results_dir, f"BENCH_{exp_id}.json")
            write_atomic(
                path,
                json.dumps(document, indent=2, sort_keys=False) + "\n",
            )
            terminalreporter.write_line(f"bench payload: {path}")
        history_path = append_history(results_dir, documents)
        terminalreporter.write_line(f"bench history: {history_path}")
