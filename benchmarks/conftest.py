"""Benchmark-suite plumbing: print recorded result tables after the run
(outside pytest's capture) and mirror them to benchmarks/results/."""

from __future__ import annotations

import os

from benchmarks.harness import recorded_tables


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tables = recorded_tables()
    if not tables:
        return
    rendered = "\n\n".join(table.render() for table in tables)
    terminalreporter.write_sep("=", "reproduced paper tables and figures")
    terminalreporter.write_line(rendered)
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, "latest.txt"), "w", encoding="utf-8") as fh:
        fh.write(rendered + "\n")
