"""ABL5 — the data storage abstraction (paper §6).

Three storage-side claims measured:

* layout matters: columnar beats the row formats for projective scans
  (Cartilage-style transformation plans choose the layout at upload);
* placement matters: the WWHow!-style storage optimizer picks the store
  whose measured cost is lowest for the declared workload;
* hot data matters: the buffer removes the fetch+decode cost of
  frequently accessed datasets ("embracing hot data").
"""

from __future__ import annotations

import pytest

from benchmarks.harness import ms, pick, record_bench, record_table
from repro.core.types import Schema
from repro.storage import (
    Catalog,
    HdfsStore,
    HotDataBuffer,
    KeyValueStore,
    LocalFsStore,
    RelationalStore,
    StorageOptimizer,
    TransformationPlan,
    WorkloadProfile,
)
from repro.storage.formats import ColumnarFormat, CsvFormat, JsonLinesFormat
from repro.storage.transformation import EncodeStep

ROWS = pick(20_000, 4_000)
WIDTH = 8
SCANS = 5


def wide_rows(n):
    schema = Schema([f"c{i}" for i in range(WIDTH)])
    return schema, [
        schema.record(*[float(i * 31 + j) for j in range(WIDTH)])
        for i in range(n)
    ]


def fresh_catalog(tmp_root, buffer=None):
    catalog = Catalog(buffer=buffer)
    catalog.register_store(LocalFsStore(root=tmp_root))
    catalog.register_store(HdfsStore())
    catalog.register_store(KeyValueStore())
    catalog.register_store(RelationalStore())
    return catalog


def test_abl5_format_projection(benchmark, tmp_path):
    schema, rows = wide_rows(ROWS)
    catalog = fresh_catalog(str(tmp_path / "a"))
    table = record_table(
        "ABL5a",
        f"projective scan cost by format ({ROWS} rows x {WIDTH} cols, "
        "1-column projection, localfs)",
        ["format", "write", "full scan", "projected scan"],
    )
    costs = {}
    for fmt in (CsvFormat(), JsonLinesFormat(), ColumnarFormat()):
        plan = TransformationPlan(encode=EncodeStep(fmt))
        write = catalog.write_dataset(
            f"d_{fmt.name}", rows, "localfs", schema=schema, plan=plan
        )
        _, full = catalog.read_dataset_with_cost(f"d_{fmt.name}")
        _, projected = catalog.read_dataset_with_cost(
            f"d_{fmt.name}", projection=["c0"]
        )
        costs[fmt.name] = projected
        table.rows.append([fmt.name, ms(write), ms(full), ms(projected)])
    table.notes.append(
        "columnar decodes only the projected column; row formats parse "
        "everything"
    )
    record_bench(
        "ABL5a",
        rows=ROWS,
        width=WIDTH,
        projected_scan_ms=costs,
        columnar_wins=costs["columnar"] < min(costs["csv"], costs["jsonl"]),
    )
    assert costs["columnar"] < costs["csv"]
    assert costs["columnar"] < costs["jsonl"]

    small_schema, small_rows = wide_rows(500)
    benchmark.pedantic(
        lambda: ColumnarFormat().decode(
            small_schema,
            ColumnarFormat().encode(small_schema, small_rows),
            projection=["c0"],
        ),
        rounds=3,
        iterations=1,
    )


def test_abl5_placement_decision_matches_measurement(benchmark, tmp_path):
    schema, rows = wide_rows(ROWS)
    catalog = fresh_catalog(str(tmp_path / "b"))
    profile = WorkloadProfile(scans=SCANS, projectivity=1.0)
    optimizer = StorageOptimizer(
        [catalog.store(name) for name in catalog.store_names]
    )
    placements = optimizer.enumerate(schema, len(rows), WIDTH * 8, profile)

    table = record_table(
        "ABL5b",
        f"storage placements for a scan workload ({SCANS} scans) — "
        "estimated vs measured",
        ["store", "format", "estimated", "measured"],
    )
    measured = {}
    for placement in placements:
        name = f"p_{placement.store_name}_{placement.format_name}"
        catalog.write_dataset(
            name, rows, placement.store_name, schema=schema,
            plan=placement.plan, key_field=placement.key_field,
        )
        total = 0.0
        for _ in range(SCANS):
            _, cost = catalog.read_dataset_with_cost(name)
            total += cost
        measured[(placement.store_name, placement.format_name)] = total
        table.rows.append(
            [placement.store_name, placement.format_name or "-",
             ms(placement.estimated_ms), ms(total)]
        )
    chosen = optimizer.choose(schema, len(rows), WIDTH * 8, profile)
    best_measured = min(measured, key=measured.get)
    table.notes.append(
        f"optimizer chose {chosen.store_name}/{chosen.format_name}; "
        f"cheapest measured was {best_measured[0]}/{best_measured[1]}"
    )
    record_bench(
        "ABL5b",
        scans=SCANS,
        chosen={"store": chosen.store_name, "format": chosen.format_name},
        best_measured={"store": best_measured[0], "format": best_measured[1]},
        chosen_measured_ms=measured[(chosen.store_name, chosen.format_name)],
        best_measured_ms=measured[best_measured],
        within_factor=2.0,
    )
    # The decision must land within 2x of the measured optimum.
    assert measured[(chosen.store_name, chosen.format_name)] <= (
        2.0 * measured[best_measured]
    )

    benchmark.pedantic(
        lambda: optimizer.choose(schema, len(rows), WIDTH * 8, profile),
        rounds=3, iterations=1,
    )


def test_abl5_hot_buffer(benchmark, tmp_path):
    schema, rows = wide_rows(ROWS)
    cold_catalog = fresh_catalog(str(tmp_path / "c"))
    hot_catalog = fresh_catalog(str(tmp_path / "d"), buffer=HotDataBuffer())
    for catalog in (cold_catalog, hot_catalog):
        catalog.write_dataset("hot", rows, "hdfs", schema=schema)

    def total_scan_cost(catalog):
        return sum(
            catalog.read_dataset_with_cost("hot")[1] for _ in range(SCANS)
        )

    cold = total_scan_cost(cold_catalog)
    hot = total_scan_cost(hot_catalog)
    table = record_table(
        "ABL5c",
        f"hot-data buffer: {SCANS} repeated scans of a {ROWS}-row dataset "
        "on hdfs",
        ["configuration", "total scan cost", "buffer hit rate"],
    )
    table.rows.append(["no buffer", ms(cold), "-"])
    table.rows.append(
        ["hot buffer", ms(hot), f"{hot_catalog.buffer.hit_rate:.0%}"]
    )
    table.notes.append(
        "paper §6: 'specialized buffers for embracing frequently accessed "
        "data in their native format'"
    )
    record_bench(
        "ABL5c",
        scans=SCANS,
        cold_total_ms=cold,
        hot_total_ms=hot,
        hit_rate=hot_catalog.buffer.hit_rate,
        speedup=cold / hot,
    )
    assert hot < cold / 2

    benchmark.pedantic(
        lambda: total_scan_cost(hot_catalog), rounds=3, iterations=1
    )
