"""ABL4 — IEJoin versus quadratic joins (paper §5, [20]).

"Lightning fast and space efficient inequality joins": the IEJoin
physical operator against the nested-loop theta join and the raw cross
product, as a function of relation size.  Both virtual and wall time are
reported — the algorithmic gap is real, not only modelled.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.harness import ms, pick, ratio, record_bench, record_table
from repro import RheemContext
from repro.apps.cleaning.iejoin import InequalityJoin, register_iejoin
from repro.core.physical.operators import PNestedLoopJoin
from repro.util.rng import make_rng

SIZES = pick([500, 2_000, 8_000], [300, 1_000])


def dataset(n, seed=41):
    """Correlated attributes: ``y ~ x`` + noise, so the join condition
    ``x1 < x2 and y1 > y2`` is selective — the regime where an
    output-sensitive algorithm demolishes the quadratic scan (the
    anti-correlated salary/tax pairs of the cleaning use case)."""
    rng = make_rng(seed, "iejoin-bench", n)
    points = []
    for _ in range(n):
        x = rng.random()
        points.append((x, x + 0.02 * rng.random()))
    return points


def make_join():
    return InequalityJoin(
        lambda t: t[0], "<", lambda t: t[0],
        lambda t: t[1], ">", lambda t: t[1],
    )


def run(ctx, data, force_nested_loop: bool):
    from repro.core.logical.operators import CollectSink

    left = ctx.collection(data)
    right = ctx.collection(data)
    handle = left.apply_binary_operator(make_join(), right).count()
    handle.plan.add(CollectSink(), [handle.operator])
    physical = ctx.app_optimizer.optimize(handle.plan)
    join_op = next(
        op for op in physical.graph if op.kind.startswith("join.")
    )
    if force_nested_loop:
        variant = next(
            alt for alt in join_op.alternates
            if isinstance(alt, PNestedLoopJoin)
        )
        physical.substitute(join_op, variant)
        variant.alternates = []
    else:
        join_op.alternates = []
    execution = ctx.task_optimizer.optimize(physical, forced_platform="java")
    started = time.perf_counter()
    result = ctx.executor.execute(execution)
    wall_ms = (time.perf_counter() - started) * 1000
    return result.single[0], result.metrics.virtual_ms, wall_ms


def test_abl4_iejoin_vs_nested_loop(benchmark):
    ctx = RheemContext()
    register_iejoin(ctx.mappings, ctx.platforms)
    table = record_table(
        "ABL4",
        "inequality self-join: IEJoin vs nested loop (java platform)",
        ["rows", "pairs", "IEJoin virt", "NL virt", "virt gap",
         "IEJoin wall", "NL wall"],
    )
    final_gap = None
    sweep = []
    for size in SIZES:
        data = dataset(size)
        ie_count, ie_virtual, ie_wall = run(ctx, data, force_nested_loop=False)
        nl_count, nl_virtual, nl_wall = run(ctx, data, force_nested_loop=True)
        assert ie_count == nl_count
        final_gap = nl_virtual / ie_virtual
        table.rows.append(
            [size, ie_count, ms(ie_virtual), ms(nl_virtual),
             ratio(nl_virtual, ie_virtual), ms(ie_wall), ms(nl_wall)]
        )
        sweep.append(
            {"size": size, "pairs": ie_count, "iejoin_ms": ie_virtual,
             "nested_loop_ms": nl_virtual, "gap": nl_virtual / ie_virtual}
        )
    table.notes.append(
        "the optimizer-facing work-unit model and the measured wall time "
        "agree on the asymptotic gap"
    )
    record_bench(
        "ABL4", sweep=sweep, final_gap=final_gap, gap_floor=2.0
    )
    assert final_gap is not None and final_gap > 2.0

    small = dataset(400)
    benchmark.pedantic(
        lambda: run(ctx, small, force_nested_loop=False),
        rounds=3, iterations=1,
    )
