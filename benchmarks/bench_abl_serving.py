"""ABL14 — the serving plan cache (multi-tenant daemon).

Serving traffic repeats the same query shapes, so the expensive step —
cross-platform plan enumeration — is pure waste after the first run.
The daemon memoizes the optimizer's output under fingerprint × epochs;
this bench measures the submit-to-result wall of a cold (enumerating)
submit against a warm (cache-hit) submit of the same spec, and asserts
the end-to-end semantics the cache promises: identical rows, identical
virtual time, zero enumeration spans on the warm path.

Several distinct seeds give several independent cold samples (each seed
is a new data fingerprint, hence a guaranteed miss); the same seeds
re-submitted are all hits.  Medians are compared against a 2x floor.
"""

from __future__ import annotations

import statistics

from benchmarks.harness import ms, ratio, pick, record_bench, record_table
from repro.core.serving import ServingDaemon

#: extra no-op map stages: grows the enumeration space (the cold cost)
#: without growing the data (the shared execution cost)
CHAIN = pick(16, 8)
LINES = pick(60, 20)
SEEDS = 3
WARM_ROUNDS = 3
SPEEDUP_FLOOR = 2.0


def _spec(seed: int) -> dict:
    return {
        "workload": "wordcount",
        "seed": seed,
        "lines": LINES,
        "width": 6,
        "chain": CHAIN,
    }


def test_abl14_serving_plan_cache():
    daemon = ServingDaemon(cache_size=16)

    cold_walls, warm_walls = [], []
    for seed in range(SEEDS):
        cold = daemon.submit(_spec(seed), tenant="bench")
        assert cold.status == "done" and cold.plan_cache == "miss"
        assert cold.enumeration_spans > 0
        cold_walls.append(cold.wall_ms)
        warms = [
            daemon.submit(_spec(seed), tenant="bench")
            for _ in range(WARM_ROUNDS)
        ]
        for warm in warms:
            assert warm.status == "done" and warm.plan_cache == "hit"
            # Zero enumeration work, byte-identical answer and charge.
            assert warm.enumeration_spans == 0
            assert warm.rows == cold.rows
            assert warm.virtual_ms == cold.virtual_ms
        warm_walls.extend(w.wall_ms for w in warms)

    cold_ms = statistics.median(cold_walls)
    warm_ms = statistics.median(warm_walls)
    speedup = cold_ms / warm_ms

    table = record_table(
        "ABL14",
        f"serving plan cache: cold vs warm submit-to-result wall "
        f"(wordcount, {LINES} lines, chain={CHAIN}, {SEEDS} seeds x "
        f"{WARM_ROUNDS} warm rounds)",
        ["path", "median wall", "samples", "enumeration spans"],
    )
    table.rows.append(["cold (miss)", ms(cold_ms), str(len(cold_walls)),
                       "per query"])
    table.rows.append(["warm (hit)", ms(warm_ms), str(len(warm_walls)), "0"])
    table.notes.append(
        f"speedup {ratio(cold_ms, warm_ms)} (floor {SPEEDUP_FLOOR}x); warm "
        "rows and virtual_ms byte-identical to cold"
    )

    stats = daemon.plan_cache.stats()
    record_bench(
        "ABL14",
        workload="wordcount",
        lines=LINES,
        chain=CHAIN,
        seeds=SEEDS,
        warm_rounds=WARM_ROUNDS,
        cold_wall_ms=cold_ms,
        warm_wall_ms=warm_ms,
        speedup=speedup,
        speedup_floor=SPEEDUP_FLOOR,
        cache={k: stats[k] for k in ("size", "hits", "misses", "evictions")},
        byte_identical=True,
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm submits must be at least {SPEEDUP_FLOOR}x faster: "
        f"cold {cold_ms:.2f}ms vs warm {warm_ms:.2f}ms"
    )
    assert stats["misses"] == SEEDS
    assert stats["hits"] == SEEDS * WARM_ROUNDS
