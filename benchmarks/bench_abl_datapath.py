"""ABL11 — compiled columnar data path (fused kernels vs interpreter).

The compiled data path (``repro.core.physical.compiled`` + the fusion
rewrite) runs a fused narrow chain as one lazy pass over nested C-level
iterators and serves wide operators with batch kernels.  The kill switch
``REPRO_NO_KERNELS=1`` swaps in the historical per-stage/per-quantum
interpreter.  This ablation pins down the contract:

* **identical everything but the clock** — outputs, ``virtual_ms``, and
  the full ledger entry sequence are byte-identical between the two
  modes; the plan surgery (and hence the bill) is independent of how the
  quanta physically move;
* **real wall-clock speedup** — on a data-path-bound java pipeline of
  ``itemgetter``-shaped UDFs at parallelism 1 the compiled mode is
  ≥2x faster (≥1.5x at quick scale, where fixed overheads weigh more);
* **kernels demonstrably engaged** — a traced compiled run carries
  ``fused_stages`` and ``batch_kernel`` span attributes.
"""

from __future__ import annotations

import os
import time
from operator import itemgetter

from benchmarks.harness import (
    maybe_resources,
    ms,
    pick,
    ratio,
    record_bench,
    record_table,
)
from repro import Tracer
from repro.core.executor import Executor
from repro.core.logical.operators import CollectSink
from repro.core.physical.compiled import KILL_SWITCH

#: quanta in the source collection
ROWS = pick(400_000, 40_000)
#: timing repetitions per mode (best-of, to shrug off scheduler noise)
REPS = pick(5, 3)
#: required compiled/interpreted wall speedup
FLOOR = pick(2.0, 1.5)

_SWAP = itemgetter(1, 0)
_KEY = itemgetter(0)
_FLAG = itemgetter(2)


def _make_execution():
    """A data-path-bound java plan: long fused chain, hash distinct.

    Every UDF is an ``operator.itemgetter`` so the compiled pass stays in
    C end to end; the interpreter pays a Python-level loop and one
    intermediate list per stage for exactly the same answers.
    """
    from repro.core.context import RheemContext

    rows = [(i % 9973, (i * 31) % 10007, i % 7) for i in range(ROWS)]
    ctx = RheemContext()
    quanta = (
        ctx.collection(rows, name="rows")
        .filter(_FLAG, name="keep-flagged")
        .map(itemgetter(0, 1), name="project")
    )
    for r in range(2):
        quanta = (
            quanta.map(_SWAP, name=f"swap-{r}")
            .filter(_KEY, name=f"nonzero-{r}")
            .map(_SWAP, name=f"swap-back-{r}")
        )
    quanta = quanta.map(_KEY, name="keys-only").distinct().sort(lambda v: v)
    sink = CollectSink()
    quanta._builder.plan.add(sink, [quanta._op])
    physical = ctx.app_optimizer.optimize(quanta._builder.plan)
    return ctx.task_optimizer.optimize(physical, forced_platform="java")


def _best_of(execution, reps: int):
    """Execute ``reps`` times; return (last result, best wall seconds)."""
    best = None
    result = None
    for _ in range(reps):
        executor = Executor()
        started = time.perf_counter()
        result = executor.execute(execution)
        wall = time.perf_counter() - started
        best = wall if best is None or wall < best else best
    return result, best


def _ledger_sequence(result):
    """The bill as comparable tuples (same execution => same atom ids)."""
    return [
        (entry.label, entry.ms, entry.platform, entry.atom_id)
        for entry in result.metrics.ledger.entries
    ]


def test_abl11_compiled_datapath():
    execution = _make_execution()
    saved = os.environ.pop(KILL_SWITCH, None)
    try:
        _best_of(execution, 1)  # warm caches and allocator
        compiled_result, compiled_wall = _best_of(execution, REPS)
        os.environ[KILL_SWITCH] = "1"
        interpreted_result, interpreted_wall = _best_of(execution, REPS)
    finally:
        if saved is None:
            os.environ.pop(KILL_SWITCH, None)
        else:  # pragma: no cover - only when the caller exported it
            os.environ[KILL_SWITCH] = saved

    speedup = interpreted_wall / compiled_wall
    metrics = compiled_result.metrics
    table = record_table(
        "ABL11",
        f"compiled data path — {ROWS} rows through an 8-stage fused "
        "chain + hash distinct, java, parallelism 1",
        ["mode", "wall", "speedup", "virtual time", "makespan", "identical"],
    )
    identical = (
        compiled_result.outputs == interpreted_result.outputs
        and metrics.virtual_ms == interpreted_result.metrics.virtual_ms
        and _ledger_sequence(compiled_result)
        == _ledger_sequence(interpreted_result)
    )
    flag = "yes" if identical else "NO!"
    table.rows.append(
        ["interpreted", ms(interpreted_wall * 1000.0), "1.0x",
         ms(interpreted_result.metrics.virtual_ms),
         ms(interpreted_result.metrics.makespan_ms), flag])
    table.rows.append(
        ["compiled", ms(compiled_wall * 1000.0),
         ratio(interpreted_wall, compiled_wall),
         ms(metrics.virtual_ms), ms(metrics.makespan_ms), flag])
    table.notes.append(
        "identical = outputs, virtual bill and full ledger sequence match "
        "between modes; only the wall clock moves"
    )
    record_bench(
        "ABL11",
        rows=ROWS,
        reps=REPS,
        wall_ms_compiled=compiled_wall * 1000.0,
        wall_ms_interpreted=interpreted_wall * 1000.0,
        virtual_ms=metrics.virtual_ms,
        makespan_ms=metrics.makespan_ms,
        speedup=speedup,
        speedup_floor=FLOOR,
        identical=identical,
        **maybe_resources(metrics),
    )

    # the equivalence contract: everything but the clock is identical
    assert compiled_result.outputs == interpreted_result.outputs
    assert metrics.virtual_ms == interpreted_result.metrics.virtual_ms
    assert _ledger_sequence(compiled_result) == _ledger_sequence(
        interpreted_result
    )
    assert speedup >= FLOOR, (
        f"expected >={FLOOR}x compiled-vs-interpreted wall speedup at "
        f"parallelism 1, got {speedup:.2f}x "
        f"({compiled_wall * 1000:.1f}ms vs {interpreted_wall * 1000:.1f}ms)"
    )


def test_abl11_kernel_spans_present():
    """A traced compiled run advertises the kernels it used."""
    from repro.core.context import RheemContext

    ctx = RheemContext()
    tracer = Tracer()
    ctx.attach_tracer(tracer)
    out = (
        ctx.collection([(i % 5, i) for i in range(200)])
        .map(_SWAP)
        .filter(_KEY)
        .map(_SWAP)
        .reduce_by(key=_KEY, reducer=lambda a, b: (a[0], a[1] + b[1]))
        .collect(platform="java")
    )
    assert out  # the pipeline ran
    fused = [
        span for span in tracer.spans
        if span.attributes.get("fused_stages")
    ]
    assert fused, "no span carried fused_stages — fusion did not engage"
    batch = {
        span.attributes.get("batch_kernel")
        for span in tracer.spans
        if span.attributes.get("batch_kernel")
    }
    assert "fused.compiled" in batch, (
        f"compiled fused kernel did not run (saw {sorted(batch)})"
    )
    assert "reduceby.hash.batch" in batch, (
        f"batch reduce-by kernel did not run (saw {sorted(batch)})"
    )
