"""ABL13 — process-pool execution (escaping the GIL).

ABL10 showed worker *threads* overlap latency-bound atoms; this ablation
pins down what threads fundamentally cannot do: overlap CPU-bound
Python UDFs, which serialize on the GIL no matter the pool width.
``Executor(execution_mode="process")`` runs the same scheduler over
forked worker processes — each with its own interpreter and GIL — while
the coordinator replays every stateful effect in plan order, so the
wall clock drops and *nothing else moves*:

* **identical results** — outputs byte-identical across modes and
  parallelisms;
* **identical bill** — ``virtual_ms`` and the full ledger entry
  sequence match the sequential run exactly (same atom ids: one shared
  execution object serves every run);
* **real wall-clock speedup** — parallelism-4 processes beat
  parallelism-4 threads by ≥1.3x on a CPU-bound arithmetic chain
  (threads bring ~no speedup here: the GIL admits one runner at a
  time).

The speedup floor is hardware-gated: escaping the GIL can only show up
on a host with ≥2 cores (CI runners qualify).  On a single-core host
the same grid still runs and the byte-identity assertions still bind,
but the wall contest degrades to an overhead bound — processes must
stay within ~1.4x of threads (fork + queue + shared-memory transport
cost) — and the payload records ``cores`` plus the floor actually
enforced, so the perf observatory gates each run against its own
recorded floor.
"""

from __future__ import annotations

import os
import time

from benchmarks.harness import (
    maybe_resources,
    ms,
    pick,
    ratio,
    record_bench,
    record_table,
)
from repro.core.executor import Executor
from repro.core.logical.operators import CollectionSource, CollectSink, Map
from repro.core.logical.plan import LogicalPlan
from repro.core.optimizer.application import ApplicationOptimizer
from repro.core.optimizer.enumerator import MultiPlatformOptimizer
from repro.platforms import JavaPlatform

#: independent source→map→sink pipelines (each becomes its own atom)
PIPELINES = 4
#: rows per pipeline
ROWS = pick(60, 24)
#: LCG iterations per row — pure Python arithmetic, fully GIL-bound
SPINS = pick(40_000, 15_000)

#: (parallelism, execution_mode) grid; the contest is the last two rows
CONFIGS = ((1, "thread"), (4, "thread"), (4, "process"))

#: cores visible to this host — the GIL escape needs at least 2 to
#: manifest as wall time; below that only the overhead bound is gated
CORES = os.cpu_count() or 1
SPEEDUP_FLOOR = 1.3 if CORES >= 2 else 0.7


def _udf(offset):
    def work(x):
        acc = x + offset
        for _ in range(SPINS):
            acc = (acc * 1664525 + 1013904223) % 2147483647
        return acc

    return work


def branching_plan() -> LogicalPlan:
    """PIPELINES independent CPU-bound pipelines in one multi-sink plan."""
    plan = LogicalPlan()
    for p in range(PIPELINES):
        src = plan.add(CollectionSource(list(range(p * ROWS, (p + 1) * ROWS))))
        mapped = plan.add(Map(_udf(p)), [src])
        plan.add(CollectSink(), [mapped])
    return plan


def _ledger_sequence(metrics):
    return [
        (e.label, repr(e.ms), e.platform, e.atom_id)
        for e in metrics.ledger.entries
    ]


def test_abl13_process_pool():
    physical = ApplicationOptimizer().optimize(branching_plan())
    # one execution object for every run: atom ids stay stable, so the
    # ledger sequences below compare entry-for-entry including ids
    execution = MultiPlatformOptimizer([JavaPlatform()]).optimize(physical)

    table = record_table(
        "ABL13",
        f"process-pool execution — {PIPELINES} CPU-bound pipelines x "
        f"{ROWS} rows x {SPINS} LCG spins (pure Python, GIL-bound)",
        ["parallelism", "mode", "wall", "speedup vs seq", "virtual time",
         "identical"],
    )

    runs = {}
    for parallelism, mode in CONFIGS:
        executor = Executor(parallelism=parallelism, execution_mode=mode)
        started = time.perf_counter()
        result = executor.execute(execution)
        runs[parallelism, mode] = (result, time.perf_counter() - started)

    base_result, base_wall = runs[CONFIGS[0]]
    base_ledger = _ledger_sequence(base_result.metrics)
    for parallelism, mode in CONFIGS:
        result, wall_s = runs[parallelism, mode]
        metrics = result.metrics
        identical = (
            result.outputs == base_result.outputs
            and metrics.virtual_ms == base_result.metrics.virtual_ms
            and _ledger_sequence(metrics) == base_ledger
        )
        table.rows.append([
            parallelism,
            mode,
            ms(wall_s * 1000.0),
            ratio(base_wall, wall_s),
            ms(metrics.virtual_ms),
            "yes" if identical else "NO!",
        ])
        # determinism contract: same answers, same bill, any backend
        assert result.outputs == base_result.outputs, (parallelism, mode)
        assert metrics.virtual_ms == base_result.metrics.virtual_ms
        assert _ledger_sequence(metrics) == base_ledger, (parallelism, mode)

    _, thread_wall = runs[4, "thread"]
    process_result, process_wall = runs[4, "process"]
    speedup = thread_wall / process_wall
    if CORES >= 2:
        table.notes.append(
            f"parallelism-4 processes vs parallelism-4 threads: "
            f"{speedup:.1f}x on {CORES} cores — the UDFs are pure Python "
            "arithmetic, so threads serialize on the GIL while processes "
            "genuinely overlap (accounting byte-identical either way)"
        )
    else:
        table.notes.append(
            f"single-core host: the GIL escape cannot show up as wall "
            f"time (processes measured {speedup:.2f}x vs threads); "
            "gating the overhead bound only — run on >=2 cores for the "
            "real contest"
        )
    record_bench(
        "ABL13",
        pipelines=PIPELINES,
        rows=ROWS,
        spins=SPINS,
        cores=CORES,
        wall_ms={
            f"{mode}@{parallelism}": wall_s * 1000.0
            for (parallelism, mode), (_, wall_s) in runs.items()
        },
        virtual_ms=base_result.metrics.virtual_ms,
        speedup=speedup,
        speedup_floor=SPEEDUP_FLOOR,
        deterministic=True,
        **maybe_resources(process_result.metrics),
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"expected >={SPEEDUP_FLOOR}x (cores={CORES}) for processes vs "
        f"threads at parallelism 4, got {speedup:.2f}x"
    )
