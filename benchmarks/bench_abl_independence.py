"""ABL6 — platform independence (paper §2).

One logical plan per workload class (wordcount, join+aggregate,
relational filter+sort), each executed unchanged on all three platforms:
identical results, with per-platform virtual times showing why the
*optimizer* — not the developer — should pick the platform per input.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import ms, pick, record_bench, record_table, traced_context
from repro import RheemContext
from repro.core.types import Schema
from repro.util.rng import make_rng

SCALE = pick(20_000, 4_000)
ALL = ("java", "spark", "postgres")
BATCH = ("java", "spark")


def wordcount(ctx, lines):
    return (
        ctx.collection(lines)
        .flat_map(str.split)
        .map(lambda w: (w, 1))
        .reduce_by(lambda kv: kv[0], lambda a, b: (a[0], a[1] + b[1]))
        .sort(lambda kv: kv[0])
    )


def join_aggregate(ctx, orders, customers):
    return (
        ctx.collection(orders)
        .join(ctx.collection(customers), lambda o: o[0], lambda c: c[0])
        .map(lambda pair: (pair[1][1], pair[0][1]))
        .reduce_by(lambda kv: kv[0], lambda a, b: (a[0], a[1] + b[1]))
        .sort(lambda kv: kv[0])
    )


def filter_sort(ctx, rows):
    return (
        ctx.collection(rows)
        .filter(lambda r: r["v"] % 7 != 0)
        .sort(lambda r: -r["v"])
        .map(lambda r: r["id"])
    )


def test_abl6_platform_independence(benchmark):
    rng = make_rng(97, "abl6")
    words = ["alpha", "beta", "gamma", "delta", "epsilon"]
    lines = [
        " ".join(rng.choice(words) for _ in range(6)) for _ in range(SCALE // 10)
    ]
    orders = [(rng.randrange(50), rng.randrange(100)) for _ in range(SCALE // 4)]
    customers = [(c, f"cust{c % 7}") for c in range(50)]
    schema = Schema(["id", "v"])
    rows = [schema.record(i, (i * 13) % 1000) for i in range(SCALE // 4)]

    workloads = [
        ("wordcount", lambda ctx: wordcount(ctx, lines), BATCH),
        ("join+aggregate", lambda ctx: join_aggregate(ctx, orders, customers),
         ALL),
        ("filter+sort", lambda ctx: filter_sort(ctx, rows), ALL),
    ]

    table = record_table(
        "ABL6",
        "one logical plan, every platform — identical results, "
        "platform-dependent virtual time",
        ["workload"] + [f"{p}" for p in ALL] + ["results identical"],
    )
    payload = []
    with traced_context("abl6_independence", RheemContext()) as ctx:
        for name, build, platforms in workloads:
            cells = []
            outputs = []
            times = {}
            for platform in ALL:
                if platform not in platforms:
                    cells.append("unsupported")
                    continue
                out, metrics = build(ctx).collect_with_metrics(
                    platform=platform
                )
                outputs.append(out)
                times[platform] = metrics.virtual_ms
                cells.append(ms(metrics.virtual_ms))
            identical = all(out == outputs[0] for out in outputs)
            payload.append(
                {"workload": name, "virtual_ms": times,
                 "results_identical": identical}
            )
            table.rows.append([name] + cells + [str(identical)])
            assert identical
    table.notes.append(
        "'frees applications and users from being tied to a single data "
        "processing platform' (§2)"
    )
    record_bench("ABL6", workloads=payload)

    benchmark.pedantic(
        lambda: wordcount(ctx, lines[:200]).collect(platform="java"),
        rounds=3, iterations=1,
    )
