"""FIG3 — Figure 3 of the paper: "RHEEM execution times for violations
detection" (the BigDansing case study, run on the simulated Spark).

Left subfigure: a single monolithic ``Detect`` UDF versus the BigDansing
operator pipeline (Scope/Block/Iterate/Detect) for an FD rule.  The
operator decomposition enables blocking-based pruning and fine execution
granularity, so it scales; the monolithic UDF is quadratic in one task.

Right subfigure: BigDansing extended with the ``IEJoin`` physical
operator versus cross-product baselines for an inequality denial
constraint.  The paper reports orders of magnitude and baselines it "had
to stop after 22 hours"; we mirror that with extrapolated ``>cap`` rows
once a baseline's predicted time exceeds the cap (see harness docstring).
"""

from __future__ import annotations

import time

import pytest

from benchmarks.harness import (
    VIRTUAL_CAP_MS,
    ms,
    pick,
    ratio,
    record_bench,
    record_table,
)
from repro.apps.cleaning import (
    BigDansing,
    DCRule,
    FDRule,
    Predicate,
    generate_tax_records,
)

LEFT_SIZES = pick([1_000, 3_000, 10_000, 30_000], [500, 1_500, 4_000])
RIGHT_SIZES = pick([1_000, 3_000, 10_000, 30_000], [500, 1_500, 4_000])
#: wall-clock guard per cell; beyond it we extrapolate instead of running
WALL_GUARD_S = 30.0

FD = FDRule("fd-zip-city", lhs=["zipcode"], rhs=["city"])
DC = DCRule(
    "dc-salary-tax",
    [
        Predicate("state", "==", "state"),
        Predicate("salary", ">", "salary"),
        Predicate("tax", "<", "tax"),
    ],
)


@pytest.fixture(scope="module")
def bigdansing():
    return BigDansing()


class _MethodRunner:
    """Runs one detection method across sizes with cap extrapolation.

    A quadratic-cost method is not re-run once its predicted wall time
    exceeds the guard or its predicted virtual time exceeds the cap —
    mirroring how the paper stopped its baselines after 22 hours.  The
    predicted virtual time is still reported (as ``>`` when above cap).
    """

    def __init__(self, bigdansing, rule, method, quadratic):
        self.bigdansing = bigdansing
        self.rule = rule
        self.method = method
        self.quadratic = quadratic
        #: (n, virtual ms, wall ms, virtual ms excluding platform startup)
        self.last: tuple[int, float, float, float] | None = None
        self.violations: set | None = None

    def measure(self, rows) -> str:
        n = len(rows)
        if self.last is not None:
            last_n, last_virtual, last_wall, _ = self.last
            factor = (n / last_n) ** 2 if self.quadratic else n / last_n
            predicted_virtual = last_virtual * factor
            predicted_wall = last_wall * factor
            if predicted_virtual > VIRTUAL_CAP_MS:
                return f">{ms(VIRTUAL_CAP_MS)} (cap, est {ms(predicted_virtual)})"
            if predicted_wall > WALL_GUARD_S * 1000:
                return f"~{ms(predicted_virtual)} (extrapolated)"
        started = time.perf_counter()
        violations, metrics = self.bigdansing.detect(
            rows, self.rule, platform="spark", method=self.method
        )
        wall_ms = (time.perf_counter() - started) * 1000
        detect_only = metrics.virtual_ms - metrics.by_label_prefix("startup")
        self.last = (n, metrics.virtual_ms, wall_ms, detect_only)
        self.violations = set(violations)
        return ms(metrics.virtual_ms)


def test_fig3_left_single_udf_vs_operators(benchmark, bigdansing):
    table = record_table(
        "FIG3L",
        "Violation detection (FD rule) on Spark — single Detect UDF vs "
        "BigDansing operators",
        ["rows", "operators", "single Detect UDF", "speed-up",
         "speed-up excl. job startup"],
    )
    operators = _MethodRunner(bigdansing, FD, "operators", quadratic=False)
    monolithic = _MethodRunner(bigdansing, FD, "single-udf", quadratic=True)
    measured_ratio = None
    for size in LEFT_SIZES:
        rows = generate_tax_records(size, seed=71, fd_error_rate=0.02,
                                    dc_error_rate=0.0)
        ops_cell = operators.measure(rows)
        mono_cell = monolithic.measure(rows)
        speedup = detect_speedup = "-"
        if operators.last and monolithic.last and monolithic.last[0] == size:
            assert operators.violations == monolithic.violations
            speedup = ratio(monolithic.last[1], operators.last[1])
            detect_speedup = ratio(monolithic.last[3], operators.last[3])
            measured_ratio = monolithic.last[3] / operators.last[3]
        table.rows.append([size, ops_cell, mono_cell, speedup, detect_speedup])
    table.notes.append(
        "paper (Fig. 3 left): the operator abstraction 'enables finer "
        "granularity for the distributed execution'; gap grows with size"
    )
    record_bench(
        "FIG3L",
        sizes=list(LEFT_SIZES),
        operators_last_virtual_ms=operators.last[1],
        single_udf_last_virtual_ms=monolithic.last[1],
        detect_speedup=measured_ratio,
        detect_speedup_floor=2.0,
        violations_match=operators.violations == monolithic.violations,
    )
    assert measured_ratio is not None and measured_ratio > 2.0

    small = generate_tax_records(800, seed=71, fd_error_rate=0.02,
                                 dc_error_rate=0.0)
    benchmark.pedantic(
        lambda: bigdansing.detect(small, FD, platform="spark",
                                  method="operators"),
        rounds=3, iterations=1,
    )


def test_fig3_right_iejoin_vs_baselines(benchmark, bigdansing):
    table = record_table(
        "FIG3R",
        "Violation detection (inequality DC rule) on Spark — "
        "BigDansing+IEJoin vs baselines",
        ["rows", "BigDansing+IEJoin", "block nested-loop", "cross product",
         "NL/IEJoin excl. startup"],
    )
    iejoin = _MethodRunner(bigdansing, DC, "iejoin", quadratic=False)
    blocked = _MethodRunner(bigdansing, DC, "operators", quadratic=True)
    cross = _MethodRunner(bigdansing, DC, "cross", quadratic=True)
    gap = None
    for size in RIGHT_SIZES:
        rows = generate_tax_records(size, seed=73, fd_error_rate=0.0,
                                    dc_error_rate=0.01)
        ie_cell = iejoin.measure(rows)
        nl_cell = blocked.measure(rows)
        cr_cell = cross.measure(rows)
        factor = "-"
        if (
            iejoin.last and blocked.last
            and iejoin.last[0] == blocked.last[0] == size
        ):
            assert iejoin.violations == blocked.violations
            factor = ratio(blocked.last[3], iejoin.last[3])
            gap = blocked.last[3] / iejoin.last[3]
        table.rows.append([size, ie_cell, nl_cell, cr_cell, factor])
    table.notes.append(
        "paper (Fig. 3 right): IEJoin extension gives orders of magnitude "
        "over baselines, which were stopped after 22h (here: cap rows)"
    )
    record_bench(
        "FIG3R",
        sizes=list(RIGHT_SIZES),
        iejoin_last_virtual_ms=iejoin.last[1],
        nested_loop_last_virtual_ms=blocked.last[1],
        cross_last_virtual_ms=cross.last[1] if cross.last else None,
        nl_over_iejoin=gap,
        gap_floor=1.0,
        virtual_cap_ms=VIRTUAL_CAP_MS,
    )
    assert gap is not None and gap > 1.0

    small = generate_tax_records(800, seed=73, fd_error_rate=0.0,
                                 dc_error_rate=0.01)
    benchmark.pedantic(
        lambda: bigdansing.detect(small, DC, platform="spark",
                                  method="iejoin"),
        rounds=3, iterations=1,
    )
