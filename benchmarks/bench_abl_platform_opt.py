"""ABL7 — platform-layer optimizations (paper §4.3).

"Once at a target processing platform, we envision a third optimization
phase that uses plugged-in platform-specific optimization tools."

Measures narrow-chain fusion (the analogue of Starfish/operator
pipelining) on the simulated Spark: the same 8-step transformation chain
executed with the platform-layer phase on and off, with identical
results and a lower virtual bill when fused.  Also reports the pipelined
("flink") platform, whose engine chains operators natively.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import ms, pick, ratio, record_bench, record_table
from repro import RheemContext
from repro.platforms import JavaPlatform, SparkPlatform
from repro.platforms.flink import FlinkPlatform

ROWS = pick(50_000, 10_000)
CHAIN_LENGTH = 8


def chained(ctx, data):
    handle = ctx.collection(data)
    for step in range(CHAIN_LENGTH):
        if step % 3 == 2:
            handle = handle.filter(lambda x: x % 97 != 0)
        else:
            handle = handle.map(lambda x: x + 1)
    return handle


def test_abl7_platform_layer_fusion(benchmark):
    data = list(range(ROWS))
    table = record_table(
        "ABL7",
        f"platform-layer narrow-chain fusion ({CHAIN_LENGTH}-operator "
        f"chain over {ROWS} rows)",
        ["configuration", "virtual time", "excl. startup", "ops executed"],
    )

    results = {}
    for label, platforms, platform_name in (
        ("spark, fusion off", [SparkPlatform(fuse_narrow=False)], "spark"),
        ("spark, fusion on", [SparkPlatform(fuse_narrow=True)], "spark"),
        ("java, fusion off", [JavaPlatform(fuse_narrow=False)], "java"),
        ("java, fusion on", [JavaPlatform(fuse_narrow=True)], "java"),
        ("flink (native chaining)", [FlinkPlatform()], "flink"),
    ):
        ctx = RheemContext(platforms=platforms)
        out, metrics = chained(ctx, data).collect_with_metrics(
            platform=platform_name
        )
        work_ms = metrics.virtual_ms - metrics.by_label_prefix("startup")
        results[label] = (out, metrics, work_ms)
        op_entries = sum(
            1 for e in metrics.ledger.entries if e.label.startswith("op.")
        )
        table.rows.append(
            [label, ms(metrics.virtual_ms), ms(work_ms), op_entries]
        )

    reference = results["spark, fusion off"][0]
    assert all(out == reference for out, _, _ in results.values())
    spark_off = results["spark, fusion off"][2]
    spark_on = results["spark, fusion on"][2]
    table.notes.append(
        f"excluding the (identical) job start-up, fusion saves "
        f"{ratio(spark_off, spark_on)} of the spark work bill on this "
        "chain; results identical in every configuration"
    )
    record_bench(
        "ABL7",
        rows=ROWS,
        chain_length=CHAIN_LENGTH,
        work_ms={label: work for label, (_, _, work) in results.items()},
        spark_fusion_saving=spark_off / spark_on,
        results_identical=all(
            out == reference for out, _, _ in results.values()
        ),
    )
    assert spark_on < spark_off
    assert results["java, fusion on"][2] <= results["java, fusion off"][2]

    small = list(range(2_000))
    fused_ctx = RheemContext(platforms=[SparkPlatform()])
    benchmark.pedantic(
        lambda: chained(fused_ctx, small).collect(platform="spark"),
        rounds=3, iterations=1,
    )
