"""ABL1 — physical-operator variants (paper §3.1, Example 2).

"RHEEM provides two different implementations for GroupBy: the
SortGroupBy (sort-based) and HashGroupBy (hash-based) operators from
which the optimizer of the core level will have to choose."

Measures both variants across key cardinalities on the in-process
platform, and verifies the multi-platform optimizer commits to the
cheaper one.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import ms, pick, record_bench, record_table
from repro import RheemContext
from repro.core.logical.operators import CollectionSource, CollectSink, GroupBy
from repro.core.logical.plan import LogicalPlan
from repro.core.physical.operators import PHashGroupBy, PSortGroupBy

SIZE = pick(200_000, 20_000)
KEY_COUNTS = pick([10, 1_000, 100_000], [10, 1_000])


def groupby_plan(data, key_count):
    plan = LogicalPlan()
    src = plan.add(CollectionSource(data))
    group = plan.add(GroupBy(lambda x: x % key_count), [src])
    plan.add(CollectSink(), [group])
    return plan, group


def run_variant(ctx, data, key_count, variant_class):
    plan, _ = groupby_plan(data, key_count)
    physical = ctx.app_optimizer.optimize(plan)
    group_op = next(
        op for op in physical.graph if op.kind.startswith("groupby.")
    )
    if not isinstance(group_op, variant_class):
        variant = next(
            alt for alt in group_op.alternates if isinstance(alt, variant_class)
        )
        physical.substitute(group_op, variant)
        variant.alternates = []
    else:
        group_op.alternates = []
    execution = ctx.task_optimizer.optimize(physical, forced_platform="java")
    result = ctx.executor.execute(execution)
    return result.metrics.virtual_ms


def test_abl1_hash_vs_sort_groupby(benchmark):
    ctx = RheemContext()
    table = record_table(
        "ABL1",
        f"HashGroupBy vs SortGroupBy on {SIZE} rows (java platform)",
        ["distinct keys", "HashGroupBy", "SortGroupBy", "optimizer picks"],
    )
    data = list(range(SIZE))
    sweep = []
    for key_count in KEY_COUNTS:
        hash_ms = run_variant(ctx, data, key_count, PHashGroupBy)
        sort_ms = run_variant(ctx, data, key_count, PSortGroupBy)

        plan, _ = groupby_plan(data, key_count)
        physical = ctx.app_optimizer.optimize(plan)
        execution = ctx.task_optimizer.optimize(physical, forced_platform="java")
        chosen = next(
            op.kind
            for atom in execution.atoms
            for op in atom.fragment
            if op.kind.startswith("groupby.")
        )
        table.rows.append(
            [key_count, ms(hash_ms), ms(sort_ms), chosen.split(".")[1]]
        )
        cheaper = "groupby.hash" if hash_ms <= sort_ms else "groupby.sort"
        assert chosen == cheaper
        sweep.append(
            {"keys": key_count, "hash_ms": hash_ms, "sort_ms": sort_ms,
             "chosen": chosen, "chose_cheaper": chosen == cheaper}
        )
    table.notes.append(
        "the core-layer optimizer commits the cheaper variant (Example 2)"
    )
    record_bench(
        "ABL1",
        rows=SIZE,
        sweep=sweep,
        all_choices_cheapest=all(s["chose_cheaper"] for s in sweep),
    )

    small = list(range(5_000))
    benchmark.pedantic(
        lambda: run_variant(ctx, small, 100, PHashGroupBy),
        rounds=3, iterations=1,
    )
