"""ABL12 — columnar-native batch kernels (elided egest vs packed egest).

PR 4's columnar transport packs numeric channel payloads into
struct-of-arrays ``array`` buffers but still materialises row tuples at
every consuming hop (``columnar.egest``).  The columnar-native data path
(``repro.core.physical.columnar``) hands the packed buffers straight to
eligible batch kernels — itemgetter projections, single-column predicate
filters, columnwise reduce sweeps — and records the skipped
materialisation as an explicit zero-cost ``columnar.elide`` ledger
entry.  This ablation pins down the contract on a wide numeric
repeat-loop chain:

* **identical everything but the clock** — outputs and ``virtual_ms``
  are byte-identical across native / packed-egest / row-interpreted
  modes, and the native ledger equals the egest ledger once the
  zero-ms ``columnar.elide`` entries are dropped (the virtual
  ``columnar.egest`` price is still charged; only the real work moves);
* **real wall-clock win** — eliding the per-hop row materialisation is
  ≥1.5x faster than packed egest at full scale (≥1.2x quick);
* **the cost model predicts it** — the kernel-aware model fitted from
  :meth:`CostProfiler.profile_datapath` measured rates picks the same
  winner the wall clock does.
"""

from __future__ import annotations

import os
import time
from operator import itemgetter

from benchmarks.harness import (
    maybe_resources,
    ms,
    pick,
    ratio,
    record_bench,
    record_table,
)
from repro.core.executor import Executor
from repro.core.logical.operators import CollectSink
from repro.core.physical.columnar import ColumnPredicate
from repro.core.physical.compiled import KILL_SWITCH

#: quanta in the source collection
ROWS = pick(400_000, 40_000)
#: timing repetitions per mode (best-of, to shrug off scheduler noise)
REPS = pick(5, 3)
#: required native/packed-egest wall speedup
FLOOR = pick(1.5, 1.2)
#: repeat-loop trips (each trip adds one elidable loop-state boundary)
TRIPS = 4

_PROJECT = itemgetter(3, 1, 2, 0)
_KEEP = ColumnPredicate(0, (5_000).__gt__)  # keep rows whose col0 < 5000


def _make_execution():
    """A columnar-eligible java plan: repeat loop of filter + project.

    Every row is a flat numeric tuple, the predicate reads a single
    column and the projection is a pure ``itemgetter`` permutation, so
    with columnar transport on, every loop-state hand-off is elidable;
    the packed-egest mode pays a real row materialisation per trip for
    exactly the same answers.
    """
    from repro.core.context import RheemContext

    rows = [
        (i % 9973, (i * 31) % 10007 * 0.5, float(i % 7), i % 11)
        for i in range(ROWS)
    ]
    ctx = RheemContext()
    quanta = ctx.collection(rows, name="rows").repeat(
        TRIPS,
        lambda d: d.filter(_KEEP, name="keep-low").map(
            _PROJECT, name="rotate"
        ),
    )
    sink = CollectSink()
    quanta._builder.plan.add(sink, [quanta._op])
    physical = ctx.app_optimizer.optimize(quanta._builder.plan)
    return ctx.task_optimizer.optimize(physical, forced_platform="java")


def _best_of(execution, reps: int, **executor_kwargs):
    """Execute ``reps`` times; return (last result, best wall seconds)."""
    best = None
    result = None
    for _ in range(reps):
        executor = Executor(**executor_kwargs)
        started = time.perf_counter()
        result = executor.execute(execution)
        wall = time.perf_counter() - started
        best = wall if best is None or wall < best else best
    return result, best


def _ledger_sequence(result, *, drop_elide: bool = False):
    """The bill as comparable tuples (same execution => same atom ids)."""
    return [
        (entry.label, entry.ms, entry.platform, entry.atom_id)
        for entry in result.metrics.ledger.entries
        if not (drop_elide and entry.label == "columnar.elide")
    ]


def test_abl12_columnar_native():
    execution = _make_execution()
    saved = os.environ.pop(KILL_SWITCH, None)
    try:
        _best_of(execution, 1, columnar=True)  # warm caches and allocator
        native_result, native_wall = _best_of(
            execution, REPS, columnar=True, columnar_native=True
        )
        egest_result, egest_wall = _best_of(
            execution, REPS, columnar=True, columnar_native=False
        )
        os.environ[KILL_SWITCH] = "1"
        row_result, row_wall = _best_of(execution, REPS, columnar=False)
    finally:
        if saved is None:
            os.environ.pop(KILL_SWITCH, None)
        else:  # pragma: no cover - only when the caller exported it
            os.environ[KILL_SWITCH] = saved

    speedup = egest_wall / native_wall
    metrics = native_result.metrics
    elide_entries = [
        entry for entry in metrics.ledger.entries
        if entry.label == "columnar.elide"
    ]
    identical = (
        native_result.outputs == egest_result.outputs
        and native_result.outputs == row_result.outputs
        and metrics.virtual_ms == egest_result.metrics.virtual_ms
        and _ledger_sequence(native_result, drop_elide=True)
        == _ledger_sequence(egest_result)
    )

    # the kernel-aware cost model must predict the measured winner from
    # profiled rates, not hard-coded discounts
    from repro.core.optimizer.profiler import CostProfiler

    model = CostProfiler(sizes=(2_000, 16_000)).profile_datapath().kernel_model()
    predicted_row_ms = 0.0
    predicted_columnar_ms = 0.0
    for boundary in execution.columnar_boundaries:
        prediction = model.predict_boundary(
            boundary["consumer_kind"], boundary["card"]
        )
        if prediction is None:
            prediction = (model.unpack_ms(boundary["card"]), 0.0)
        predicted_row_ms += prediction[0]
        predicted_columnar_ms += prediction[1]
    predicted_native_wins = predicted_columnar_ms < predicted_row_ms
    measured_native_wins = native_wall < egest_wall

    table = record_table(
        "ABL12",
        f"columnar-native kernels — {ROWS} rows through a {TRIPS}-trip "
        "filter+project repeat loop, java, parallelism 1",
        ["mode", "wall", "speedup", "virtual time", "elides", "identical"],
    )
    flag = "yes" if identical else "NO!"
    table.rows.append(
        ["row-interpreted", ms(row_wall * 1000.0),
         ratio(egest_wall, row_wall),
         ms(row_result.metrics.virtual_ms), "-", flag])
    table.rows.append(
        ["packed egest", ms(egest_wall * 1000.0), "1.0x",
         ms(egest_result.metrics.virtual_ms), "0", flag])
    table.rows.append(
        ["columnar native", ms(native_wall * 1000.0),
         ratio(egest_wall, native_wall),
         ms(metrics.virtual_ms), str(len(elide_entries)), flag])
    table.notes.append(
        "identical = outputs match across all three modes, native and "
        "egest virtual bills match, and the native ledger equals the "
        "egest ledger minus its zero-ms columnar.elide entries"
    )
    table.notes.append(
        "cost model predicts native wins: "
        f"{'yes' if predicted_native_wins else 'no'} "
        f"(measured: {'yes' if measured_native_wins else 'no'})"
    )
    record_bench(
        "ABL12",
        rows=ROWS,
        reps=REPS,
        trips=TRIPS,
        wall_ms_native=native_wall * 1000.0,
        wall_ms_egest=egest_wall * 1000.0,
        wall_ms_interpreted=row_wall * 1000.0,
        virtual_ms=metrics.virtual_ms,
        makespan_ms=metrics.makespan_ms,
        elide_entries=len(elide_entries),
        speedup=speedup,
        speedup_floor=FLOOR,
        predicted_row_ms=predicted_row_ms,
        predicted_columnar_ms=predicted_columnar_ms,
        prediction_matches=predicted_native_wins == measured_native_wins,
        identical=identical,
        **maybe_resources(metrics),
    )

    # the determinism contract: everything but the clock is identical
    assert native_result.outputs == egest_result.outputs
    assert native_result.outputs == row_result.outputs
    assert metrics.virtual_ms == egest_result.metrics.virtual_ms
    assert _ledger_sequence(native_result, drop_elide=True) == (
        _ledger_sequence(egest_result)
    )
    assert elide_entries, "no columnar.elide entries — elision did not engage"
    assert all(entry.ms == 0.0 for entry in elide_entries)
    assert speedup >= FLOOR, (
        f"expected >={FLOOR}x native-vs-egest wall speedup at "
        f"parallelism 1, got {speedup:.2f}x "
        f"({native_wall * 1000:.1f}ms vs {egest_wall * 1000:.1f}ms)"
    )
    assert predicted_native_wins == measured_native_wins, (
        "kernel cost model predicted the wrong winner: predicted "
        f"row={predicted_row_ms:.2f}ms columnar={predicted_columnar_ms:.2f}ms, "
        f"measured native={native_wall * 1000:.1f}ms "
        f"egest={egest_wall * 1000:.1f}ms"
    )


def test_abl12_columnar_spans_present():
    """A traced native run advertises its elisions and columnar kernels."""
    from repro import Tracer
    from repro.core.context import RheemContext

    ctx = RheemContext(columnar=True, columnar_native=True)
    tracer = Tracer()
    ctx.attach_tracer(tracer)
    out = (
        ctx.collection([(i % 97, float(i % 11), i % 7, i % 5)
                        for i in range(4_000)])
        .repeat(2, lambda d: d.filter(_KEEP).map(_PROJECT))
        .collect(platform="java")
    )
    assert out  # the pipeline ran
    elided = [
        span for span in tracer.spans
        if span.attributes.get("columnar_elided")
    ]
    assert elided, "no span carried columnar_elided — elision did not engage"
    batch = {
        span.attributes.get("batch_kernel")
        for span in tracer.spans
        if span.attributes.get("batch_kernel")
    }
    assert {"filter.columnar", "map.columnar"} <= batch, (
        f"columnar-native kernels did not run (saw {sorted(batch)})"
    )
