"""ABL9 — progressive (adaptive) re-optimization.

The paper's Executor "monitors the progress of plan execution" (§4.2);
the monitoring's payoff is acting on it.  This ablation plants a grossly
wrong selectivity hint in front of an iterative tail and compares the
static plan (placed by the wrong estimate) against progressive execution
(which replans the tail after observing the real cardinality at the
first atom boundary).  Results are identical; the bill is not.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import ms, pick, ratio, record_table
from repro import CostHints, RheemContext
from repro.core.logical.operators import CollectSink
from repro.core.progressive import ProgressiveExecutor

# The tail must be big enough that its correct home is the cluster —
# otherwise there is nothing for the replan to fix (quick keeps the rows
# and trims iterations only slightly for that reason).
ROWS = pick(40_000, 40_000)
ITERATIONS = pick(30, 18)


def misestimated_plan(ctx):
    """Filter hinted to keep 0.01% (keeps 100%) feeding an iterative tail."""
    dq = (
        ctx.collection(range(ROWS))
        .filter(lambda x: True, hints=CostHints(selectivity=0.0001))
        .repeat(
            ITERATIONS,
            lambda s: s.map(lambda x: x + 1, hints=CostHints(udf_load=10.0)),
        )
    )
    dq.plan.add(CollectSink(), [dq.operator])
    return ctx.app_optimizer.optimize(dq.plan)


def test_abl9_progressive_reoptimization(benchmark):
    ctx = RheemContext()
    table = record_table(
        "ABL9",
        f"progressive re-optimization — misestimated filter feeding a "
        f"{ITERATIONS}-iteration tail over {ROWS} rows",
        ["executor", "virtual time", "platforms", "replans"],
    )

    static = ctx.executor.execute(ctx.task_optimizer.optimize(misestimated_plan(ctx)))
    table.rows.append(
        ["static", ms(static.metrics.virtual_ms),
         "+".join(sorted(static.metrics.by_platform())), 0]
    )

    progressive = ProgressiveExecutor(ctx.task_optimizer)
    adaptive, replans = progressive.execute_progressively(misestimated_plan(ctx))
    table.rows.append(
        ["progressive", ms(adaptive.metrics.virtual_ms),
         "+".join(sorted(adaptive.metrics.by_platform())), replans]
    )

    # An oracle that was given the right estimate from the start.
    oracle_ctx = RheemContext()
    dq = (
        oracle_ctx.collection(range(ROWS))
        .filter(lambda x: True, hints=CostHints(selectivity=1.0))
        .repeat(
            ITERATIONS,
            lambda s: s.map(lambda x: x + 1, hints=CostHints(udf_load=10.0)),
        )
    )
    dq.plan.add(CollectSink(), [dq.operator])
    oracle_physical = oracle_ctx.app_optimizer.optimize(dq.plan)
    oracle = oracle_ctx.executor.execute(
        oracle_ctx.task_optimizer.optimize(oracle_physical)
    )
    table.rows.append(
        ["oracle (correct hint)", ms(oracle.metrics.virtual_ms),
         "+".join(sorted(oracle.metrics.by_platform())), 0]
    )

    assert sorted(adaptive.single) == sorted(static.single)
    assert replans >= 1
    assert adaptive.metrics.virtual_ms < static.metrics.virtual_ms
    table.notes.append(
        f"replanning recovers {ratio(static.metrics.virtual_ms, adaptive.metrics.virtual_ms)} "
        "of the misestimate's damage; the oracle bound shows what perfect "
        "estimates would give"
    )

    small_ctx = RheemContext()
    benchmark.pedantic(
        lambda: ProgressiveExecutor(small_ctx.task_optimizer)
        .execute_progressively(
            (lambda: (
                d := small_ctx.collection(range(2000)).map(lambda x: x),
                d.plan.add(CollectSink(), [d.operator]),
                small_ctx.app_optimizer.optimize(d.plan),
            )[-1])()
        ),
        rounds=3,
        iterations=1,
    )
