"""ABL9 — progressive (adaptive) re-optimization.

The paper's Executor "monitors the progress of plan execution" (§4.2);
the monitoring's payoff is acting on it.  This ablation plants a grossly
wrong selectivity hint in front of an iterative tail and compares the
static plan (placed by the wrong estimate) against progressive execution
(which replans the tail after observing the real cardinality at the
first atom boundary).  Results are identical; the bill is not.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import ms, pick, ratio, record_bench, record_table
from repro import CostHints, RheemContext
from repro.core.logical.operators import CollectSink
from repro.core.optimizer.calibration import CalibrationStore
from repro.core.progressive import ProgressiveExecutor

# The tail must be big enough that its correct home is the cluster —
# otherwise there is nothing for the replan to fix (quick keeps the rows
# and trims iterations only slightly for that reason).
ROWS = pick(40_000, 40_000)
ITERATIONS = pick(30, 18)


def misestimated_logical(ctx):
    """Filter hinted to keep 0.01% (keeps 100%) feeding an iterative tail."""
    dq = (
        ctx.collection(range(ROWS))
        .filter(lambda x: True, hints=CostHints(selectivity=0.0001))
        .repeat(
            ITERATIONS,
            lambda s: s.map(lambda x: x + 1, hints=CostHints(udf_load=10.0)),
        )
    )
    dq.plan.add(CollectSink(), [dq.operator])
    return dq.plan


def misestimated_plan(ctx):
    return ctx.app_optimizer.optimize(misestimated_logical(ctx))


def test_abl9_progressive_reoptimization(benchmark):
    ctx = RheemContext()
    table = record_table(
        "ABL9",
        f"progressive re-optimization — misestimated filter feeding a "
        f"{ITERATIONS}-iteration tail over {ROWS} rows",
        ["executor", "virtual time", "platforms", "replans"],
    )

    static = ctx.executor.execute(ctx.task_optimizer.optimize(misestimated_plan(ctx)))
    table.rows.append(
        ["static", ms(static.metrics.virtual_ms),
         "+".join(sorted(static.metrics.by_platform())), 0]
    )

    progressive = ProgressiveExecutor(ctx.task_optimizer)
    adaptive, replans = progressive.execute_progressively(misestimated_plan(ctx))
    table.rows.append(
        ["progressive", ms(adaptive.metrics.virtual_ms),
         "+".join(sorted(adaptive.metrics.by_platform())), replans]
    )

    # An oracle that was given the right estimate from the start.
    oracle_ctx = RheemContext()
    dq = (
        oracle_ctx.collection(range(ROWS))
        .filter(lambda x: True, hints=CostHints(selectivity=1.0))
        .repeat(
            ITERATIONS,
            lambda s: s.map(lambda x: x + 1, hints=CostHints(udf_load=10.0)),
        )
    )
    dq.plan.add(CollectSink(), [dq.operator])
    oracle_physical = oracle_ctx.app_optimizer.optimize(dq.plan)
    oracle = oracle_ctx.executor.execute(
        oracle_ctx.task_optimizer.optimize(oracle_physical)
    )
    table.rows.append(
        ["oracle (correct hint)", ms(oracle.metrics.virtual_ms),
         "+".join(sorted(oracle.metrics.by_platform())), 0]
    )

    assert sorted(adaptive.single) == sorted(static.single)
    assert replans >= 1
    assert adaptive.metrics.virtual_ms < static.metrics.virtual_ms
    table.notes.append(
        f"replanning recovers {ratio(static.metrics.virtual_ms, adaptive.metrics.virtual_ms)} "
        "of the misestimate's damage; the oracle bound shows what perfect "
        "estimates would give"
    )
    record_bench(
        "ABL9",
        rows=ROWS,
        iterations=ITERATIONS,
        static_virtual_ms=static.metrics.virtual_ms,
        progressive_virtual_ms=adaptive.metrics.virtual_ms,
        oracle_virtual_ms=oracle.metrics.virtual_ms,
        replans=replans,
        recovery_factor=static.metrics.virtual_ms / adaptive.metrics.virtual_ms,
    )

    small_ctx = RheemContext()
    benchmark.pedantic(
        lambda: ProgressiveExecutor(small_ctx.task_optimizer)
        .execute_progressively(
            (lambda: (
                d := small_ctx.collection(range(2000)).map(lambda x: x),
                d.plan.add(CollectSink(), [d.operator]),
                small_ctx.app_optimizer.optimize(d.plan),
            )[-1])()
        ),
        rounds=3,
        iterations=1,
    )


def test_abl9b_calibrated_second_run(benchmark):
    """ABL9b — cross-run calibration: run 1 pays for the misestimate
    (observes, replans); run 2 starts from learned priors and should
    replan strictly less for an equal-or-cheaper bill."""
    table = record_table(
        "ABL9b",
        f"cross-run calibration — same misestimated plan twice with a "
        f"shared CalibrationStore ({ROWS} rows, {ITERATIONS} iterations)",
        ["run", "virtual time", "replans", "p90 factor", "priors applied"],
    )
    store = CalibrationStore()
    runs = []
    for run_no in (1, 2):
        ctx = RheemContext(calibrate=store)
        before = store.priors_applied
        result, replans = ctx.execute_adaptive(misestimated_logical(ctx))
        p90 = max(
            (store.p90(p.kind, p.platform) for p in store.priors()),
            default=0.0,
        )
        applied = store.priors_applied - before
        runs.append((result.metrics.virtual_ms, replans, applied))
        table.rows.append(
            [f"run {run_no}", ms(result.metrics.virtual_ms), replans,
             f"{p90:.1f}x", applied]
        )
    (v1, r1, a1), (v2, r2, a2) = runs
    table.notes.append(
        "run 2 re-uses run 1's misestimate evidence: corrected estimates "
        "place the tail right the first time, so no replan charge is paid"
    )
    record_bench(
        "ABL9b",
        rows=ROWS,
        iterations=ITERATIONS,
        run1_virtual_ms=v1,
        run1_replans=r1,
        run2_virtual_ms=v2,
        run2_replans=r2,
        run2_priors_applied=a2,
        samples=store.sample_count(),
    )
    assert r1 >= 1
    assert r2 < r1
    assert v2 <= v1
    assert a2 >= 1

    bench_store = CalibrationStore()

    def one_calibrated_run():
        ctx = RheemContext(calibrate=bench_store)
        dq = ctx.collection(range(2000)).map(lambda x: x)
        dq.plan.add(CollectSink(), [dq.operator])
        return ctx.execute_adaptive(dq.plan)

    benchmark.pedantic(one_calibrated_run, rounds=3, iterations=1)
