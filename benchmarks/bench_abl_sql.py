"""ABL8 — the declarative front-end (paper §3.2).

"An application developer could also expose a declarative language for
users to define their tasks (e.g., queries)."

Three TPC-H-flavoured queries run through the SQL front-end on every
platform: identical answers, platform-dependent virtual bills — and the
cost-based optimizer's free choice is never worse than the best pinned
platform.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import ms, pick, record_bench, record_table, traced_context
from repro import RheemContext
from repro.apps.sql import SqlSession
from repro.core.types import Schema
from repro.util.rng import make_rng

ROWS = pick(30_000, 6_000)
PLATFORMS = ("java", "spark", "postgres")

QUERIES = [
    (
        "Q1 pricing summary",
        """
        SELECT status, COUNT(*) AS orders, SUM(total) AS revenue,
               AVG(total) AS avg_order
        FROM lineorders
        WHERE qty > 5
        GROUP BY status
        ORDER BY status
        """,
    ),
    (
        "Q3 top segments",
        """
        SELECT c.segment, SUM(o.total) AS revenue
        FROM lineorders o JOIN customers c ON o.cust = c.cust
        WHERE o.qty > 2
        GROUP BY c.segment
        ORDER BY revenue DESC
        LIMIT 3
        """,
    ),
    (
        "Q6 selective filter",
        """
        SELECT COUNT(*) AS hits, SUM(total) AS revenue
        FROM lineorders
        WHERE qty >= 9 AND total > 400
        """,
    ),
]


def rows_equal(left, right, rel=1e-9) -> bool:
    """Record-list equality with float tolerance.

    Aggregation order differs between platforms (per-partition partial
    sums on the simulated Spark), so floating-point sums may differ in
    the last bits — exactly as on the real engines.
    """
    if len(left) != len(right):
        return False
    for a, b in zip(left, right):
        if a.schema != b.schema:
            return False
        for va, vb in zip(a.values, b.values):
            if isinstance(va, float) and isinstance(vb, float):
                if abs(va - vb) > rel * max(1.0, abs(va), abs(vb)):
                    return False
            elif va != vb:
                return False
    return True


def build_session() -> SqlSession:
    rng = make_rng(55, "sql-bench")
    orders = Schema(["order_id", "cust", "status", "qty", "total"])
    rows = [
        orders.record(
            i, rng.randrange(200), rng.choice(["O", "F", "P"]),
            rng.randrange(1, 11), round(rng.uniform(10, 500), 2),
        )
        for i in range(ROWS)
    ]
    customers = Schema(["cust", "segment"])
    customer_rows = [
        customers.record(c, f"seg{c % 5}") for c in range(200)
    ]
    session = SqlSession(RheemContext())
    session.register_table("lineorders", rows)
    session.register_table("customers", customer_rows)
    return session


def test_abl8_sql_across_platforms(benchmark):
    session = build_session()
    table = record_table(
        "ABL8",
        f"declarative SQL over {ROWS} rows — one query text, every platform",
        ["query"] + list(PLATFORMS) + ["optimizer", "identical"],
    )
    payload = []
    with traced_context("abl8_sql", session.ctx):
        for title, sql in QUERIES:
            cells = []
            outputs = []
            times = {}
            for platform in PLATFORMS:
                rows, metrics = session.execute_with_metrics(
                    sql, platform=platform
                )
                outputs.append(rows)
                times[platform] = metrics.virtual_ms
                cells.append(ms(metrics.virtual_ms))
            free_rows, free_metrics = session.execute_with_metrics(sql)
            outputs.append(free_rows)
            identical = all(rows_equal(out, outputs[0]) for out in outputs)
            table.rows.append(
                [title] + cells + [ms(free_metrics.virtual_ms), str(identical)]
            )
            assert identical
            # The free choice must be at least as good as the best pinned
            # platform, per the optimizer's own cost estimates.
            plan = session.plan(sql)
            physical = session.ctx.app_optimizer.optimize(plan.plan)
            free_cost = session.ctx.task_optimizer.estimated_plan_cost(
                physical
            )
            pinned_costs = [
                session.ctx.task_optimizer.estimated_plan_cost(physical, p)
                for p in PLATFORMS
            ]
            assert free_cost <= min(pinned_costs) + 1e-6
            payload.append(
                {"query": title, "virtual_ms": times,
                 "free_choice_ms": free_metrics.virtual_ms,
                 "results_identical": identical,
                 "free_cost_optimal": free_cost <= min(pinned_costs) + 1e-6}
            )
    table.notes.append(
        "paper §3.2: a declarative front-end translates queries into "
        "logical plans; the platform choice belongs to the optimizer"
    )
    record_bench("ABL8", rows=ROWS, queries=payload)

    small_sql = QUERIES[2][1]
    benchmark.pedantic(
        lambda: session.execute(small_sql, platform="java"),
        rounds=3, iterations=1,
    )
