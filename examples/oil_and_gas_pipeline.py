"""The paper's §1 motivating scenario: an Oil & Gas analytic pipeline.

"An application supporting such a complex analytic pipeline has to
access several sources for historical data, remove the noise from the
streaming data coming from the sensors, and run both traditional (such
as SQL) and statistical analytics (such as ML algorithms) over different
processing platforms."

This example walks that pipeline end to end on the reproduction stack:

1. sensor readings land in simulated HDFS; well metadata lives in the
   relational store (different teams, different stores — §1's storage
   heterogeneity);
2. noise removal + per-well aggregation: a relational-friendly plan the
   optimizer is free to place;
3. ML: a linear-regression depth→pressure model trained through the
   Initialize/Process/Loop template (iterative profile, so it can never
   land on the relational platform);
4. the per-stage platform choices and virtual-time bill are reported.

Run:  python examples/oil_and_gas_pipeline.py
"""

from __future__ import annotations

from repro import CostHints, RheemContext
from repro.apps.ml import LinearRegression
from repro.core.types import Schema
from repro.storage import Catalog, HdfsStore, HotDataBuffer, LocalFsStore, RelationalStore
from repro.util.rng import make_rng

N_READINGS = 8_000
N_WELLS = 25


def make_sensor_data():
    """Noisy downhole sensor readings; pressure grows with depth."""
    rng = make_rng(2016, "oilgas")
    schema = Schema(["well", "depth", "pressure", "quality"])
    rows = []
    for i in range(N_READINGS):
        depth = rng.uniform(50.0, 2000.0)
        noise = rng.gauss(0.0, 1.5)
        quality = rng.random()  # sensor self-reported quality in [0, 1]
        pressure = 0.04 * depth + 5.0 + noise
        if quality < 0.05:  # glitched readings are wildly off
            pressure *= rng.uniform(3.0, 10.0)
        rows.append(schema.record(i % N_WELLS, depth, pressure, quality))
    return schema, rows


def make_well_metadata():
    schema = Schema(["well", "field", "active"])
    rows = [
        schema.record(w, f"field{w % 4}", w % 5 != 0) for w in range(N_WELLS)
    ]
    return schema, rows


def main() -> None:
    # ------------------------------------------------------------------
    # storage layer: two departments, two stores, one catalog
    # ------------------------------------------------------------------
    catalog = Catalog(buffer=HotDataBuffer())
    catalog.register_store(LocalFsStore())
    catalog.register_store(HdfsStore(block_size=32 * 1024))
    catalog.register_store(RelationalStore())

    sensor_schema, sensor_rows = make_sensor_data()
    meta_schema, meta_rows = make_well_metadata()
    sensors_ms = catalog.write_dataset(
        "sensors", sensor_rows, "hdfs", schema=sensor_schema
    )
    meta_ms = catalog.write_dataset(
        "wells", meta_rows, "relstore", schema=meta_schema
    )
    print(f"stored {len(sensor_rows)} readings on hdfs "
          f"({catalog.entry('sensors').size_bytes/1024:.0f} KiB, "
          f"{sensors_ms:.1f} virtual ms)")
    print(f"stored {len(meta_rows)} well rows on relstore "
          f"({meta_ms:.1f} virtual ms)")

    ctx = RheemContext(catalog=catalog)

    # ------------------------------------------------------------------
    # stage 1: noise removal + join with metadata + per-field aggregation
    # ------------------------------------------------------------------
    per_field = (
        ctx.table("sensors")
        .filter(lambda r: r["quality"] >= 0.05,
                hints=CostHints(selectivity=0.95))
        .join(
            ctx.table("wells").filter(lambda w: w["active"]),
            lambda r: r["well"],
            lambda w: w["well"],
        )
        .map(lambda pair: (pair[1]["field"], pair[0]["pressure"]))
        .group_by(lambda kv: kv[0], hints=CostHints(key_fanout=0.001))
        .map(lambda kv: (kv[0], sum(v for _, v in kv[1]) / len(kv[1])))
        .sort(lambda kv: kv[0])
    )
    summary, metrics = per_field.collect_with_metrics()
    print("\n= stage 1: per-field mean pressure (clean readings) =")
    for field, mean_pressure in summary:
        print(f"  {field}: {mean_pressure:7.2f}")
    print("stage 1 metrics:", metrics.summary())

    # ------------------------------------------------------------------
    # stage 2: train pressure ~ depth on the clean readings (iterative)
    # ------------------------------------------------------------------
    clean = (
        ctx.table("sensors")
        .filter(lambda r: r["quality"] >= 0.05)
        .map(lambda r: ((r["depth"] / 2000.0,), r["pressure"] / 100.0))
        .collect()
    )
    model = LinearRegression(iterations=120, learning_rate=0.8).fit(ctx, clean)
    print("\n= stage 2: depth -> pressure model =")
    print(f"  weight={model.weights[0]:.3f} bias={model.bias:.3f} "
          f"mse={model.mse(clean):.5f}")
    print("stage 2 metrics:", model.metrics.summary())
    print("  (iterative profile: the relational platform was never "
          "eligible for this stage)")

    # ------------------------------------------------------------------
    # the hot buffer at work: the second scan of "sensors" was free
    # ------------------------------------------------------------------
    print(f"\nhot-data buffer: {catalog.buffer.hits} hit(s), "
          f"hit rate {catalog.buffer.hit_rate:.0%}")


if __name__ == "__main__":
    main()
