"""BigDansing end to end: declare rules, detect violations, repair.

The paper's §5 case study on the reproduction stack: a functional
dependency (zipcode -> city) and an inequality denial constraint (in a
state, a higher salary must not pay less tax) over a synthetic dirty
employee table; detection runs through the Scope/Block/Iterate/Detect
operator pipeline (with IEJoin for the DC rule) and repairs through the
equivalence-class algorithm.

Run:  python examples/data_cleaning.py
"""

from __future__ import annotations

from repro.apps.cleaning import (
    BigDansing,
    DCRule,
    FDRule,
    Predicate,
    generate_tax_records,
)

N_ROWS = 2_000


def main() -> None:
    rows = generate_tax_records(
        N_ROWS, seed=7, fd_error_rate=0.03, dc_error_rate=0.01
    )
    print(f"generated {len(rows)} employee rows (3% city typos, "
          "1% under-reported taxes)")

    bigdansing = BigDansing()

    fd = FDRule("fd-zip-city", lhs=["zipcode"], rhs=["city"])
    dc = DCRule(
        "dc-salary-tax",
        [
            Predicate("state", "==", "state"),
            Predicate("salary", ">", "salary"),
            Predicate("tax", "<", "tax"),
        ],
    )
    print("rules:")
    print("  ", fd.describe())
    print("  ", dc.describe())

    # ------------------------------------------------------------------
    # detection: operator pipeline vs the monolithic baseline
    # ------------------------------------------------------------------
    print("\n= detection (simulated Spark) =")
    for rule, method in ((fd, "operators"), (fd, "single-udf"),
                         (dc, "iejoin"), (dc, "cross")):
        violations, metrics = bigdansing.detect(
            rows, rule, platform="spark", method=method
        )
        print(f"  {rule.rule_id:<15} via {method:<11}: "
              f"{len(violations):>6} violations, "
              f"virtual={metrics.virtual_ms:9.1f}ms")
    print("  (same violations, very different bills — Figure 3's point)")

    # ------------------------------------------------------------------
    # sample violations and fixes
    # ------------------------------------------------------------------
    violations, _ = bigdansing.detect(rows, fd, platform="java")
    print(f"\nfirst violations of {fd.rule_id}:")
    for violation in violations[:3]:
        print("  ", violation)
    fixes = bigdansing.gen_fixes(violations[:3], fd)
    print("suggested fixes:")
    for fix in fixes:
        print("  ", fix)

    # ------------------------------------------------------------------
    # full clean loop
    # ------------------------------------------------------------------
    print("\n= detect-and-repair to fixpoint =")
    cleaned, report = bigdansing.clean(rows, [fd], platform="java")
    print(f"violations per pass: {report['passes']}")
    print(f"cells changed: {report['cells_changed']}")
    remaining, _ = bigdansing.detect(cleaned, fd, platform="java")
    print(f"violations remaining: {len(remaining)}")


if __name__ == "__main__":
    main()
