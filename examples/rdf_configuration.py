"""Optimizer configuration as RDF triples (paper §8, challenge 1).

"Developers will specify mappings between operators as well as encode
rule- and cost-based models in RDF triples.  The optimizer will use this
RDF representation as a first-class citizen."

This example dumps the default configuration as triples, edits it —
re-prioritising the GroupBy variants and tightening the default filter
selectivity — and runs the same plan under both configurations, showing
the changed optimizer behaviour with no code changes.

Run:  python examples/rdf_configuration.py
"""

from __future__ import annotations

from repro import RheemContext
from repro.core.rdf import (
    configuration_from_triples,
    default_configuration,
    vocabulary as voc,
)


def committed_groupby_kind(ctx: RheemContext) -> str:
    """Which GroupBy variant the full pipeline commits for a plan."""
    handle = ctx.collection(range(1000)).group_by(lambda x: x % 10)
    physical = ctx.app_optimizer.optimize(handle.plan)
    execution = ctx.task_optimizer.optimize(physical, forced_platform="java")
    return next(
        op.kind
        for atom in execution.atoms
        for op in atom.fragment
        if op.kind.startswith("groupby.")
    )


def main() -> None:
    store = default_configuration()
    print(f"default configuration: {len(store)} triples, e.g.")
    for triple in list(store.query(voc.mapping("GroupBy", "PHashGroupBy")))[:3]:
        print("  ", triple)

    config = configuration_from_triples(store)
    ctx = RheemContext(
        mappings=config.mappings, rules=config.rules, estimator=config.estimator
    )
    print("\ncommitted GroupBy variant (defaults):", committed_groupby_kind(ctx))

    # ------------------------------------------------------------------
    # edit 1: make the sort-based variant the preferred GroupBy mapping
    # ------------------------------------------------------------------
    for physical, priority in (("PHashGroupBy", 5), ("PSortGroupBy", 0)):
        edge = voc.mapping("GroupBy", physical)
        store.retract_pattern(edge, voc.PRIORITY)
        store.add(edge, voc.PRIORITY, priority)
    # ... and retract the hash variant entirely, so the cost model cannot
    # override the preference:
    hash_edge = voc.mapping("GroupBy", "PHashGroupBy")
    store.retract_pattern(hash_edge, voc.ENABLED)
    store.add(hash_edge, voc.ENABLED, False)

    # ------------------------------------------------------------------
    # edit 2: this workload's filters are known to be very selective
    # ------------------------------------------------------------------
    store.retract_pattern(voc.estimator(), voc.FILTER_SELECTIVITY)
    store.add(voc.estimator(), voc.FILTER_SELECTIVITY, 0.02)

    edited = configuration_from_triples(store)
    edited_ctx = RheemContext(
        mappings=edited.mappings, rules=edited.rules, estimator=edited.estimator
    )
    print("committed GroupBy variant (edited): ", committed_groupby_kind(edited_ctx))
    print(
        "default filter selectivity now:",
        edited.estimator.DEFAULT_FILTER_SELECTIVITY,
    )

    out = (
        edited_ctx.collection(range(20))
        .group_by(lambda x: x % 3)
        .map(lambda kv: (kv[0], len(kv[1])))
        .sort(lambda kv: kv[0])
        .collect()
    )
    print("results under the edited configuration:", out)
    print(
        "\nSame library, different behaviour — the configuration lives in "
        "the triple store, exactly as §8 envisions."
    )


if __name__ == "__main__":
    main()
