"""Quickstart: platform-independent analytics in five minutes.

Builds one word-count plan with the fluent DataQuanta API and runs it

1. with the cost-based multi-platform optimizer choosing the platform,
2. pinned to each platform explicitly,

showing identical results and the per-platform virtual-time breakdown —
the paper's platform-independence promise in its smallest form.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import RheemContext

HAMLET_ISH = [
    "to be or not to be that is the question",
    "whether tis nobler in the mind to suffer",
    "the slings and arrows of outrageous fortune",
    "or to take arms against a sea of troubles",
    "and by opposing end them to die to sleep",
]


def build_wordcount(ctx: RheemContext, lines: list[str]):
    """The canonical first plan: tokenize, pair, reduce by key, sort."""
    return (
        ctx.collection(lines, name="hamlet")
        .flat_map(str.split)
        .map(lambda word: (word, 1))
        .reduce_by(lambda pair: pair[0], lambda a, b: (a[0], a[1] + b[1]))
        .sort(lambda pair: (-pair[1], pair[0]))
    )


def main() -> None:
    ctx = RheemContext()

    print("= plan (logical layer) =")
    handle = build_wordcount(ctx, HAMLET_ISH)
    print(handle.explain())

    print("\n= optimizer's choice =")
    counts, metrics = handle.collect_with_metrics()
    print("top five words:", counts[:5])
    print("metrics:", metrics.summary())

    print("\n= the same plan, pinned per platform =")
    for platform in ("java", "spark"):
        pinned, pinned_metrics = handle.collect_with_metrics(platform=platform)
        assert pinned == counts, "platform independence violated!"
        print(
            f"{platform:>8}: identical results, "
            f"virtual={pinned_metrics.virtual_ms:.1f}ms"
        )

    print(
        "\nSame logical plan, same answers, very different simulated cost "
        "profiles — which is why the optimizer, not the developer, should "
        "pick the platform."
    )


if __name__ == "__main__":
    main()
