"""Graph analytics on the RHEEM operators: PageRank + components.

The third application family the paper announces in §5 ("a machine
learning application and a graph processing application").  Both
algorithms are iterative dataflows — join the vertex state with the
adjacency side input, propagate, reduce — so they run on any platform
with the iterative profile.

Run:  python examples/graph_analytics.py
"""

from __future__ import annotations

from repro import RheemContext
from repro.apps.graph import (
    ConnectedComponents,
    PageRank,
    erdos_renyi,
    ring_of_cliques,
)


def main() -> None:
    ctx = RheemContext()

    # ------------------------------------------------------------------
    # PageRank on a random directed graph
    # ------------------------------------------------------------------
    edges = erdos_renyi(60, 0.08, seed=3)
    pagerank = PageRank(iterations=25)
    pagerank.run(ctx, edges)
    print(f"PageRank over {len(edges)} edges "
          f"({pagerank.metrics.loop_iterations} iterations, "
          f"virtual={pagerank.metrics.virtual_ms:.0f}ms)")
    print("top 5 nodes:")
    for node, rank in pagerank.top(5):
        print(f"  node {node:>3}: {rank:.4f}")

    # ------------------------------------------------------------------
    # connected components with a driver-side convergence condition
    # ------------------------------------------------------------------
    cliques = ring_of_cliques(5, 6, connect=False)
    components = ConnectedComponents()
    components.run(ctx, cliques)
    print(f"\n{components.component_count} components in a "
          f"5x6 disconnected clique graph "
          f"(converged after {components.metrics.loop_iterations} "
          "iterations):")
    for label, members in sorted(components.components().items()):
        print(f"  component {label}: {members}")

    # platform independence, for good measure
    on_spark = ConnectedComponents().run(ctx, cliques, platform="spark")
    assert on_spark == components.labels
    print("\nsame labels on the simulated Spark — platform independence holds")


if __name__ == "__main__":
    main()
