"""Declarative analytics: the SQL front-end over RHEEM (paper §3.2).

"An application developer could also expose a declarative language for
users to define their tasks (e.g., queries)."  The SQL session parses,
validates and translates queries into RHEEM logical plans — after which
the usual optimizers pick variants and platforms.  One query below runs
on all three platforms with identical answers; another reads a dataset
the storage catalog placed on simulated HDFS.

Run:  python examples/sql_analytics.py
"""

from __future__ import annotations

from repro import RheemContext
from repro.apps.sql import SqlSession
from repro.core.types import Schema
from repro.storage import Catalog, HdfsStore
from repro.util.rng import make_rng


def build_session() -> SqlSession:
    rng = make_rng(77, "sql-example")
    catalog = Catalog()
    catalog.register_store(HdfsStore())

    orders = Schema(["order_id", "customer_id", "amount", "region"])
    order_rows = [
        orders.record(
            i, rng.randrange(8), round(rng.uniform(5, 500), 2),
            rng.choice(["north", "south", "east", "west"]),
        )
        for i in range(400)
    ]
    catalog.write_dataset("orders", order_rows, "hdfs", schema=orders)

    session = SqlSession(RheemContext(catalog=catalog))
    customers = Schema(["customer_id", "name", "tier"])
    session.register_table(
        "customers",
        [
            customers.record(c, f"customer{c}", "gold" if c % 3 == 0 else "basic")
            for c in range(8)
        ],
    )
    return session


QUERIES = [
    (
        "top regions by revenue",
        """
        SELECT region, COUNT(*) AS orders, SUM(amount) AS revenue
        FROM orders
        WHERE amount > 20
        GROUP BY region
        HAVING COUNT(*) > 10
        ORDER BY revenue DESC
        """,
    ),
    (
        "gold customers' spend",
        """
        SELECT c.name, SUM(o.amount) AS spend
        FROM orders o JOIN customers c ON o.customer_id = c.customer_id
        WHERE c.tier = 'gold'
        GROUP BY c.name
        ORDER BY spend DESC
        LIMIT 3
        """,
    ),
]


def main() -> None:
    session = build_session()
    print("tables:", ", ".join(session.table_names))

    for title, sql in QUERIES:
        print(f"\n= {title} =")
        print(" ".join(sql.split()))
        rows, metrics = session.execute_with_metrics(sql)
        for row in rows:
            print("  ", row)
        print("  metrics:", metrics.summary())

    # The same declarative query, pinned per platform: identical answers.
    sql = (
        "SELECT region, COUNT(*) AS n FROM orders GROUP BY region "
        "ORDER BY region"
    )
    print("\n= platform independence of a declarative query =")
    reference = None
    for platform in ("java", "spark", "postgres"):
        rows = session.execute(sql, platform=platform)
        reference = reference or rows
        assert rows == reference
        print(f"  {platform:>8}: {[(r['region'], r['n']) for r in rows]}")
    print("identical answers everywhere — the front-end is truly declarative")


if __name__ == "__main__":
    main()
