"""The data storage abstraction at work (paper §6, Figure 4).

Shows the three storage levels end to end:

* l-store: declarative intents (StoreDataset / LoadDataset /
  TransformDataset);
* p-store: Cartilage-style transformation plans (project, sort,
  partition into blocks, encode);
* x-store: four storage platforms with different access characteristics,
  a WWHow!-style optimizer choosing among them per workload, and the
  hot-data buffer.

Run:  python examples/storage_abstraction.py
"""

from __future__ import annotations

from repro.core.types import Schema
from repro.storage import (
    Catalog,
    HdfsStore,
    HotDataBuffer,
    KeyValueStore,
    LoadDataset,
    LocalFsStore,
    RelationalStore,
    StorageOptimizer,
    StoreDataset,
    TransformDataset,
    TransformationPlan,
    WorkloadProfile,
)
from repro.storage.transformation import PartitionStep, ProjectStep, SortStep
from repro.util.rng import make_rng


def make_events(n=5_000):
    rng = make_rng(99, "events")
    schema = Schema(["event_id", "user", "kind", "amount", "region"])
    kinds = ["view", "click", "buy"]
    rows = [
        schema.record(
            i,
            rng.randrange(500),
            rng.choice(kinds),
            round(rng.uniform(0, 100), 2),
            f"r{rng.randrange(6)}",
        )
        for i in range(n)
    ]
    return schema, rows


def main() -> None:
    catalog = Catalog(buffer=HotDataBuffer())
    for store in (LocalFsStore(), HdfsStore(), KeyValueStore(),
                  RelationalStore()):
        catalog.register_store(store)
    schema, rows = make_events()

    # ------------------------------------------------------------------
    # l-store intents + an explicit p-store transformation plan
    # ------------------------------------------------------------------
    plan = TransformationPlan(
        [
            ProjectStep(["event_id", "user", "amount", "region"]),
            SortStep("user"),
            PartitionStep(1_000),
        ]
    )
    print("transformation plan:", plan.describe())
    cost = StoreDataset("events", rows, "hdfs", schema=schema,
                        plan=plan).apply_op(catalog)
    entry = catalog.entry("events")
    print(f"stored: {entry.cardinality} rows, {len(entry.block_paths)} blocks "
          f"on {entry.store.name}, {cost:.1f} virtual ms")

    loaded = LoadDataset("events", projection=["amount"]).apply_op(catalog)
    print(f"projected load: {len(loaded)} rows, fields "
          f"{loaded[0].schema.fields} (columnar: only 'amount' decoded)")

    # ------------------------------------------------------------------
    # WWHow!-style placement for two very different workloads
    # ------------------------------------------------------------------
    optimizer = StorageOptimizer(
        [catalog.store(name) for name in catalog.store_names]
    )
    print("\nplacement decisions:")
    for label, profile, key in (
        ("nightly full scans", WorkloadProfile(scans=30.0), None),
        ("interactive lookups",
         WorkloadProfile(scans=0.1, point_lookups=5_000.0), "event_id"),
    ):
        placement = optimizer.choose(schema, len(rows), 60, profile, key_field=key)
        print(f"  {label:<20} -> {placement.store_name:<9} "
              f"({placement.rationale})")

    # ------------------------------------------------------------------
    # a data migration as a storage atom (TransformDataset)
    # ------------------------------------------------------------------
    migrate_ms = TransformDataset("events", "relstore").apply_op(catalog)
    print(f"\nmigrated 'events' to {catalog.entry('events').store.name} "
          f"({migrate_ms:.1f} virtual ms)")

    # ------------------------------------------------------------------
    # hot data: second read comes from the buffer
    # ------------------------------------------------------------------
    catalog.read_dataset("events")
    catalog.read_dataset("events")
    print(f"hot buffer: hits={catalog.buffer.hits}, "
          f"hit rate {catalog.buffer.hit_rate:.0%}")


if __name__ == "__main__":
    main()
