"""Figure 2 live: when does the cluster beat the single process?

Trains the same SVM (through the Initialize/Process/Loop template) on
growing datasets, once pinned to the in-process platform and once to the
simulated Spark, printing the virtual-time race — then lets the
multi-platform optimizer choose and shows it agreeing with the winner.

Run:  python examples/ml_platform_choice.py
"""

from __future__ import annotations

from repro import RheemContext
from repro.apps.ml import SVMClassifier, linearly_separable
from repro.platforms import JavaPlatform, PostgresPlatform, SparkPlatform
from repro.platforms.spark import ClusterConfig

SIZES = [200, 1_000, 5_000, 20_000]
ITERATIONS = 40

#: a small on-prem cluster: quicker to start than the default simulated
#: cluster, so the break-even point lands inside this example's sweep
SMALL_CLUSTER = ClusterConfig(
    workers=8,
    default_parallelism=16,
    job_startup_ms=800.0,
    stage_overhead_ms=8.0,
    loop_sync_ms=8.0,
)


def main() -> None:
    ctx = RheemContext(
        platforms=[
            JavaPlatform(),
            SparkPlatform(SMALL_CLUSTER),
            PostgresPlatform(),
        ]
    )
    print(f"SVM, {ITERATIONS} iterations, virtual time per platform\n")
    print(f"{'points':>8} {'java':>12} {'spark':>12} {'winner':>8}")
    for size in SIZES:
        data = linearly_separable(size, dim=4, seed=5)
        java = SVMClassifier(iterations=ITERATIONS).fit(
            ctx, data, platform="java"
        )
        spark = SVMClassifier(iterations=ITERATIONS).fit(
            ctx, data, platform="spark"
        )
        assert java.weights == spark.weights, "models must be identical"
        jms, sms = java.metrics.virtual_ms, spark.metrics.virtual_ms
        winner = "java" if jms < sms else "spark"
        print(f"{size:>8} {jms:>10.0f}ms {sms:>10.0f}ms {winner:>8}")

    # Let the optimizer decide for a small and a large input.
    print("\noptimizer's own choice (no platform pinned):")
    for size in (SIZES[0], SIZES[-1]):
        data = linearly_separable(size, dim=4, seed=5)
        model = SVMClassifier(iterations=ITERATIONS).fit(ctx, data)
        platforms = sorted(model.metrics.by_platform())
        print(f"  {size:>6} points -> {'+'.join(platforms)} "
              f"({model.metrics.virtual_ms:.0f}ms, "
              f"accuracy {model.accuracy(data):.2f})")

    print(
        "\nThe crossover is the whole argument of the paper's Figure 2: "
        "neither platform dominates, so the system — not the user — must "
        "choose."
    )


if __name__ == "__main__":
    main()
