"""Tests for the SQL front-end: lexer, parser, translation, execution."""

import pytest

from repro import RheemContext
from repro.apps.sql import (
    BinaryOp,
    Column,
    FunctionCall,
    Literal,
    SqlLexError,
    SqlParseError,
    SqlSession,
    SqlTranslationError,
    parse,
    tokenize,
)
from repro.core.types import Schema
from repro.storage import Catalog, LocalFsStore


# ----------------------------------------------------------------------
# lexer
# ----------------------------------------------------------------------
class TestLexer:
    def test_keywords_case_insensitive(self):
        kinds = [t.kind for t in tokenize("select From WHERE")]
        assert kinds == ["KEYWORD", "KEYWORD", "KEYWORD", "EOF"]

    def test_identifiers_keep_case(self):
        token = tokenize("myTable")[0]
        assert token.kind == "IDENT"
        assert token.value == "myTable"

    def test_numbers_int_and_float(self):
        tokens = tokenize("42 3.14")
        assert [t.value for t in tokens[:2]] == ["42", "3.14"]

    def test_string_literal(self):
        token = tokenize("'hello world'")[0]
        assert token.kind == "STRING"
        assert token.value == "hello world"

    def test_unterminated_string(self):
        with pytest.raises(SqlLexError, match="unterminated"):
            tokenize("'oops")

    def test_multichar_operators(self):
        values = [t.value for t in tokenize("a <= b >= c <> d")]
        assert "<=" in values and ">=" in values and "<>" in values

    def test_bad_character(self):
        with pytest.raises(SqlLexError, match="unexpected character"):
            tokenize("a @ b")

    def test_positions(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
class TestParser:
    def test_minimal(self):
        query = parse("SELECT * FROM t")
        assert query.table == "t"
        assert query.select[0].star

    def test_select_items_and_aliases(self):
        query = parse("SELECT a, b AS bee, a + 1 plus FROM t")
        assert [item.output_name for item in query.select] == ["a", "bee", "plus"]

    def test_where_precedence(self):
        query = parse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(query.where, BinaryOp)
        assert query.where.op == "OR"  # AND binds tighter

    def test_arithmetic_precedence(self):
        query = parse("SELECT a + b * c FROM t")
        expr = query.select[0].expression
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parenthesised(self):
        query = parse("SELECT (a + b) * c FROM t")
        assert query.select[0].expression.op == "*"

    def test_join_clause(self):
        query = parse("SELECT a FROM t JOIN u ON t.x = u.y")
        (join,) = query.joins
        assert join.table == "u"
        assert join.left.canonical == "t.x"

    def test_join_with_aliases(self):
        query = parse("SELECT a FROM orders o JOIN customers c ON o.cid = c.id")
        assert query.alias == "o"
        assert query.joins[0].alias == "c"

    def test_group_having_order_limit(self):
        query = parse(
            "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept "
            "HAVING COUNT(*) > 2 ORDER BY n DESC, dept ASC LIMIT 5"
        )
        assert len(query.group_by) == 1
        assert query.having is not None
        assert query.order_by[0].descending
        assert not query.order_by[1].descending
        assert query.limit == 5

    def test_aggregates(self):
        query = parse("SELECT COUNT(*), SUM(x), AVG(y), MIN(z), MAX(z) FROM t")
        names = [item.expression.name for item in query.select]
        assert names == ["COUNT", "SUM", "AVG", "MIN", "MAX"]

    def test_count_star_only(self):
        with pytest.raises(SqlParseError, match=r"SUM\(\*\)"):
            parse("SELECT SUM(*) FROM t")

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_boolean_and_null_literals(self):
        query = parse("SELECT a FROM t WHERE active = TRUE AND x != NULL")
        assert query.where is not None

    def test_not_unary(self):
        query = parse("SELECT a FROM t WHERE NOT a > 1")
        assert query.where.op == "NOT"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlParseError, match="expected EOF"):
            parse("SELECT a FROM t extra stuff here ,")

    def test_float_limit_rejected(self):
        with pytest.raises(SqlParseError, match="integer"):
            parse("SELECT a FROM t LIMIT 1.5")

    def test_expression_sql_roundtrip_shape(self):
        query = parse("SELECT a + 1 FROM t WHERE x < 3")
        assert query.select[0].expression.sql() == "(a + 1)"
        assert query.where.sql() == "(x < 3)"


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
class TestExpressions:
    def test_literal(self):
        assert Literal(5).evaluate({}) == 5

    def test_column_qualified_and_bare(self):
        env = {"t.a": 1, "a": 1}
        assert Column("a", "t").evaluate(env) == 1
        assert Column("a").evaluate(env) == 1

    def test_unknown_column(self):
        from repro.apps.sql.ast import SqlEvalError

        with pytest.raises(SqlEvalError, match="unknown column"):
            Column("ghost").evaluate({})

    def test_arith_and_compare(self):
        expr = BinaryOp("<", BinaryOp("+", Column("a"), Literal(1)), Literal(10))
        assert expr.evaluate({"a": 3}) is True
        assert expr.evaluate({"a": 20}) is False

    def test_aggregate_flags(self):
        call = FunctionCall("SUM", Column("x"))
        assert call.has_aggregate()
        assert BinaryOp("+", call, Literal(1)).has_aggregate()
        assert not Column("x").has_aggregate()


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
@pytest.fixture()
def session():
    session = SqlSession()
    emp = Schema(["id", "name", "dept", "salary", "active"])
    session.register_table(
        "employees",
        [
            emp.record(1, "ada", "eng", 120.0, True),
            emp.record(2, "bob", "eng", 95.0, True),
            emp.record(3, "cyn", "ops", 80.0, False),
            emp.record(4, "dan", "ops", 85.0, True),
            emp.record(5, "eve", "sci", 150.0, True),
            emp.record(6, "fay", "eng", 110.0, True),
        ],
    )
    dept = Schema(["dept", "floor"])
    session.register_table(
        "departments",
        [dept.record("eng", 3), dept.record("ops", 1), dept.record("sci", 9)],
    )
    return session


class TestExecution:
    def test_select_star(self, session):
        rows = session.execute("SELECT * FROM departments ORDER BY floor")
        assert [r["floor"] for r in rows] == [1, 3, 9]
        assert rows[0].schema.fields == ("dept", "floor")

    def test_projection_and_where(self, session):
        rows = session.execute(
            "SELECT name FROM employees WHERE salary >= 110 ORDER BY name"
        )
        assert [r["name"] for r in rows] == ["ada", "eve", "fay"]

    def test_computed_column(self, session):
        rows = session.execute(
            "SELECT name, salary * 2 AS double_pay FROM employees "
            "WHERE name = 'ada'"
        )
        assert rows[0]["double_pay"] == 240.0

    def test_boolean_column_filter(self, session):
        rows = session.execute("SELECT name FROM employees WHERE NOT active")
        assert [r["name"] for r in rows] == ["cyn"]

    def test_group_by_aggregates(self, session):
        rows = session.execute(
            "SELECT dept, COUNT(*) AS heads, SUM(salary) AS total, "
            "MIN(salary) AS lo, MAX(salary) AS hi "
            "FROM employees GROUP BY dept ORDER BY dept"
        )
        eng = rows[0]
        assert eng["dept"] == "eng"
        assert eng["heads"] == 3
        assert eng["total"] == 325.0
        assert (eng["lo"], eng["hi"]) == (95.0, 120.0)

    def test_global_aggregate_without_group(self, session):
        (row,) = session.execute("SELECT COUNT(*) AS n, AVG(salary) AS pay FROM employees")
        assert row["n"] == 6
        assert row["pay"] == pytest.approx(106.6666, abs=1e-3)

    def test_having(self, session):
        rows = session.execute(
            "SELECT dept FROM employees GROUP BY dept "
            "HAVING COUNT(*) >= 2 ORDER BY dept"
        )
        assert [r["dept"] for r in rows] == ["eng", "ops"]

    def test_order_by_aggregate_alias(self, session):
        rows = session.execute(
            "SELECT dept, AVG(salary) AS pay FROM employees "
            "GROUP BY dept ORDER BY pay DESC"
        )
        assert [r["dept"] for r in rows] == ["sci", "eng", "ops"]

    def test_join(self, session):
        rows = session.execute(
            "SELECT e.name, d.floor FROM employees e "
            "JOIN departments d ON e.dept = d.dept "
            "WHERE d.floor > 2 ORDER BY e.name"
        )
        assert [(r["name"], r["floor"]) for r in rows] == [
            ("ada", 3), ("bob", 3), ("eve", 9), ("fay", 3),
        ]

    def test_distinct_with_order(self, session):
        rows = session.execute("SELECT DISTINCT dept FROM employees ORDER BY dept")
        assert [r["dept"] for r in rows] == ["eng", "ops", "sci"]

    def test_limit(self, session):
        rows = session.execute(
            "SELECT name FROM employees ORDER BY salary DESC LIMIT 2"
        )
        assert [r["name"] for r in rows] == ["eve", "ada"]

    def test_order_multiple_keys_mixed_direction(self, session):
        rows = session.execute(
            "SELECT dept, name FROM employees ORDER BY dept ASC, salary DESC"
        )
        assert [r["name"] for r in rows] == ["ada", "fay", "bob", "dan", "cyn", "eve"]

    @pytest.mark.parametrize("platform", ["java", "spark", "postgres"])
    def test_platform_independence(self, session, platform):
        reference = session.execute(
            "SELECT dept, SUM(salary) AS total FROM employees "
            "GROUP BY dept ORDER BY dept",
            platform="java",
        )
        rows = session.execute(
            "SELECT dept, SUM(salary) AS total FROM employees "
            "GROUP BY dept ORDER BY dept",
            platform=platform,
        )
        assert rows == reference

    def test_explain_renders_plan(self, session):
        text = session.explain("SELECT name FROM employees WHERE active")
        assert "sql-where" in text
        assert "sql-project" in text


class TestTranslationErrors:
    def test_unknown_table(self, session):
        with pytest.raises(SqlTranslationError, match="unknown table"):
            session.execute("SELECT a FROM ghost")

    def test_unknown_column(self, session):
        with pytest.raises(SqlTranslationError, match="unknown column"):
            session.execute("SELECT ghost FROM employees")

    def test_ambiguous_column_in_join(self, session):
        with pytest.raises(SqlTranslationError, match="ambiguous"):
            session.execute(
                "SELECT name FROM employees e JOIN departments d ON dept = d.dept"
            )

    def test_ungrouped_select_column(self, session):
        with pytest.raises(SqlTranslationError, match="neither grouped"):
            session.execute("SELECT name, COUNT(*) FROM employees GROUP BY dept")

    def test_having_without_group(self, session):
        with pytest.raises(SqlTranslationError, match="HAVING requires"):
            session.execute("SELECT name FROM employees HAVING COUNT(*) > 1")

    def test_star_with_group_by(self, session):
        with pytest.raises(SqlTranslationError, match="ambiguous"):
            session.execute("SELECT * FROM employees GROUP BY dept")

    def test_aggregate_in_where(self, session):
        with pytest.raises(SqlTranslationError, match="aggregate not allowed"):
            session.execute("SELECT dept FROM employees WHERE COUNT(*) > 1")

    def test_duplicate_output_names(self, session):
        with pytest.raises(SqlTranslationError, match="duplicate output"):
            session.execute("SELECT name, salary AS name FROM employees")


class TestCatalogTables:
    def test_query_catalog_dataset(self, tmp_path):
        catalog = Catalog()
        catalog.register_store(LocalFsStore(root=str(tmp_path)))
        schema = Schema(["id", "v"])
        rows = [schema.record(i, i * i) for i in range(20)]
        catalog.write_dataset("squares", rows, "localfs", schema=schema)
        session = SqlSession(RheemContext(catalog=catalog))
        out = session.execute(
            "SELECT id FROM squares WHERE v > 100 ORDER BY id LIMIT 3"
        )
        assert [r["id"] for r in out] == [11, 12, 13]

    def test_table_names_include_catalog(self, tmp_path):
        catalog = Catalog()
        catalog.register_store(LocalFsStore(root=str(tmp_path)))
        schema = Schema(["x"])
        catalog.write_dataset("c1", [schema.record(1)], "localfs", schema=schema)
        session = SqlSession(RheemContext(catalog=catalog))
        session.register_table("m1", [schema.record(2)])
        assert set(session.table_names) == {"c1", "m1"}
