"""Tests for the ML application: template machinery, model quality and
platform independence."""

import pytest

from repro.apps.ml import (
    KMeans,
    LinearRegression,
    LogisticRegression,
    SVMClassifier,
    dump_libsvm,
    linear_data,
    linearly_separable,
    parse_libsvm,
    sample_blobs,
)
from repro.apps.ml.operators import Initialize, IterativeTemplate, Loop, Process
from repro.errors import ValidationError


class TestDataGen:
    def test_linearly_separable_labels(self):
        data = linearly_separable(100, dim=3, seed=1)
        assert len(data) == 100
        assert {y for _, y in data} <= {-1, 1}
        assert all(len(x) == 3 for x, _ in data)

    def test_deterministic(self):
        assert linearly_separable(30, seed=2) == linearly_separable(30, seed=2)

    def test_flip_fraction(self):
        clean = linearly_separable(100, seed=3)
        noisy = linearly_separable(100, seed=3, flip_fraction=0.2)
        flips = sum(1 for a, b in zip(clean, noisy) if a[1] != b[1])
        assert flips == 20

    def test_blobs_shapes(self):
        points, centers = sample_blobs(60, k=4, dim=3, seed=1)
        assert len(points) == 60
        assert len(centers) == 4
        assert all(len(p) == 3 for p in points)

    def test_linear_data_relationship(self):
        points, weights = linear_data(50, dim=2, noise=0.0, seed=1)
        for x, y in points:
            predicted = sum(w * v for w, v in zip(weights, x))
            assert y == pytest.approx(predicted)

    def test_libsvm_roundtrip(self):
        data = linearly_separable(20, dim=5, seed=7)
        lines = dump_libsvm(data)
        parsed = parse_libsvm(lines, dim=5)
        for (x1, y1), (x2, y2) in zip(data, parsed):
            assert y1 == y2
            assert x1 == pytest.approx(x2)

    def test_libsvm_sparse_zero_features(self):
        lines = dump_libsvm([((0.0, 2.0, 0.0), 1)])
        assert lines == ["1 2:2"]
        assert parse_libsvm(lines, dim=3) == [((0.0, 2.0, 0.0), 1)]


class TestTemplate:
    def test_loop_requires_stopping_rule(self):
        with pytest.raises(ValidationError):
            Loop()

    def test_template_runs_minimal_algorithm(self, ctx):
        template = IterativeTemplate(
            Initialize(lambda data: 0.0),
            Process(
                contribute=lambda state, point: point,
                combine=lambda a, b: a + b,
                update=lambda state, total: state + total,
            ),
            Loop(iterations=3),
        )
        result = template.fit(ctx, [1, 2, 3], platform="java")
        assert result.state == 18.0  # +6 per iteration
        assert result.metrics.loop_iterations == 3


class TestSVM:
    @pytest.fixture(scope="class")
    def data(self):
        return linearly_separable(250, dim=4, seed=11)

    def test_separable_data_high_accuracy(self, ctx, data):
        svm = SVMClassifier(iterations=40).fit(ctx, data, platform="java")
        assert svm.accuracy(data) >= 0.95

    def test_platform_independent_model(self, ctx, data):
        java = SVMClassifier(iterations=15).fit(ctx, data, platform="java")
        spark = SVMClassifier(iterations=15).fit(ctx, data, platform="spark")
        assert java.weights == pytest.approx(spark.weights)
        assert java.bias == pytest.approx(spark.bias)

    def test_unfitted_predict_raises(self):
        with pytest.raises(ValidationError, match="not fitted"):
            SVMClassifier().predict((1.0,))

    def test_empty_data_rejected(self, ctx):
        with pytest.raises(ValidationError, match="empty"):
            SVMClassifier().fit(ctx, [])

    def test_invalid_iterations(self):
        with pytest.raises(ValidationError):
            SVMClassifier(iterations=0)

    def test_virtual_time_java_beats_spark_small(self, ctx, data):
        java = SVMClassifier(iterations=10).fit(ctx, data, platform="java")
        spark = SVMClassifier(iterations=10).fit(ctx, data, platform="spark")
        assert java.metrics.virtual_ms * 5 < spark.metrics.virtual_ms


class TestKMeans:
    def test_recovers_blob_structure(self, ctx):
        points, centers = sample_blobs(150, k=3, dim=2, seed=21, spread=0.05)
        model = KMeans(3, seed=1).fit(ctx, points, platform="java")
        # every fitted centroid is close to a true center
        for centroid in model.centroids:
            nearest = min(
                centers,
                key=lambda c: sum((a - b) ** 2 for a, b in zip(c, centroid)),
            )
            distance = sum((a - b) ** 2 for a, b in zip(nearest, centroid)) ** 0.5
            assert distance < 0.2

    def test_convergence_before_max_iterations(self, ctx):
        points, _ = sample_blobs(90, k=3, dim=2, seed=4, spread=0.03)
        model = KMeans(3, max_iterations=50, seed=2).fit(ctx, points, platform="java")
        assert model.metrics.loop_iterations < 50

    def test_k_larger_than_data_rejected(self, ctx):
        with pytest.raises(ValidationError, match="at least"):
            KMeans(10).fit(ctx, [(0.0, 0.0)], platform="java")

    def test_invalid_k(self):
        with pytest.raises(ValidationError):
            KMeans(0)

    def test_assign_and_inertia(self, ctx):
        points, _ = sample_blobs(60, k=2, dim=2, seed=6)
        model = KMeans(2, seed=3).fit(ctx, points, platform="java")
        assert 0 <= model.assign(points[0]) < 2
        assert model.inertia(points) >= 0


class TestRegression:
    def test_linear_recovers_weights(self, ctx):
        points, weights = linear_data(120, dim=3, noise=0.01, seed=8)
        model = LinearRegression(iterations=150, learning_rate=0.6).fit(
            ctx, points, platform="java"
        )
        assert model.mse(points) < 0.01
        for fitted, true in zip(model.weights, weights):
            assert fitted == pytest.approx(true, abs=0.1)

    def test_logistic_separates(self, ctx):
        raw = linearly_separable(150, dim=3, seed=14)
        data = [(x, 1 if y > 0 else 0) for x, y in raw]
        model = LogisticRegression(iterations=80).fit(ctx, data, platform="java")
        assert model.accuracy(data) >= 0.95
        assert 0.0 <= model.predict_proba(data[0][0]) <= 1.0

    def test_platform_independence(self, ctx):
        points, _ = linear_data(60, dim=2, seed=9)
        java = LinearRegression(iterations=20).fit(ctx, points, platform="java")
        spark = LinearRegression(iterations=20).fit(ctx, points, platform="spark")
        assert java.weights == pytest.approx(spark.weights)

    def test_unfitted_raises(self):
        with pytest.raises(ValidationError):
            LinearRegression().predict((0.0,))
        with pytest.raises(ValidationError):
            LogisticRegression().predict_proba((0.0,))

    def test_empty_accuracy_rejected(self, ctx):
        model = LogisticRegression(iterations=1).fit(
            ctx, [((0.0,), 1)], platform="java"
        )
        with pytest.raises(ValidationError):
            model.accuracy([])
