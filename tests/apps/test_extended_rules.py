"""Tests for the extended rule types (UniqueRule, NullRule) and SSSP."""

import math

import networkx as nx
import pytest

from repro.apps.cleaning import BigDansing, NullRule, UniqueRule, tax_schema
from repro.apps.graph import ShortestPaths, erdos_renyi
from repro.errors import RuleError, ValidationError
from repro.util.rng import make_rng


@pytest.fixture(scope="module")
def bigdansing():
    return BigDansing()


def rows_with_duplicates():
    schema = tax_schema()
    return [
        schema.record("ada", "Z1", "NYC", "S1", 100.0, 10.0),
        schema.record("bob", "Z2", "LA", "S1", 90.0, 9.0),
        schema.record("ada", "Z3", "SF", "S2", 80.0, 8.0),  # dup name
        schema.record("cyn", "Z4", "", "S2", 70.0, 7.0),    # null city
        schema.record("dan", "Z5", None, "S2", 60.0, 6.0),  # null city
    ]


class TestUniqueRule:
    def test_detects_duplicates(self, bigdansing):
        rule = UniqueRule("uq-name", ["name"])
        violations, _ = bigdansing.detect(rows_with_duplicates(), rule,
                                          platform="java")
        assert len(violations) == 1
        assert violations[0].tuple_ids() == (0, 2)

    def test_multi_field_key(self, bigdansing):
        schema = tax_schema()
        rows = [
            schema.record("a", "Z", "C", "S", 1.0, 1.0),
            schema.record("a", "Z", "D", "S", 2.0, 2.0),  # same (name, zip)
            schema.record("a", "Y", "C", "S", 3.0, 3.0),  # different zip
        ]
        rule = UniqueRule("uq", ["name", "zipcode"])
        violations, _ = bigdansing.detect(rows, rule, platform="java")
        assert len(violations) == 1
        assert violations[0].tuple_ids() == (0, 1)

    def test_no_duplicates_no_violations(self, bigdansing):
        schema = tax_schema()
        rows = [
            schema.record(f"n{i}", "Z", "C", "S", 1.0, 1.0) for i in range(5)
        ]
        violations, _ = bigdansing.detect(rows, UniqueRule("uq", ["name"]),
                                          platform="java")
        assert violations == []

    def test_empty_fields_rejected(self):
        with pytest.raises(RuleError):
            UniqueRule("uq", [])

    def test_agrees_with_single_udf_baseline(self, bigdansing):
        rule = UniqueRule("uq-name", ["name"])
        rows = rows_with_duplicates()
        a, _ = bigdansing.detect(rows, rule, platform="java", method="operators")
        b, _ = bigdansing.detect(rows, rule, platform="java", method="single-udf")
        assert set(a) == set(b)


class TestNullRule:
    def test_detects_every_null_variant(self, bigdansing):
        rule = NullRule("nn-city", ["city"])
        violations, _ = bigdansing.detect(rows_with_duplicates(), rule,
                                          platform="java")
        assert sorted(v.cells[0].tid for v in violations) == [3, 4]

    def test_custom_null_values(self, bigdansing):
        schema = tax_schema()
        rows = [schema.record("a", "Z", "N/A", "S", 1.0, 1.0)]
        rule = NullRule("nn", ["city"], null_values=("N/A",))
        violations, _ = bigdansing.detect(rows, rule, platform="java")
        assert len(violations) == 1

    def test_defaults_drive_repair(self, bigdansing):
        rule = NullRule("nn-city", ["city"], defaults={"city": "UNKNOWN"})
        cleaned, report = bigdansing.clean(rows_with_duplicates(), [rule],
                                           platform="java")
        assert report["cells_changed"] == 2
        assert cleaned[3]["city"] == "UNKNOWN"
        assert cleaned[4]["city"] == "UNKNOWN"
        remaining, _ = bigdansing.detect(cleaned, rule, platform="java")
        assert remaining == []

    def test_no_default_no_fix(self, bigdansing):
        rule = NullRule("nn-city", ["city"])
        violations, _ = bigdansing.detect(rows_with_duplicates(), rule,
                                          platform="java")
        assert bigdansing.gen_fixes(violations, rule) == []

    def test_pair_detect_rejected(self):
        rule = NullRule("nn", ["city"])
        with pytest.raises(RuleError, match="single-tuple"):
            rule.detect(((0, None), (1, None)))

    def test_platform_independent(self, bigdansing):
        rule = NullRule("nn-city", ["city"])
        rows = rows_with_duplicates()
        java, _ = bigdansing.detect(rows, rule, platform="java")
        spark, _ = bigdansing.detect(rows, rule, platform="spark")
        assert set(java) == set(spark)


class TestShortestPaths:
    @pytest.fixture(scope="class")
    def weighted_edges(self):
        rng = make_rng(3, "sssp-test")
        return [
            (s, t, round(rng.uniform(0.5, 4.0), 2))
            for s, t in erdos_renyi(25, 0.15, seed=8)
        ]

    def test_matches_networkx_dijkstra(self, ctx, weighted_edges):
        sp = ShortestPaths()
        sp.run(ctx, weighted_edges, source=0, platform="java")
        graph = nx.DiGraph()
        graph.add_weighted_edges_from(weighted_edges)
        expected = nx.single_source_dijkstra_path_length(graph, 0)
        assert set(sp.reachable()) == set(expected)
        for node, distance in sp.reachable().items():
            assert distance == pytest.approx(expected[node])

    def test_unreachable_nodes_infinite(self, ctx):
        sp = ShortestPaths()
        distances = sp.run(ctx, [(0, 1, 1.0), (2, 3, 1.0)], source=0,
                           platform="java")
        assert distances[1] == 1.0
        assert math.isinf(distances[2])
        assert math.isinf(distances[3])

    def test_source_distance_zero(self, ctx):
        sp = ShortestPaths()
        distances = sp.run(ctx, [(0, 1, 5.0)], source=0, platform="java")
        assert distances[0] == 0.0

    def test_line_graph_distances(self, ctx):
        edges = [(i, i + 1, 2.0) for i in range(5)]
        sp = ShortestPaths()
        distances = sp.run(ctx, edges, source=0, platform="java")
        assert [distances[i] for i in range(6)] == [0, 2, 4, 6, 8, 10]

    def test_negative_weight_rejected(self, ctx):
        with pytest.raises(ValidationError, match="negative"):
            ShortestPaths().run(ctx, [(0, 1, -1.0)], source=0)

    def test_empty_edges_rejected(self, ctx):
        with pytest.raises(ValidationError):
            ShortestPaths().run(ctx, [], source=0)

    def test_platform_independence(self, ctx, weighted_edges):
        java = ShortestPaths().run(ctx, weighted_edges, source=0,
                                   platform="java")
        spark = ShortestPaths().run(ctx, weighted_edges, source=0,
                                    platform="spark")
        for node in java:
            assert java[node] == pytest.approx(spark[node]) or (
                math.isinf(java[node]) and math.isinf(spark[node])
            )
