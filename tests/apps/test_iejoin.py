"""Property tests for the IEJoin operator: equivalence with the
brute-force theta join for every inequality-operator combination."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RheemContext
from repro.apps.cleaning.iejoin import (
    InequalityJoin,
    ie_join_pairs,
    register_iejoin,
)
from repro.errors import RuleError

OPS = ["<", "<=", ">", ">="]

_COMPARE = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

points = st.lists(
    st.tuples(st.integers(-10, 10), st.integers(-10, 10)), max_size=25
)


def brute_force(left, right, op1, op2):
    return sorted(
        (l, r)
        for l in left
        for r in right
        if _COMPARE[op1](l[0], r[0]) and _COMPARE[op2](l[1], r[1])
    )


def run_iejoin(left, right, op1, op2):
    return sorted(
        ie_join_pairs(
            left, right,
            lambda t: t[0], op1, lambda t: t[0],
            lambda t: t[1], op2, lambda t: t[1],
        )
    )


@pytest.mark.parametrize("op1,op2", list(itertools.product(OPS, OPS)))
def test_all_operator_combinations_small(op1, op2):
    left = [(1, 5), (2, 3), (2, 3), (4, 1), (0, 0)]
    right = [(2, 2), (3, 4), (1, 1), (4, 0)]
    assert run_iejoin(left, right, op1, op2) == brute_force(left, right, op1, op2)


@settings(max_examples=60)
@given(points, points, st.sampled_from(OPS), st.sampled_from(OPS))
def test_matches_brute_force_property(left, right, op1, op2):
    assert run_iejoin(left, right, op1, op2) == brute_force(left, right, op1, op2)


class TestEdgeCases:
    def test_empty_sides(self):
        assert run_iejoin([], [(1, 1)], "<", ">") == []
        assert run_iejoin([(1, 1)], [], "<", ">") == []

    def test_duplicate_keys(self):
        left = [(1, 1)] * 3
        right = [(2, 0)] * 2
        assert len(run_iejoin(left, right, "<", ">")) == 6

    def test_equality_operator_rejected(self):
        with pytest.raises(RuleError, match="inequality"):
            list(
                ie_join_pairs(
                    [(1, 1)], [(1, 1)],
                    lambda t: t[0], "==", lambda t: t[0],
                    lambda t: t[1], "<", lambda t: t[1],
                )
            )

    def test_self_join_strict_excludes_self_pairs(self):
        data = [(1, 2), (2, 1)]
        pairs = run_iejoin(data, data, "<", ">")
        assert pairs == [((1, 2), (2, 1))]


class TestOperatorIntegration:
    def test_logical_operator_validates_ops(self):
        with pytest.raises(RuleError):
            InequalityJoin(
                lambda t: t, "==", lambda t: t, lambda t: t, "<", lambda t: t
            )

    def test_pair_predicate(self):
        join = InequalityJoin(
            lambda t: t[0], "<", lambda t: t[0],
            lambda t: t[1], ">", lambda t: t[1],
        )
        assert join.pair_predicate((1, 5), (2, 3)) is True
        assert join.pair_predicate((3, 5), (2, 3)) is False

    @pytest.mark.parametrize("platform", ["java", "spark", "postgres"])
    def test_plan_level_iejoin_on_every_platform(self, platform):
        ctx = RheemContext()
        register_iejoin(ctx.mappings, ctx.platforms)
        data = [(i % 7, (i * 3) % 11) for i in range(40)]
        left = ctx.collection(data)
        right = ctx.collection(data)
        join = InequalityJoin(
            lambda t: t[0], "<", lambda t: t[0],
            lambda t: t[1], ">", lambda t: t[1],
        )
        out = sorted(left.apply_binary_operator(join, right).collect(platform=platform))
        assert out == brute_force(data, data, "<", ">")

    def test_registration_idempotent(self):
        ctx = RheemContext()
        register_iejoin(ctx.mappings, ctx.platforms)
        register_iejoin(ctx.mappings, ctx.platforms)
        join = InequalityJoin(
            lambda t: t[0], "<", lambda t: t[0],
            lambda t: t[1], ">", lambda t: t[1],
        )
        assert len(ctx.mappings.candidates(join)) == 2

    def test_iejoin_variant_preferred_by_cost(self):
        """The optimizer should pick IEJoin over the nested-loop variant."""
        ctx = RheemContext()
        register_iejoin(ctx.mappings, ctx.platforms)
        data = [(i, -i) for i in range(200)]
        join = InequalityJoin(
            lambda t: t[0], "<", lambda t: t[0],
            lambda t: t[1], ">", lambda t: t[1],
        )
        physical = ctx.app_optimizer.optimize(
            ctx.collection(data)
            .apply_binary_operator(join, ctx.collection(data))
            .plan
        )
        # translate attaches alternates; enumerate commits the cheaper one
        execution = ctx.task_optimizer.optimize(physical, forced_platform="java")
        kinds = {
            op.kind
            for atom in execution.atoms
            for op in getattr(atom, "fragment", [])
        }
        assert "join.iejoin" in kinds
