"""Tests for the graph application, validated against networkx."""

import networkx as nx
import pytest

from repro.apps.graph import (
    ConnectedComponents,
    PageRank,
    erdos_renyi,
    ring_of_cliques,
)
from repro.apps.graph.datagen import node_set
from repro.errors import ValidationError


class TestDataGen:
    def test_erdos_renyi_deterministic(self):
        assert erdos_renyi(20, 0.2, seed=1) == erdos_renyi(20, 0.2, seed=1)

    def test_erdos_renyi_no_self_loops(self):
        assert all(s != d for s, d in erdos_renyi(30, 0.3, seed=2))

    def test_erdos_renyi_undirected_ordering(self):
        edges = erdos_renyi(20, 0.3, seed=3, directed=False)
        assert all(s < d for s, d in edges)

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            erdos_renyi(5, 1.5)

    def test_ring_of_cliques_component_count(self):
        edges = ring_of_cliques(3, 4, connect=False)
        graph = nx.Graph(edges)
        assert nx.number_connected_components(graph) == 3

    def test_node_set(self):
        assert node_set([(3, 1), (2, 3)]) == [1, 2, 3]


class TestPageRank:
    @pytest.fixture(scope="class")
    def edges(self):
        return erdos_renyi(35, 0.12, seed=7)

    def test_matches_networkx(self, ctx, edges):
        ranks = PageRank(iterations=30).run(ctx, edges, platform="java")
        expected = nx.pagerank(nx.DiGraph(edges), alpha=0.85)
        for node, rank in ranks.items():
            assert rank == pytest.approx(expected[node], abs=1e-4)

    def test_ranks_sum_to_one(self, ctx, edges):
        ranks = PageRank(iterations=15).run(ctx, edges, platform="java")
        assert sum(ranks.values()) == pytest.approx(1.0)

    def test_platform_independence(self, ctx, edges):
        java = PageRank(iterations=10).run(ctx, edges, platform="java")
        spark = PageRank(iterations=10).run(ctx, edges, platform="spark")
        for node in java:
            assert java[node] == pytest.approx(spark[node])

    def test_star_graph_center_wins(self, ctx):
        edges = [(i, 0) for i in range(1, 8)]
        pr = PageRank(iterations=25)
        pr.run(ctx, edges, platform="java")
        assert pr.top(1)[0][0] == 0

    def test_empty_edges_rejected(self, ctx):
        with pytest.raises(ValidationError):
            PageRank().run(ctx, [])

    def test_invalid_damping(self):
        with pytest.raises(ValidationError):
            PageRank(damping=1.0)

    def test_top_before_run_rejected(self):
        with pytest.raises(ValidationError):
            PageRank().top(3)


class TestConnectedComponents:
    def test_separate_cliques(self, ctx):
        edges = ring_of_cliques(4, 5, connect=False)
        cc = ConnectedComponents()
        labels = cc.run(ctx, edges, platform="java")
        assert cc.component_count == 4
        components = cc.components()
        assert sorted(len(m) for m in components.values()) == [5, 5, 5, 5]
        assert set(labels) == set(range(20))

    def test_matches_networkx_on_random_graph(self, ctx):
        edges = erdos_renyi(40, 0.05, seed=13, directed=False)
        cc = ConnectedComponents()
        cc.run(ctx, edges, platform="java")
        graph = nx.Graph(edges)
        expected = {
            frozenset(component)
            for component in nx.connected_components(graph)
        }
        found = {frozenset(m) for m in cc.components().values()}
        assert found == expected

    def test_connected_ring_single_component(self, ctx):
        cc = ConnectedComponents()
        cc.run(ctx, ring_of_cliques(3, 4, connect=True), platform="java")
        assert cc.component_count == 1

    def test_labels_are_component_minimum(self, ctx):
        edges = [(5, 6), (6, 7), (1, 2)]
        cc = ConnectedComponents()
        labels = cc.run(ctx, edges, platform="java")
        assert labels[5] == labels[6] == labels[7] == 5
        assert labels[1] == labels[2] == 1

    def test_platform_independence(self, ctx):
        edges = erdos_renyi(25, 0.1, seed=17, directed=False)
        java = ConnectedComponents().run(ctx, edges, platform="java")
        spark = ConnectedComponents().run(ctx, edges, platform="spark")
        assert java == spark

    def test_empty_edges_rejected(self, ctx):
        with pytest.raises(ValidationError):
            ConnectedComponents().run(ctx, [])

    def test_component_count_before_run(self):
        with pytest.raises(ValidationError):
            _ = ConnectedComponents().component_count
