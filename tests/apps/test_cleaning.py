"""Tests for the BigDansing cleaning application: rules, detection plans,
repair, and data generation."""

import pytest

from repro.apps.cleaning import (
    BigDansing,
    Cell,
    DCRule,
    EquivalenceClassRepair,
    FDRule,
    Fix,
    Predicate,
    UDFRule,
    Violation,
    generate_tax_records,
    tax_schema,
)
from repro.errors import RuleError


@pytest.fixture(scope="module")
def dirty_rows():
    return generate_tax_records(
        300, seed=5, fd_error_rate=0.05, dc_error_rate=0.02
    )


@pytest.fixture(scope="module")
def bigdansing():
    return BigDansing()


FD = FDRule("fd-zip-city", lhs=["zipcode"], rhs=["city"])
DC = DCRule(
    "dc-salary-tax",
    [
        Predicate("state", "==", "state"),
        Predicate("salary", ">", "salary"),
        Predicate("tax", "<", "tax"),
    ],
)


class TestViolationModel:
    def test_cells_canonicalised(self):
        a = Cell(1, "city", "x")
        b = Cell(2, "city", "y")
        assert Violation("r", (a, b)) == Violation("r", (b, a))

    def test_tuple_ids(self):
        v = Violation("r", (Cell(5, "f", 1), Cell(2, "f", 2)))
        assert v.tuple_ids() == (2, 5)

    def test_fix_str_forms(self):
        assign = Fix(Cell(1, "f", 0), value=9)
        equate = Fix(Cell(1, "f", 0), Cell(2, "f", 1))
        assert assign.is_assignment
        assert not equate.is_assignment
        assert ":=" in str(assign)
        assert "==" in str(equate)


class TestRules:
    def test_fd_validation(self):
        with pytest.raises(RuleError):
            FDRule("bad", [], ["x"])
        with pytest.raises(RuleError, match="overlap"):
            FDRule("bad", ["a"], ["a"])

    def test_fd_scope_projects(self):
        schema = tax_schema()
        row = schema.record("n", "z", "c", "s", 1.0, 2.0)
        _, scoped = FD.scope((0, row))
        assert set(scoped.schema.fields) == {"zipcode", "city"}

    def test_fd_block_key(self):
        schema = tax_schema()
        row = schema.record("n", "Z1", "c", "s", 1.0, 2.0)
        assert FD.block((0, row)) == ("Z1",)

    def test_fd_detect(self):
        schema = tax_schema()
        r1 = (0, schema.record("a", "Z", "NYC", "s", 1.0, 1.0))
        r2 = (1, schema.record("b", "Z", "LA", "s", 1.0, 1.0))
        violations = FD.detect((r1, r2))
        assert len(violations) == 1
        assert {c.field for c in violations[0].cells} == {"city"}

    def test_fd_gen_fix_equates(self):
        violation = Violation("fd", (Cell(0, "city", "NYC"), Cell(1, "city", "LA")))
        (fix,) = FD.gen_fix(violation)
        assert not fix.is_assignment

    def test_dc_predicate_validation(self):
        with pytest.raises(RuleError, match="unknown operator"):
            Predicate("a", "~", "b")

    def test_dc_equalities_split(self):
        assert len(DC.equalities) == 1
        assert len(DC.residual) == 2
        assert DC.inequality_pair is not None

    def test_dc_detect_direction(self):
        schema = tax_schema()
        rich = (0, schema.record("a", "z", "c", "S", 100.0, 1.0))
        poor = (1, schema.record("b", "z", "c", "S", 50.0, 5.0))
        assert DC.detect((rich, poor))  # salary >, tax < holds
        assert not DC.detect((poor, rich))

    def test_full_detect_respects_blocking(self):
        schema = tax_schema()
        s1 = (0, schema.record("a", "z", "c", "S1", 100.0, 1.0))
        s2 = (1, schema.record("b", "z", "c", "S2", 50.0, 5.0))
        assert DC.full_detect((s1, s2)) == []

    def test_udf_rule_defaults(self):
        rule = UDFRule("u", detect=lambda cand: [])
        assert rule.block((0, None)) == 0
        assert rule.scope((0, "x")) == (0, "x")
        assert rule.gen_fix(None) == []

    def test_describe(self):
        assert "zipcode" in FD.describe()
        assert "salary" in DC.describe()


class TestDetection:
    @pytest.mark.parametrize("method", ["operators", "single-udf"])
    def test_fd_methods_agree(self, bigdansing, dirty_rows, method):
        reference, _ = bigdansing.detect(dirty_rows, FD, platform="java",
                                         method="operators")
        found, _ = bigdansing.detect(dirty_rows, FD, platform="java",
                                     method=method)
        assert set(found) == set(reference)

    @pytest.mark.parametrize("method", ["operators", "iejoin", "cross"])
    def test_dc_methods_agree(self, bigdansing, dirty_rows, method):
        reference, _ = bigdansing.detect(dirty_rows, DC, platform="java",
                                         method="cross")
        found, _ = bigdansing.detect(dirty_rows, DC, platform="java",
                                     method=method)
        assert set(found) == set(reference)

    def test_platform_independence(self, bigdansing, dirty_rows):
        on_java, _ = bigdansing.detect(dirty_rows, FD, platform="java")
        on_spark, _ = bigdansing.detect(dirty_rows, FD, platform="spark")
        assert set(on_java) == set(on_spark)

    def test_auto_picks_iejoin_for_inequality_dc(self, bigdansing, dirty_rows):
        violations, _ = bigdansing.detect(dirty_rows, DC, platform="java",
                                          method="auto")
        reference, _ = bigdansing.detect(dirty_rows, DC, platform="java",
                                         method="cross")
        assert set(violations) == set(reference)

    def test_iejoin_rejects_fd(self, bigdansing, dirty_rows):
        with pytest.raises(RuleError, match="not an inequality DC"):
            bigdansing.detect(dirty_rows, FD, method="iejoin")

    def test_unknown_method(self, bigdansing, dirty_rows):
        with pytest.raises(RuleError, match="unknown method"):
            bigdansing.detect(dirty_rows, FD, method="warp")

    def test_clean_data_has_no_violations(self, bigdansing):
        rows = generate_tax_records(200, seed=9, fd_error_rate=0.0,
                                    dc_error_rate=0.0)
        violations, _ = bigdansing.detect(rows, FD, platform="java")
        assert violations == []

    def test_single_udf_slower_on_spark(self, bigdansing, dirty_rows):
        _, ops = bigdansing.detect(dirty_rows, FD, platform="spark",
                                   method="operators")
        _, mono = bigdansing.detect(dirty_rows, FD, platform="spark",
                                    method="single-udf")
        assert mono.virtual_ms > ops.virtual_ms

    def test_iejoin_faster_than_cross_on_spark(self, bigdansing, dirty_rows):
        _, ie = bigdansing.detect(dirty_rows, DC, platform="spark",
                                  method="iejoin")
        _, cross = bigdansing.detect(dirty_rows, DC, platform="spark",
                                     method="cross")
        assert ie.virtual_ms < cross.virtual_ms


class TestRepair:
    def test_equivalence_class_majority(self):
        schema = tax_schema()
        rows = [
            schema.record("a", "Z", "NYC", "s", 1.0, 1.0),
            schema.record("b", "Z", "NYC", "s", 1.0, 1.0),
            schema.record("c", "Z", "LA", "s", 1.0, 1.0),
        ]
        fixes = [
            Fix(Cell(0, "city", "NYC"), Cell(2, "city", "LA")),
            Fix(Cell(1, "city", "NYC"), Cell(2, "city", "LA")),
        ]
        repaired, changed = EquivalenceClassRepair().repair(rows, fixes)
        assert changed == 1
        assert repaired[2]["city"] == "NYC"

    def test_forced_assignment_wins(self):
        schema = tax_schema()
        rows = [schema.record("a", "Z", "NYC", "s", 1.0, 1.0)]
        fixes = [Fix(Cell(0, "city", "NYC"), value="Boston")]
        repaired, changed = EquivalenceClassRepair().repair(rows, fixes)
        assert changed == 1
        assert repaired[0]["city"] == "Boston"

    def test_no_fixes_no_change(self):
        schema = tax_schema()
        rows = [schema.record("a", "Z", "NYC", "s", 1.0, 1.0)]
        repaired, changed = EquivalenceClassRepair().repair(rows, [])
        assert changed == 0
        assert repaired == rows

    def test_clean_reaches_fixpoint(self, bigdansing):
        rows = generate_tax_records(250, seed=3, fd_error_rate=0.04,
                                    dc_error_rate=0.0)
        cleaned, report = bigdansing.clean(rows, [FD], platform="java")
        assert report["passes"][-1] == 0 or report["cells_changed"] > 0
        remaining, _ = bigdansing.detect(cleaned, FD, platform="java")
        assert remaining == []

    def test_gen_fixes(self, bigdansing, dirty_rows):
        violations, _ = bigdansing.detect(dirty_rows, FD, platform="java")
        fixes = bigdansing.gen_fixes(violations, FD)
        assert len(fixes) == len(violations)


class TestDataGen:
    def test_deterministic(self):
        assert generate_tax_records(50, seed=1) == generate_tax_records(50, seed=1)

    def test_seed_changes_data(self):
        assert generate_tax_records(50, seed=1) != generate_tax_records(50, seed=2)

    def test_clean_generation_fd_consistent(self):
        rows = generate_tax_records(300, seed=2, fd_error_rate=0.0,
                                    dc_error_rate=0.0)
        city_of = {}
        for row in rows:
            assert city_of.setdefault(row["zipcode"], row["city"]) == row["city"]

    def test_error_rates_roughly_respected(self):
        rows = generate_tax_records(1000, seed=4, fd_error_rate=0.1,
                                    dc_error_rate=0.0)
        typos = sum(1 for r in rows if r["city"].endswith("_typo"))
        assert typos == 100

    def test_schema_matches(self):
        rows = generate_tax_records(5, seed=1)
        assert rows[0].schema == tax_schema()
