"""Property tests: random SQL queries vs a brute-force reference.

A generator produces filter / group-by / order-by / limit combinations
over one table; a tiny pure-Python reference evaluator computes the
expected answer independently of the RHEEM stack.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RheemContext
from repro.apps.sql import SqlSession
from repro.core.types import Schema

SCHEMA = Schema(["id", "grp", "v"])


@st.composite
def query_specs(draw):
    rows = draw(
        st.lists(
            st.tuples(
                st.integers(0, 99),
                st.integers(0, 3),
                st.integers(-20, 20),
            ),
            min_size=0,
            max_size=30,
        )
    )
    threshold = draw(st.integers(-20, 20))
    where = draw(st.booleans())
    grouped = draw(st.booleans())
    descending = draw(st.booleans())
    limit = draw(st.one_of(st.none(), st.integers(0, 10)))
    return rows, threshold, where, grouped, descending, limit


def build_sql(threshold, where, grouped, descending, limit):
    parts = []
    if grouped:
        parts.append("SELECT grp, COUNT(*) AS n, SUM(v) AS total FROM t")
    else:
        parts.append("SELECT id, v FROM t")
    if where:
        parts.append(f"WHERE v > {threshold}")
    if grouped:
        parts.append("GROUP BY grp ORDER BY grp")
        order_key = "grp"
    else:
        parts.append("ORDER BY id")
        order_key = "id"
    if descending:
        parts[-1] += " DESC"
    if limit is not None:
        parts.append(f"LIMIT {limit}")
    return " ".join(parts), order_key


def reference(rows, threshold, where, grouped, descending, limit):
    data = [r for r in rows if (r[2] > threshold) or not where]
    if grouped:
        groups = {}
        for _, grp, v in data:
            entry = groups.setdefault(grp, [0, 0])
            entry[0] += 1
            entry[1] += v
        result = [
            (grp, n, total) for grp, (n, total) in groups.items()
        ]
        result.sort(key=lambda t: t[0], reverse=descending)
    else:
        result = sorted(
            ((i, v) for i, _, v in data),
            key=lambda t: t[0],
            reverse=descending,
        )
    if limit is not None:
        result = result[:limit]
    return result


@settings(max_examples=50, deadline=None)
@given(query_specs())
def test_sql_matches_reference(spec):
    rows, threshold, where, grouped, descending, limit = spec
    session = SqlSession(RheemContext())
    session.register_table(
        "t", [SCHEMA.record(*row) for row in rows], SCHEMA
    )
    sql, order_key = build_sql(threshold, where, grouped, descending, limit)
    got = session.execute(sql, platform="java")
    expected = reference(rows, threshold, where, grouped, descending, limit)
    got_tuples = [tuple(r.values) for r in got]

    if grouped or not _has_duplicate_keys(rows, grouped):
        assert got_tuples == expected
    else:
        # duplicate order keys: order among ties is unspecified
        assert Counter(got_tuples) == Counter(expected) or _same_modulo_ties(
            got_tuples, expected, key_index=0, limit=limit
        )


def _has_duplicate_keys(rows, grouped):
    ids = [r[0] for r in rows]
    return len(ids) != len(set(ids))


def _same_modulo_ties(got, expected, key_index, limit):
    """With LIMIT over tied sort keys the chosen ties may differ; compare
    the key sequences only."""
    return [g[key_index] for g in got] == [e[key_index] for e in expected]


@settings(max_examples=25, deadline=None)
@given(query_specs())
def test_sql_platform_agreement(spec):
    rows, threshold, where, grouped, descending, limit = spec
    session = SqlSession(RheemContext())
    session.register_table(
        "t", [SCHEMA.record(*row) for row in rows], SCHEMA
    )
    sql, _ = build_sql(threshold, where, grouped, descending, limit)
    java = session.execute(sql, platform="java")
    postgres = session.execute(sql, platform="postgres")
    if _has_duplicate_keys(rows, grouped) and limit is not None:
        assert len(java) == len(postgres)
    else:
        assert java == postgres
