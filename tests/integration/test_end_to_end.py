"""End-to-end scenarios combining processing, storage and applications —
the paper's §1 Oil & Gas pipeline in miniature, plus failure recovery
across the stack."""

import pytest

from repro import FailureInjector, RheemContext
from repro.apps.cleaning import BigDansing, FDRule, generate_tax_records
from repro.apps.ml import LinearRegression
from repro.core.types import Schema
from repro.storage import (
    Catalog,
    HdfsStore,
    HotDataBuffer,
    LocalFsStore,
    RelationalStore,
    StorageOptimizer,
    WorkloadProfile,
)
from repro.util.rng import make_rng


@pytest.fixture()
def oil_catalog(tmp_path):
    catalog = Catalog(buffer=HotDataBuffer())
    catalog.register_store(LocalFsStore(root=str(tmp_path / "fs")))
    catalog.register_store(HdfsStore())
    catalog.register_store(RelationalStore())
    return catalog


def sensor_readings(n=600, seed=3):
    """Per-well sensor readings with a linear depth→pressure law."""
    rng = make_rng(seed, "sensors")
    schema = Schema(["well", "depth", "pressure"])
    rows = []
    for i in range(n):
        depth = rng.uniform(100.0, 1000.0)
        pressure = 0.05 * depth + rng.gauss(0, 0.5)
        rows.append(schema.record(i % 12, depth, pressure))
    return schema, rows


class TestOilAndGasPipeline:
    def test_store_query_train(self, oil_catalog):
        schema, rows = sensor_readings()
        oil_catalog.write_dataset("sensors", rows, "hdfs", schema=schema)

        ctx = RheemContext(catalog=oil_catalog)
        # Stage 1 (relational-friendly): filter + per-well aggregation.
        per_well = (
            ctx.table("sensors")
            .filter(lambda r: r["depth"] > 200.0)
            .group_by(lambda r: r["well"])
            .map(lambda kv: (kv[0], len(kv[1])))
            .collect()
        )
        assert sum(count for _, count in per_well) == sum(
            1 for r in rows if r["depth"] > 200.0
        )

        # Stage 2 (iterative): learn pressure ~ depth from the raw table.
        training = [
            ((r["depth"] / 1000.0,), r["pressure"] / 50.0) for r in rows
        ]
        model = LinearRegression(iterations=120, learning_rate=0.8).fit(
            ctx, training
        )
        assert model.mse(training) < 0.01

    def test_storage_optimizer_guides_placement(self, oil_catalog):
        schema, rows = sensor_readings(200)
        optimizer = StorageOptimizer(
            [oil_catalog.store(name) for name in oil_catalog.store_names]
        )
        placement = optimizer.choose(
            schema, len(rows), 48, WorkloadProfile(scans=20.0, projectivity=0.4)
        )
        cost = oil_catalog.write_dataset(
            "placed",
            rows,
            placement.store_name,
            schema=schema,
            plan=placement.plan,
        )
        assert cost > 0
        assert oil_catalog.read_dataset("placed") == rows

    def test_hot_buffer_accelerates_repeated_analytics(self, oil_catalog):
        schema, rows = sensor_readings(300)
        oil_catalog.write_dataset("hot", rows, "localfs", schema=schema)
        _, cold_cost = oil_catalog.read_dataset_with_cost("hot")
        _, warm_cost = oil_catalog.read_dataset_with_cost("hot")
        assert cold_cost > 0
        assert warm_cost == 0.0


class TestCleaningOverStoredData:
    def test_clean_stored_dataset(self, oil_catalog):
        rows = generate_tax_records(150, seed=21, fd_error_rate=0.05)
        oil_catalog.write_dataset(
            "tax", rows, "localfs", schema=rows[0].schema
        )
        loaded = oil_catalog.read_dataset("tax")
        bd = BigDansing()
        rule = FDRule("fd", ["zipcode"], ["city"])
        cleaned, report = bd.clean(loaded, [rule], platform="java")
        assert report["passes"][0] > 0
        remaining, _ = bd.detect(cleaned, rule, platform="java")
        assert remaining == []


class TestFailureRecovery:
    def test_executor_retries_through_whole_pipeline(self):
        ctx = RheemContext(
            failure_injector=FailureInjector({0: 1, 1: 1}), max_retries=2
        )
        out, metrics = (
            ctx.collection(range(30))
            .map(lambda x: x + 1)
            .collect_with_metrics(platform="java")
        )
        assert out == list(range(1, 31))
        assert metrics.retries >= 1

    def test_hdfs_replica_fallback_feeds_processing(self, oil_catalog):
        schema, rows = sensor_readings(100)
        catalog = Catalog()  # no buffer: force a real store read
        hdfs = HdfsStore(replication=3, datanodes=4)
        catalog.register_store(hdfs)
        catalog.write_dataset("sensors", rows, "hdfs", schema=schema)
        hdfs.fail_datanode(0)
        hdfs.fail_datanode(1)
        ctx = RheemContext(catalog=catalog)
        count = ctx.table("sensors").count().collect()
        assert count == [100]
