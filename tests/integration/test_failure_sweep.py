"""Failure-injection sweep: a transient failure at *every* atom position
must be absorbed by retries without changing results — the paper's
"coping with failures" requirement tested exhaustively for a
representative multi-atom, multi-platform, loop-bearing plan."""

import pytest

from repro import FailureInjector, RheemContext, RuntimeContext
from repro.core.listeners import ATOM_RETRIED, RecordingListener
from repro.core.logical.operators import CollectSink
from repro.core.optimizer.cost import MovementCostModel
from repro.errors import ExecutionError
from repro.platforms import JavaPlatform, PostgresPlatform
from repro.platforms.java.platform import JavaCostModel
from repro.platforms.postgres.platform import PostgresCostModel


def build_plan(ctx):
    """A plan with several atoms: a loop plus pre/post stages."""
    dq = (
        ctx.collection(range(200))
        .map(lambda x: x + 1)
        .repeat(3, lambda s: s.map(lambda x: x * 2))
        .filter(lambda x: x % 3 != 0)
        .sort(lambda x: x)
    )
    dq.plan.add(CollectSink(), [dq.operator])
    return ctx.app_optimizer.optimize(dq.plan)


def count_atom_executions(ctx, execution):
    """How many atom executions one clean run performs (loop bodies
    execute once per iteration)."""
    runtime = RuntimeContext(failure_injector=FailureInjector({}))
    result = ctx.executor.execute(execution, runtime)
    return result.metrics.atoms_executed, result.single


def test_single_transient_failure_at_every_position():
    ctx = RheemContext()
    execution = ctx.task_optimizer.optimize(build_plan(ctx))
    total, reference = count_atom_executions(ctx, execution)
    assert total >= 3

    for position in range(total):
        runtime = RuntimeContext(
            failure_injector=FailureInjector({position: 1})
        )
        result = ctx.executor.execute(execution, runtime)
        assert result.single == reference, f"results diverged at {position}"
        assert result.metrics.retries == 1


def test_double_failures_still_recover():
    ctx = RheemContext()
    execution = ctx.task_optimizer.optimize(build_plan(ctx))
    total, reference = count_atom_executions(ctx, execution)
    runtime = RuntimeContext(
        failure_injector=FailureInjector({0: 2, total - 1: 2})
    )
    result = ctx.executor.execute(execution, runtime)
    assert result.single == reference
    assert result.metrics.retries == 4


def test_permanent_failure_surfaces_with_context():
    ctx = RheemContext(max_retries=1)
    execution = ctx.task_optimizer.optimize(build_plan(ctx))
    runtime = RuntimeContext(failure_injector=FailureInjector({0: 99}))
    with pytest.raises(ExecutionError, match="failed after 2 attempts"):
        ctx.executor.execute(execution, runtime)


def test_sweep_reaches_loop_body_atoms():
    """The sweep really exercises loop-body positions: the plan performs
    more atom executions than it has top-level atoms, and a failure in a
    late (loop-iteration) position is still absorbed."""
    ctx = RheemContext()
    execution = ctx.task_optimizer.optimize(build_plan(ctx))
    total, reference = count_atom_executions(ctx, execution)
    assert total > len(execution.atoms)  # loop bodies re-execute

    body_position = len(execution.atoms)  # first position past top level
    runtime = RuntimeContext(
        failure_injector=FailureInjector({body_position: 1})
    )
    result = ctx.executor.execute(execution, runtime)
    assert result.single == reference
    assert result.metrics.retries == 1


def test_retry_event_payload_during_sweep():
    """Every retry emits an ATOM_RETRIED event whose payload names the
    platform, attempt number, backoff charge and transience."""
    ctx = RheemContext()
    recorder = RecordingListener()
    ctx.executor.add_listener(recorder)
    execution = ctx.task_optimizer.optimize(build_plan(ctx))
    runtime = RuntimeContext(failure_injector=FailureInjector({1: 1}))
    result = ctx.executor.execute(execution, runtime)
    assert result.metrics.retries == 1
    (event,) = [e for e in recorder.events if e.kind == ATOM_RETRIED]
    details = event.details
    assert details["platform"] in {p.name for p in execution.platforms}
    assert details["attempt"] == 1
    assert details["transient"] is True
    assert details["backoff_ms"] > 0
    assert result.metrics.backoff_ms == pytest.approx(details["backoff_ms"])


def build_split_context_and_plan():
    """A plan the optimizer genuinely splits: a cheap relational prefix
    (postgres) feeding an iterative loop (java — postgres is not
    iterative)."""
    from repro import CostHints
    from repro.core.types import Schema

    postgres = PostgresPlatform(
        cost_model=PostgresCostModel(startup=0.0, relational_unit_ms=1e-6)
    )
    java = JavaPlatform(cost_model=JavaCostModel(startup=0.0, per_unit_ms=0.01))
    ctx = RheemContext(
        platforms=[java, postgres],
        movement=MovementCostModel(per_transfer_ms=0.001, per_quantum_ms=0.0),
    )
    schema = Schema(["well", "hour", "pressure"])
    rows = [
        schema.record(i % 20, i % 24, float((i * 37) % 500))
        for i in range(500)
    ]
    dq = (
        ctx.collection(rows)
        .filter(lambda r: r["pressure"] > 50.0)
        .group_by(lambda r: r["well"])
        .map(lambda kv: (kv[0], float(len(kv[1]))), hints=CostHints())
        .repeat(3, lambda s: s.map(lambda kv: (kv[0], kv[1] * 2.0)))
        .sort(lambda kv: kv[0])
    )
    dq.plan.add(CollectSink(), [dq.operator])
    physical = ctx.app_optimizer.optimize(dq.plan)
    return ctx, ctx.task_optimizer.optimize(physical)


def test_sweep_over_multi_platform_plan():
    """Transient failures at every position of a genuinely split plan
    (postgres + java atoms) are absorbed without changing results."""
    ctx, execution = build_split_context_and_plan()
    assert len({atom.platform.name for atom in execution.atoms}) > 1

    total, reference = count_atom_executions(ctx, execution)
    for position in range(total):
        runtime = RuntimeContext(
            failure_injector=FailureInjector({position: 1})
        )
        result = ctx.executor.execute(execution, runtime)
        assert result.single == reference, f"results diverged at {position}"
        assert result.metrics.retries == 1
