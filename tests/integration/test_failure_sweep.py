"""Failure-injection sweep: a transient failure at *every* atom position
must be absorbed by retries without changing results — the paper's
"coping with failures" requirement tested exhaustively for a
representative multi-atom, multi-platform, loop-bearing plan."""

import pytest

from repro import FailureInjector, RheemContext, RuntimeContext
from repro.core.logical.operators import CollectSink
from repro.errors import ExecutionError


def build_plan(ctx):
    """A plan with several atoms: a loop plus pre/post stages."""
    dq = (
        ctx.collection(range(200))
        .map(lambda x: x + 1)
        .repeat(3, lambda s: s.map(lambda x: x * 2))
        .filter(lambda x: x % 3 != 0)
        .sort(lambda x: x)
    )
    dq.plan.add(CollectSink(), [dq.operator])
    return ctx.app_optimizer.optimize(dq.plan)


def count_atom_executions(ctx, execution):
    """How many atom executions one clean run performs (loop bodies
    execute once per iteration)."""
    runtime = RuntimeContext(failure_injector=FailureInjector({}))
    result = ctx.executor.execute(execution, runtime)
    return result.metrics.atoms_executed, result.single


def test_single_transient_failure_at_every_position():
    ctx = RheemContext()
    execution = ctx.task_optimizer.optimize(build_plan(ctx))
    total, reference = count_atom_executions(ctx, execution)
    assert total >= 3

    for position in range(total):
        runtime = RuntimeContext(
            failure_injector=FailureInjector({position: 1})
        )
        result = ctx.executor.execute(execution, runtime)
        assert result.single == reference, f"results diverged at {position}"
        assert result.metrics.retries == 1


def test_double_failures_still_recover():
    ctx = RheemContext()
    execution = ctx.task_optimizer.optimize(build_plan(ctx))
    total, reference = count_atom_executions(ctx, execution)
    runtime = RuntimeContext(
        failure_injector=FailureInjector({0: 2, total - 1: 2})
    )
    result = ctx.executor.execute(execution, runtime)
    assert result.single == reference
    assert result.metrics.retries == 4


def test_permanent_failure_surfaces_with_context():
    ctx = RheemContext(max_retries=1)
    execution = ctx.task_optimizer.optimize(build_plan(ctx))
    runtime = RuntimeContext(failure_injector=FailureInjector({0: 99}))
    with pytest.raises(ExecutionError, match="failed after 2 attempts"):
        ctx.executor.execute(execution, runtime)
