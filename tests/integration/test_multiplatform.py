"""Multi-platform execution and movement-aware optimization (ABL2/ABL3).

The paper's §1 pipeline: aggregate with a relational engine, train ML on
a parallel engine — a single RHEEM plan whose atoms land on different
platforms, with the data hops priced by the movement model.
"""

from repro import RheemContext
from repro.core.optimizer.cost import FreeMovementCostModel, MovementCostModel
from repro.core.types import Schema
from repro.platforms import JavaPlatform, PostgresPlatform
from repro.platforms.postgres.platform import PostgresCostModel
from repro.platforms.java.platform import JavaCostModel


def sensor_rows(n=2000):
    schema = Schema(["well", "hour", "pressure"])
    return [
        schema.record(i % 20, i % 24, float((i * 37) % 500)) for i in range(n)
    ]


def aggregation_then_udf(ctx, rows):
    """Relational aggregation followed by a UDF-heavy step."""
    from repro import CostHints

    return (
        ctx.collection(rows)
        .filter(lambda r: r["pressure"] > 50.0)
        .group_by(lambda r: r["well"])
        .map(
            lambda kv: (kv[0], sum(r["pressure"] for r in kv[1]) / len(kv[1])),
            name="heavy-featurize",
            hints=CostHints(udf_load=500.0),
        )
        .sort(lambda kv: kv[0])
    )


class TestMultiPlatformExecution:
    def test_mixed_assignment_runs_correctly(self):
        """Whatever split the optimizer picks, results match forced-java."""
        ctx = RheemContext()
        rows = sensor_rows()
        auto = aggregation_then_udf(ctx, rows).collect()
        forced = aggregation_then_udf(ctx, rows).collect(platform="java")
        assert auto == forced

    def test_movement_charged_on_cross_platform_plans(self):
        """Make postgres irresistible for the relational stage and java for
        the UDF stage, then check a movement charge appears."""
        postgres = PostgresPlatform(
            cost_model=PostgresCostModel(startup=0.0, relational_unit_ms=0.000001)
        )
        java = JavaPlatform(
            cost_model=JavaCostModel(startup=0.0, per_unit_ms=0.01)
        )
        ctx = RheemContext(
            platforms=[java, postgres],
            movement=MovementCostModel(per_transfer_ms=0.001, per_quantum_ms=0.0),
        )
        rows = sensor_rows(500)
        out, metrics = aggregation_then_udf(ctx, rows).collect_with_metrics()
        platforms_used = set(metrics.by_platform())
        if len(platforms_used) > 1:
            assert metrics.movement_ms > 0

    def test_estimated_mixed_cost_never_worse_than_best_single(self):
        ctx = RheemContext()
        rows = sensor_rows(1000)
        handle = aggregation_then_udf(ctx, rows)
        physical = ctx.app_optimizer.optimize(handle.plan)
        best_auto = ctx.task_optimizer.estimated_plan_cost(physical)
        singles = []
        for name in ("java", "spark", "postgres"):
            try:
                singles.append(ctx.task_optimizer.estimated_plan_cost(physical, name))
            except Exception:
                continue
        assert best_auto <= min(singles) + 1e-6


class TestMovementAblation:
    """ABL3: ignoring movement costs (Musketeer-style) degrades plans."""

    def test_free_movement_splits_more(self):
        rows = sensor_rows(300)

        def build(ctx):
            return aggregation_then_udf(ctx, rows)

        aware = RheemContext(movement=MovementCostModel(per_transfer_ms=500.0,
                                                        per_quantum_ms=0.5))
        naive = RheemContext(movement=FreeMovementCostModel())

        _, aware_metrics = build(aware).collect_with_metrics()
        _, naive_metrics = build(naive).collect_with_metrics()
        aware_platforms = set(aware_metrics.by_platform())
        naive_platforms = set(naive_metrics.by_platform())
        # The movement-aware optimizer uses at most as many platforms.
        assert len(aware_platforms) <= len(naive_platforms)

    def test_true_cost_of_naive_plan_not_lower(self):
        """Re-pricing both executions with the *real* movement model, the
        movement-aware plan is never more expensive."""
        rows = sensor_rows(300)
        real_movement = MovementCostModel(per_transfer_ms=500.0, per_quantum_ms=0.5)

        aware_ctx = RheemContext(movement=real_movement)
        _, aware_metrics = aggregation_then_udf(aware_ctx, rows).collect_with_metrics()

        # Optimize ignoring movement, but execute with the real model.
        naive_ctx = RheemContext(movement=FreeMovementCostModel())
        naive_ctx.executor.movement = real_movement
        _, naive_metrics = aggregation_then_udf(naive_ctx, rows).collect_with_metrics()

        assert aware_metrics.virtual_ms <= naive_metrics.virtual_ms + 1e-6


class TestProfilesRouting:
    def test_iterative_stage_never_on_postgres(self):
        ctx = RheemContext()
        _, metrics = (
            ctx.collection([1.0])
            .repeat(5, lambda dq: dq.map(lambda x: x + 1))
            .collect_with_metrics()
        )
        assert "postgres" not in metrics.by_platform()
