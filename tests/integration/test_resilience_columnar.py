"""Resilience x columnar: seeded fault and failover sweeps with columnar
channel hand-offs (``columnar=True`` / ``REPRO_COLUMNAR=1``) and the
concurrent scheduler (``parallelism=4``).

The columnar data path packs numeric hand-offs into
:class:`~repro.core.channels.ColumnarChannel` buffers; these tests pin
that the packed payloads survive retries, failover suffix re-planning
and the scheduler's refcount release without changing a single result
quantum."""

import pytest

from repro import FailureInjector, RheemContext, RuntimeContext
from repro.core.channels import ColumnarChannel
from repro.core.logical.operators import CollectSink
from repro.errors import ExecutionError


def build_execution(ctx, forced_platform=None):
    """Multi-atom numeric plan: loop plus pre/post stages, columnar
    eligible end to end."""
    dq = (
        ctx.collection(range(200))
        .map(lambda x: x + 1)
        .repeat(3, lambda s: s.map(lambda x: x * 2))
        .filter(lambda x: x % 3 != 0)
        .sort(lambda x: x)
    )
    dq.plan.add(CollectSink(), [dq.operator])
    physical = ctx.app_optimizer.optimize(dq.plan)
    return ctx.task_optimizer.optimize(
        physical, forced_platform=forced_platform
    )


def reference_run(forced_platform=None, **ctx_kwargs):
    ctx = RheemContext(**ctx_kwargs)
    execution = build_execution(ctx, forced_platform=forced_platform)
    return ctx.executor.execute(execution, RuntimeContext())


class TestColumnarFaultSweep:
    @pytest.mark.parametrize("parallelism", [1, 4])
    def test_transient_failure_at_every_position(self, parallelism):
        ctx = RheemContext(columnar=True, parallelism=parallelism)
        execution = build_execution(ctx)
        clean = ctx.executor.execute(
            execution, RuntimeContext(failure_injector=FailureInjector({}))
        )
        reference = clean.single
        total = clean.metrics.atoms_executed
        assert total >= 3
        # the plan really went columnar
        assert clean.metrics.by_label_prefix("columnar.ingest") > 0

        for position in range(total):
            runtime = RuntimeContext(
                failure_injector=FailureInjector({position: 1})
            )
            result = ctx.executor.execute(execution, runtime)
            assert result.single == reference, (
                f"results diverged at {position} (parallelism={parallelism})"
            )
            assert result.metrics.retries == 1

    def test_columnar_matches_row_mode_results(self):
        row = RheemContext(columnar=False)
        columnar = RheemContext(columnar=True, parallelism=4)
        assert (
            columnar.executor.execute(
                build_execution(columnar), RuntimeContext()
            ).single
            == row.executor.execute(
                build_execution(row), RuntimeContext()
            ).single
        )


class TestColumnarFailover:
    def _run_with_dead_java(self, parallelism=1):
        ctx = RheemContext(
            columnar=True, parallelism=parallelism,
            failover=True, max_retries=1,
        )
        execution = build_execution(ctx, forced_platform="java")
        runtime = RuntimeContext(
            failure_injector=FailureInjector(down_platforms={"java": 1})
        )
        return ctx.executor.execute(execution, runtime)

    @pytest.mark.parametrize("parallelism", [1, 4])
    def test_columnar_channels_survive_replanning(self, parallelism):
        reference = reference_run(forced_platform="java").single
        result = self._run_with_dead_java(parallelism=parallelism)
        assert result.metrics.failovers >= 1
        assert result.metrics.quarantines >= 1
        assert result.single == reference
        # pre-failover columnar conversions happened and were kept
        assert result.metrics.by_label_prefix("columnar") > 0

    def test_failover_disabled_still_surfaces_error(self):
        ctx = RheemContext(columnar=True, parallelism=4, max_retries=1)
        execution = build_execution(ctx, forced_platform="java")
        runtime = RuntimeContext(
            failure_injector=FailureInjector(down_platforms={"java": 1})
        )
        with pytest.raises(ExecutionError):
            ctx.executor.execute(execution, runtime)


class TestColumnarRefcountRelease:
    def test_consumed_channels_released_under_concurrency(self):
        """With failover off and no checkpoint, the scheduler refcounts
        hand-offs: consumed columnar channels are released (payload
        dropped) while collect-sink outputs survive untouched."""
        ctx = RheemContext(columnar=True, parallelism=4)
        execution = build_execution(ctx)
        released: list[int] = []
        original = ColumnarChannel.release

        def tracking_release(self):
            released.append(len(self))
            return original(self)

        ColumnarChannel.release = tracking_release
        try:
            result = ctx.executor.execute(execution, RuntimeContext())
        finally:
            ColumnarChannel.release = original
        assert result.single  # sink payload intact
        assert released, "no columnar channel was ever released"

    def test_refcounting_disabled_under_failover(self):
        """Failover keeps every materialised channel alive (the suffix
        re-plan may need them) — nothing is released mid-run."""
        ctx = RheemContext(columnar=True, parallelism=4, failover=True)
        execution = build_execution(ctx)
        released = []
        original = ColumnarChannel.release

        def tracking_release(self):
            released.append(len(self))
            return original(self)

        ColumnarChannel.release = tracking_release
        try:
            result = ctx.executor.execute(execution, RuntimeContext())
        finally:
            ColumnarChannel.release = original
        assert result.single
        assert not released
