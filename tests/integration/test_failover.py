"""Mid-run failover: a platform that dies permanently after the first
atom is quarantined and the remaining plan suffix re-runs on a healthy
platform — results identical, quarantined platform untouched afterwards.
"""

import pytest

from repro import (
    FailureInjector,
    HealthTracker,
    RheemContext,
    RuntimeContext,
)
from repro.core.listeners import (
    ATOM_FAILED_OVER,
    ATOM_STARTED,
    PLATFORM_QUARANTINED,
    RecordingListener,
)
from repro.core.logical.operators import CollectSink
from repro.core.resilience import BREAKER_OPEN
from repro.errors import ExecutionError


def build_execution(ctx, forced_platform=None):
    """A multi-atom plan (pre-stage, loop, post-stage) so there is a
    meaningful suffix left to re-plan after the first atom."""
    dq = (
        ctx.collection(range(100))
        .map(lambda x: x + 1)
        .repeat(3, lambda s: s.map(lambda x: x * 2))
        .filter(lambda x: x % 3 != 0)
        .sort(lambda x: x)
    )
    dq.plan.add(CollectSink(), [dq.operator])
    physical = ctx.app_optimizer.optimize(dq.plan)
    return ctx.task_optimizer.optimize(
        physical, forced_platform=forced_platform
    )


def reference_result():
    ctx = RheemContext()
    execution = build_execution(ctx, forced_platform="java")
    return ctx.executor.execute(execution, RuntimeContext()).single


class TestMidRunFailover:
    def _run_with_dead_java(self, max_retries=1):
        ctx = RheemContext(failover=True, max_retries=max_retries)
        recorder = RecordingListener()
        ctx.executor.add_listener(recorder)
        execution = build_execution(ctx, forced_platform="java")
        runtime = RuntimeContext(
            failure_injector=FailureInjector(down_platforms={"java": 1})
        )
        result = ctx.executor.execute(execution, runtime)
        return result, recorder, runtime

    def test_results_identical_after_failover(self):
        result, _, _ = self._run_with_dead_java()
        assert result.single == reference_result()

    def test_failover_and_quarantine_counted(self):
        result, _, runtime = self._run_with_dead_java()
        assert result.metrics.failovers >= 1
        assert result.metrics.quarantines >= 1
        assert runtime.health.state("java") == BREAKER_OPEN

    def test_quarantined_platform_receives_no_further_atoms(self):
        _, recorder, _ = self._run_with_dead_java()
        kinds = [e.kind for e in recorder.events]
        cut = kinds.index(PLATFORM_QUARANTINED)
        after = [
            e.details["platform"]
            for e in recorder.events[cut:]
            if e.kind == ATOM_STARTED
        ]
        assert after, "no atoms ran after the quarantine"
        assert "java" not in after

    def test_event_payloads(self):
        _, recorder, _ = self._run_with_dead_java()
        (quarantine,) = [
            e for e in recorder.events if e.kind == PLATFORM_QUARANTINED
        ]
        assert quarantine.details["platform"] == "java"
        assert quarantine.details["cooldown_ms"] > 0
        (failover,) = [
            e for e in recorder.events if e.kind == ATOM_FAILED_OVER
        ]
        assert failover.details["from_platform"] == "java"
        assert failover.details["remaining_atoms"] >= 1
        assert "java" not in failover.details["platforms"]

    def test_permanent_death_skips_pointless_retries(self):
        """PlatformDownError is not retried on the same platform: no
        retries are recorded even with a retry budget available."""
        result, recorder, _ = self._run_with_dead_java(max_retries=2)
        assert result.metrics.retries == 0

    def test_replan_cost_charged(self):
        result, _, _ = self._run_with_dead_java()
        assert result.metrics.by_label_prefix("failover.replan") > 0

    def test_failover_disabled_surfaces_error(self):
        ctx = RheemContext(failover=False, max_retries=1)
        execution = build_execution(ctx, forced_platform="java")
        runtime = RuntimeContext(
            failure_injector=FailureInjector(down_platforms={"java": 1})
        )
        with pytest.raises(ExecutionError):
            ctx.executor.execute(execution, runtime)

    def test_transient_failures_do_not_fail_over(self):
        """A budgeted transient failure is absorbed by retries without
        quarantining anything."""
        ctx = RheemContext(failover=True)
        execution = build_execution(ctx, forced_platform="java")
        runtime = RuntimeContext(
            failure_injector=FailureInjector({1: 1})
        )
        result = ctx.executor.execute(execution, runtime)
        assert result.metrics.failovers == 0
        assert result.metrics.quarantines == 0
        assert result.metrics.retries == 1
        assert result.single == reference_result()

    def test_every_platform_dead_is_fatal(self):
        ctx = RheemContext(failover=True, max_retries=0)
        execution = build_execution(ctx, forced_platform="java")
        runtime = RuntimeContext(
            failure_injector=FailureInjector(
                down_platforms={"java": 1, "spark": 0, "postgres": 0}
            )
        )
        with pytest.raises(ExecutionError):
            ctx.executor.execute(execution, runtime)


class TestHealthCarryOver:
    def test_open_breaker_skips_platform_in_next_run(self):
        """A RuntimeContext that saw java die keeps routing around it in
        later executions until the cool-down expires."""
        ctx = RheemContext(failover=True, max_retries=1)
        recorder = RecordingListener()
        ctx.executor.add_listener(recorder)
        runtime = RuntimeContext(
            failure_injector=FailureInjector(down_platforms={"java": 1}),
            health=HealthTracker(cooldown_ms=1e9),
        )
        execution = build_execution(ctx, forced_platform="java")
        ctx.executor.execute(execution, runtime)
        assert not runtime.health.is_available("java")

        # Second run, same runtime: java is rejected up front and the
        # whole plan fails over before any java atom executes.
        recorder.events.clear()
        second = build_execution(ctx, forced_platform="java")
        runtime.failure_injector = None
        result = ctx.executor.execute(second, runtime)
        assert result.single == reference_result()
        platforms = [
            e.details["platform"]
            for e in recorder.events
            if e.kind == ATOM_STARTED
        ]
        assert platforms and "java" not in platforms
