"""ABL6: the same logical plan runs unchanged — and returns identical
results — on every processing platform.

This is the paper's core promise ("applications to be independent from
the data processing platforms", §1) verified end-to-end, including with
hypothesis-generated random pipelines.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RheemContext
from repro.core.types import Schema

ALL_PLATFORMS = ["java", "spark", "postgres"]
ITERATIVE_PLATFORMS = ["java", "spark"]


@pytest.fixture(scope="module")
def shared_ctx():
    return RheemContext()


def run_everywhere(build, platforms):
    ctx = RheemContext()
    results = {}
    for platform in platforms:
        results[platform] = build(ctx).collect(platform=platform)
    return results


class TestIdenticalResults:
    def test_filter_map_sort(self):
        results = run_everywhere(
            lambda ctx: ctx.collection(range(100))
            .filter(lambda x: x % 3 == 0)
            .map(lambda x: x * x)
            .sort(lambda x: -x),
            ALL_PLATFORMS,
        )
        reference = results["java"]
        assert all(out == reference for out in results.values())

    def test_join_groupby(self):
        orders = [(i, i % 5, 10.0 * i) for i in range(50)]
        customers = [(c, f"c{c}") for c in range(5)]

        def build(ctx):
            return (
                ctx.collection(orders)
                .join(ctx.collection(customers), lambda o: o[1], lambda c: c[0])
                .map(lambda pair: (pair[1][1], pair[0][2]))
                .reduce_by(lambda kv: kv[0], lambda a, b: (a[0], a[1] + b[1]))
                .sort(lambda kv: kv[0])
            )

        results = run_everywhere(build, ALL_PLATFORMS)
        reference = results["java"]
        assert all(out == reference for out in results.values())

    def test_distinct_union_count(self):
        def build(ctx):
            left = ctx.collection([1, 2, 2, 3])
            right = ctx.collection([3, 4, 4])
            return left.union(right).distinct().count()

        results = run_everywhere(build, ALL_PLATFORMS)
        assert all(out == [4] for out in results.values())

    def test_wordcount_on_batch_platforms(self):
        lines = ["a b a", "c b", "a"]

        def build(ctx):
            return (
                ctx.collection(lines)
                .flat_map(str.split)
                .map(lambda w: (w, 1))
                .reduce_by(lambda kv: kv[0], lambda a, b: (a[0], a[1] + b[1]))
                .sort(lambda kv: kv[0])
            )

        results = run_everywhere(build, ITERATIVE_PLATFORMS)
        assert results["java"] == results["spark"] == [("a", 3), ("b", 2), ("c", 1)]

    def test_iterative_plan_on_iterative_platforms(self):
        def build(ctx):
            return ctx.collection([1.0]).repeat(
                10, lambda dq: dq.map(lambda x: x * 1.1)
            )

        results = run_everywhere(build, ITERATIVE_PLATFORMS)
        assert results["java"][0] == pytest.approx(results["spark"][0])

    def test_records_flow_on_all_platforms(self):
        schema = Schema(["id", "grp", "v"])
        rows = [schema.record(i, i % 4, float(i)) for i in range(40)]

        def build(ctx):
            return (
                ctx.collection(rows)
                .filter(lambda r: r["v"] > 5)
                .group_by(lambda r: r["grp"])
                .map(lambda kv: (kv[0], sum(r["v"] for r in kv[1])))
                .sort(lambda kv: kv[0])
            )

        results = run_everywhere(build, ALL_PLATFORMS)
        reference = results["java"]
        assert all(out == reference for out in results.values())


@st.composite
def relational_pipelines(draw):
    steps = draw(
        st.lists(
            st.sampled_from(["filter", "map", "distinct", "sort", "group"]),
            max_size=3,
        )
    )
    data = draw(st.lists(st.integers(-10, 10), max_size=25))
    return steps, data


@settings(max_examples=25, deadline=None)
@given(relational_pipelines())
def test_random_relational_pipelines_agree(spec):
    steps, data = spec

    def build(ctx):
        dq = ctx.collection(data)
        for step in steps:
            if step == "filter":
                dq = dq.filter(lambda x: _to_int(x) % 2 == 0)
            elif step == "map":
                dq = dq.map(lambda x: x)
            elif step == "distinct":
                dq = dq.distinct()
            elif step == "sort":
                dq = dq.sort(repr)
            elif step == "group":
                dq = dq.group_by(_to_int).map(
                    lambda kv: (kv[0], tuple(sorted(map(repr, kv[1]))))
                )
        return dq

    results = {
        platform: build(RheemContext()).collect(platform=platform)
        for platform in ALL_PLATFORMS
    }
    reference = sorted(map(repr, results["java"]))
    for platform in ALL_PLATFORMS:
        assert sorted(map(repr, results[platform])) == reference


def _to_int(x):
    return x[0] if isinstance(x, tuple) else int(x) % 4
