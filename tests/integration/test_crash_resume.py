"""Crash → resume → byte-identical: the recovery invariant, end to end.

Every test follows the chaos recipe the journal exists for: run a plan
uninterrupted as the reference, re-run it with a seeded
:class:`CrashInjector` hard-aborting the process at a journal commit,
then resume from the surviving journal + checkpoints and require the
final outputs, ``virtual_ms``, the full ledger entry sequence and the
span shape to be byte-identical to the reference — at parallelism 1 and
4, for every crash point and durability mode (before / after / torn).
"""

import os

import pytest

from repro import (
    CheckpointManager,
    CrashInjector,
    RheemContext,
    RunJournal,
    RuntimeContext,
    SimulatedCrash,
)
from repro.core.listeners import ATOM_TIMED_OUT, RUN_RESUMED, RecordingListener
from repro.core.logical.operators import CollectSink
from repro.core.observability.spans import Tracer
from repro.core.resilience import FailureInjector
from repro.errors import AtomExhaustedError
from repro.storage import LocalFsStore
from repro.storage.catalog import Catalog

WORDS = (
    "the road to freedom in big data analytics "
    "the freedom to choose a platform the road goes on"
).split()


# ----------------------------------------------------------------------
# plan zoo
# ----------------------------------------------------------------------
def build_wordcount(ctx):
    lines = [" ".join(WORDS[i : i + 4]) for i in range(0, len(WORDS), 2)]
    return (
        ctx.collection(lines)
        .flat_map(str.split)
        .map(lambda word: (word, 1))
        .reduce_by(
            key=lambda pair: pair[0],
            reducer=lambda a, b: (a[0], a[1] + b[1]),
        )
        .sort(key=lambda pair: (-pair[1], pair[0]))
    )


def build_join(ctx):
    left = ctx.collection(range(40)).map(lambda x: (x % 7, x))
    right = ctx.collection(range(25)).map(lambda x: (x % 7, x * x))
    return (
        left.join(right, lambda p: p[0], lambda p: p[0])
        .map(lambda pair: (pair[0][1], pair[1][1]))
        .sort(key=lambda p: (p[0], p[1]))
    )


def build_kmeans(ctx):
    # 1-d k-means flavoured loop: assign points to the nearest of two
    # evolving centroids, recompute them, three rounds.
    points = [float(x) for x in range(0, 30, 3)]

    def iteration(state):
        side = state.source(points, name="points")
        return (
            state.cross(side)
            .map(lambda pair: (pair[1], pair[0], abs(pair[0] - pair[1])))
            .reduce_by(
                key=lambda t: t[0],
                reducer=lambda a, b: a if a[2] <= b[2] else b,
            )
            .group_by(lambda t: t[1])
            .map(lambda g: sum(point for point, _, _ in g[1]) / len(g[1]))
            .sort(key=lambda c: c)
        )

    return (
        ctx.collection([1.0, 25.0])
        .repeat(3, iteration)
        .sort(key=lambda c: c)
    )


def build_pagerank(ctx):
    edges = [(i, (i * 3 + 1) % 8) for i in range(8)] + [(0, 4), (5, 2)]

    def iteration(state):
        side = state.source(edges, name="edges")
        return (
            state.join(side, lambda r: r[0], lambda e: e[0])
            .map(lambda pair: (pair[1][1], pair[0][1] * 0.85))
            .reduce_by(
                key=lambda r: r[0],
                reducer=lambda a, b: (a[0], a[1] + b[1]),
            )
            .map(lambda r: (r[0], round(r[1] + 0.15, 9)))
            .sort(key=lambda r: r[0])
        )

    ranks = [(node, 1.0) for node in range(8)]
    return ctx.collection(ranks).repeat(2, iteration).sort(key=lambda r: r[0])


PLANS = {
    "wordcount": build_wordcount,
    "join": build_join,
    "kmeans": build_kmeans,
    "pagerank": build_pagerank,
}


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------
def build_execution(ctx, build):
    handle = build(ctx)
    sink = CollectSink()
    handle.plan.add(sink, [handle.operator])
    physical = ctx.app_optimizer.optimize(handle.plan)
    return ctx.task_optimizer.optimize(physical)


def normalized_spans(tracer):
    """Span tree shape + virtual values, excluding wall clocks and the
    scheduler's nondeterministic worker/slot stamps."""
    index = {span.span_id: i for i, span in enumerate(tracer.spans)}
    out = []
    for span in tracer.spans:
        attrs = {
            k: v
            for k, v in span.attributes.items()
            if k not in ("worker", "slot", "wall_ms")
        }
        events = [
            (
                e.name,
                repr(e.virtual_ms),
                sorted(
                    (k, v) for k, v in e.attributes.items() if k != "wall_ms"
                ),
            )
            for e in span.events
        ]
        out.append(
            (
                span.name,
                span.kind,
                index.get(span.parent_id, -1),
                repr(span.v_start),
                repr(span.v_end),
                repr(span.v_self),
                sorted(attrs.items(), key=repr),
                events,
            )
        )
    return out


def ledger_sequence(metrics):
    return [
        (e.label, repr(e.ms), e.platform, e.atom_id)
        for e in metrics.ledger.entries
    ]


class Harness:
    """One plan, one directory layout, many crash/resume runs."""

    def __init__(self, tmp_path, build, parallelism=1, faults=None):
        self.tmp_path = tmp_path
        self.faults = faults
        self.ctx = RheemContext(resume=True, parallelism=parallelism)
        self.execution = build_execution(self.ctx, build)
        self.runs = 0

    def run(self, rundir, crash_at=None, mode="after", listener=None):
        rundir = os.fspath(rundir)
        os.makedirs(rundir, exist_ok=True)
        catalog = Catalog()
        catalog.register_store(
            LocalFsStore(root=os.path.join(rundir, "ckpt"))
        )
        checkpoint = CheckpointManager(catalog, "localfs", plan_key="chaos")
        journal = RunJournal(
            os.path.join(rundir, "run.journal"), run_id="chaos"
        )
        tracer = Tracer()
        runtime = RuntimeContext(
            checkpoint=checkpoint,
            tracer=tracer,
            journal=journal,
            crash_injector=(
                CrashInjector(crash_at, mode=mode)
                if crash_at is not None
                else None
            ),
            failure_injector=(
                FailureInjector(dict(self.faults)) if self.faults else None
            ),
        )
        if listener is not None:
            self.ctx.executor.listeners.append(listener)
        try:
            result = self.ctx.executor.execute(self.execution, runtime)
            return result, journal, tracer, checkpoint
        finally:
            if listener is not None:
                self.ctx.executor.listeners.remove(listener)
            journal.close()

    def reference(self):
        result, journal, tracer, _ = self.run(self.tmp_path / "reference")
        return {
            "output": result.single,
            "virtual": repr(result.metrics.virtual_ms),
            "ledger": ledger_sequence(result.metrics),
            "spans": normalized_spans(tracer),
            "records": journal.records_written,
            "retries": result.metrics.retries,
        }

    def crash_then_resume(self, crash_at, mode, listener=None):
        self.runs += 1
        rundir = self.tmp_path / f"crash-{self.runs}"
        with pytest.raises(SimulatedCrash):
            self.run(rundir, crash_at=crash_at, mode=mode)
        return self.run(rundir, listener=listener)

    def assert_identical(self, reference, result, tracer):
        assert result.single == reference["output"]
        assert repr(result.metrics.virtual_ms) == reference["virtual"]
        assert ledger_sequence(result.metrics) == reference["ledger"]
        assert normalized_spans(tracer) == reference["spans"]


# ----------------------------------------------------------------------
# the sweep: every plan x every crash point x every mode, p=1 and p=4
# ----------------------------------------------------------------------
@pytest.mark.parametrize("parallelism", [1, 4])
@pytest.mark.parametrize("plan_name", sorted(PLANS))
def test_crash_resume_byte_identical(tmp_path, plan_name, parallelism):
    harness = Harness(tmp_path, PLANS[plan_name], parallelism=parallelism)
    reference = harness.reference()
    assert reference["records"] >= 1

    for crash_at in range(reference["records"]):
        for mode in CrashInjector.MODES:
            result, journal, tracer, _ = harness.crash_then_resume(
                crash_at, mode
            )
            harness.assert_identical(reference, result, tracer)
            if mode != "before":
                # the journaled prefix was actually replayed, not re-run
                assert result.metrics.resumes == 1
                assert result.metrics.atoms_restored == crash_at + 1
            # after the resumed run the journal holds the full history
            assert journal.records_written == reference["records"]


def test_resume_emits_run_resumed_and_counts_torn(tmp_path):
    harness = Harness(tmp_path, build_join)
    reference = harness.reference()
    listener = RecordingListener()
    result, _journal, tracer, _ = harness.crash_then_resume(
        0, "torn", listener=listener
    )
    harness.assert_identical(reference, result, tracer)
    resumed = [e for e in listener.events if e.kind == RUN_RESUMED]
    assert len(resumed) == 1
    assert resumed[0].details["atoms_restored"] == 1
    assert resumed[0].details["torn_records"] == 1
    torn_counter = result.metrics.registry.counter(
        "journal_torn_records", ""
    ).value()
    assert torn_counter == 1


def _crash_then_corrupt(harness, reference, rundir, corruptor):
    with pytest.raises(SimulatedCrash):
        harness.run(rundir, crash_at=reference["records"] - 1, mode="after")
    victim = next(
        path
        for path in sorted((rundir / "ckpt").iterdir())
        if "atom-0000" in path.name
    )
    corruptor(victim)


def test_bitrotted_checkpoint_degrades_to_recompute(tmp_path):
    # Raw bit rot: the blob no longer even unpickles.  The trusted
    # prefix ends there; the run recomputes and stays byte-identical.
    harness = Harness(tmp_path, build_join)
    reference = harness.reference()
    assert reference["records"] >= 2

    rundir = tmp_path / "bitrot"
    _crash_then_corrupt(
        harness,
        reference,
        rundir,
        lambda victim: victim.write_bytes(
            b"\x00rot\x00" + victim.read_bytes()[5:]
        ),
    )
    result, _journal, tracer, _ = harness.run(rundir)
    harness.assert_identical(reference, result, tracer)
    assert result.metrics.resumes == 0


def test_crc_mismatch_checkpoint_warns_and_recomputes(tmp_path):
    # Decodable-but-wrong payload: only the CRC guard can catch this.
    from repro.storage.formats import PickleFormat

    harness = Harness(tmp_path, build_join)
    reference = harness.reference()

    rundir = tmp_path / "crc-mismatch"
    _crash_then_corrupt(
        harness,
        reference,
        rundir,
        lambda victim: victim.write_bytes(
            PickleFormat().encode(None, [("__ckpt_crc__", 1), "bogus"])
        ),
    )
    with pytest.warns(RuntimeWarning, match="failed CRC validation"):
        result, _journal, tracer, checkpoint = harness.run(rundir)
    harness.assert_identical(reference, result, tracer)
    assert result.metrics.resumes == 0
    assert checkpoint.corrupt_detected >= 1


def test_resume_with_mismatched_epoch_starts_fresh(tmp_path, monkeypatch):
    harness = Harness(tmp_path, build_join)
    reference = harness.reference()
    rundir = tmp_path / "epoch-flip"
    with pytest.raises(SimulatedCrash):
        harness.run(rundir, crash_at=0, mode="after")
    # a kernel kill-switch change between crash and resume changes the
    # config epoch: the journal must not be replayed
    monkeypatch.setenv("REPRO_NO_KERNELS", "1")
    result, _journal, _tracer, _ = harness.run(rundir)
    assert result.metrics.resumes == 0
    assert result.single == reference["output"]


def test_resumed_run_injects_remaining_faults(tmp_path):
    # Seeded fault at the *last* atom ordinal; crash before it fires.
    harness = Harness(tmp_path, build_join, faults={1: 1})
    reference = harness.reference()
    assert reference["retries"] >= 1

    result, _journal, tracer, _ = harness.crash_then_resume(0, "after")
    harness.assert_identical(reference, result, tracer)
    assert result.metrics.resumes == 1
    # the fault beyond the crash point fired exactly once on resume,
    # never double-injected: total retries match the reference
    assert result.metrics.retries == reference["retries"]


def test_resume_env_variable(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESUME", "1")
    assert RheemContext().executor.resume is True
    monkeypatch.setenv("REPRO_RESUME", "0")
    assert RheemContext().executor.resume is False


# ----------------------------------------------------------------------
# per-atom deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_overrun_is_charged_counted_and_escalated(self):
        import time

        ctx = RheemContext(deadline_ms=80.0, max_retries=0)
        listener = RecordingListener()
        ctx.executor.listeners.append(listener)
        with pytest.raises(AtomExhaustedError):
            ctx.collection(range(4)).map(
                lambda x: time.sleep(0.4) or x
            ).collect()
        timeouts = [e for e in listener.events if e.kind == ATOM_TIMED_OUT]
        assert timeouts and timeouts[0].details["deadline_ms"] == 80.0

    def test_fast_atoms_unaffected(self):
        ctx = RheemContext(deadline_ms=60_000.0)
        reference = RheemContext()
        data = list(range(30))
        build = lambda c: (  # noqa: E731
            c.collection(data).map(lambda x: x * 2).filter(lambda x: x % 3)
        )
        assert build(ctx).collect() == build(reference).collect()

    def test_deadline_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEADLINE_MS", "1500")
        assert RheemContext().executor.deadline_ms == 1500.0
        monkeypatch.delenv("REPRO_DEADLINE_MS")
        assert RheemContext().executor.deadline_ms is None

    def test_deadline_kill_counted_in_registry(self):
        import time

        tracer = Tracer()
        ctx = RheemContext(deadline_ms=80.0, max_retries=0, tracer=tracer)
        execution = build_execution(
            ctx,
            lambda c: c.collection(range(4)).map(
                lambda x: time.sleep(0.4) or x
            ),
        )
        with pytest.raises(AtomExhaustedError):
            ctx.executor.execute(execution, RuntimeContext(tracer=tracer))
        # metrics share the tracer's registry, so the kill count
        # survives the failed run
        assert tracer.registry.counter("deadline_kills", "").value() >= 1
