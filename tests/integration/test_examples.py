"""Smoke tests: every shipped example runs to completion.

Guards against documentation rot — the examples are the README's claims
in executable form.  Each example prints its own assertions; here we only
require a clean exit and a sane stdout.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "data_cleaning.py",
    "storage_abstraction.py",
    "rdf_configuration.py",
    "sql_analytics.py",
    "graph_analytics.py",
]

SLOW_EXAMPLES = [
    "oil_and_gas_pipeline.py",
    "ml_platform_choice.py",
]


def run_example(name, capsys):
    path = EXAMPLES_DIR / name
    assert path.exists(), f"example missing: {path}"
    saved_argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved_argv
    return capsys.readouterr().out


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_examples_run(name, capsys):
    out = run_example(name, capsys)
    assert len(out.strip()) > 0
    assert "Traceback" not in out


def test_example_inventory_matches_readme():
    listed = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    readme = (EXAMPLES_DIR.parent / "README.md").read_text()
    for name in listed:
        assert name in readme, f"{name} not documented in README"


@pytest.mark.slow
@pytest.mark.parametrize("name", SLOW_EXAMPLES)
def test_slow_examples_run(name, capsys):
    out = run_example(name, capsys)
    assert len(out.strip()) > 0
