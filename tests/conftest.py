"""Shared fixtures for the test suite."""

from __future__ import annotations

import glob
import os

import pytest

from repro import RheemContext
from repro.core.types import Schema
from repro.platforms import JavaPlatform, PostgresPlatform, SparkPlatform

PLATFORM_NAMES = ("java", "spark", "postgres")


@pytest.fixture(autouse=True)
def no_leaked_shm_segments():
    """Every test must end with zero live shared-memory segments.

    Process-mode execution maps columnar channels into
    ``multiprocessing.shared_memory`` segments; the scheduler guarantees
    they are unlinked on every exit path (refcount release, failover
    drain, SimulatedCrash, deadline kill).  This fixture enforces that
    guarantee suite-wide: the in-process registry must be empty, and no
    segment named by this coordinator pid may remain in the kernel
    namespace (``/dev/shm`` on Linux).
    """
    from repro.core.channels import live_segments

    yield
    leaked = live_segments()
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"
    prefix = f"/dev/shm/rpshm{os.getpid():x}g"
    on_disk = glob.glob(prefix + "*")
    assert not on_disk, f"leaked /dev/shm segments: {on_disk}"


@pytest.fixture()
def ctx() -> RheemContext:
    """A context with the three default platforms."""
    return RheemContext()


@pytest.fixture()
def java_platform() -> JavaPlatform:
    return JavaPlatform()


@pytest.fixture()
def spark_platform() -> SparkPlatform:
    return SparkPlatform()


@pytest.fixture()
def postgres_platform() -> PostgresPlatform:
    return PostgresPlatform()


@pytest.fixture()
def people_schema() -> Schema:
    return Schema(["id", "name", "dept", "salary"])


@pytest.fixture()
def people(people_schema):
    rows = [
        (1, "ada", "eng", 120.0),
        (2, "bob", "eng", 95.0),
        (3, "cyn", "ops", 80.0),
        (4, "dan", "ops", 85.0),
        (5, "eve", "sci", 150.0),
    ]
    return [people_schema.record(*row) for row in rows]
