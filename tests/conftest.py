"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import RheemContext
from repro.core.types import Schema
from repro.platforms import JavaPlatform, PostgresPlatform, SparkPlatform

PLATFORM_NAMES = ("java", "spark", "postgres")


@pytest.fixture()
def ctx() -> RheemContext:
    """A context with the three default platforms."""
    return RheemContext()


@pytest.fixture()
def java_platform() -> JavaPlatform:
    return JavaPlatform()


@pytest.fixture()
def spark_platform() -> SparkPlatform:
    return SparkPlatform()


@pytest.fixture()
def postgres_platform() -> PostgresPlatform:
    return PostgresPlatform()


@pytest.fixture()
def people_schema() -> Schema:
    return Schema(["id", "name", "dept", "salary"])


@pytest.fixture()
def people(people_schema):
    rows = [
        (1, "ada", "eng", 120.0),
        (2, "bob", "eng", 95.0),
        (3, "cyn", "ops", 80.0),
        (4, "dan", "ops", 85.0),
        (5, "eve", "sci", 150.0),
    ]
    return [people_schema.record(*row) for row in rows]
