"""Tests for the miniature relational engine and its platform wrapper."""

import pytest

from repro import RheemContext
from repro.core.types import Schema
from repro.errors import OptimizationError, PlatformError, ValidationError
from repro.platforms import PostgresPlatform
from repro.platforms.postgres import Database, HeapTable, SortedIndex


@pytest.fixture()
def schema():
    return Schema(["id", "name", "score"])


@pytest.fixture()
def table(schema):
    table = HeapTable("t", schema)
    for i in range(20):
        table.insert(schema.record(i, f"n{i % 4}", float(i * 10)))
    return table


class TestSortedIndex:
    def test_point_lookup(self):
        index = SortedIndex("f")
        for pos, key in enumerate([5, 3, 8, 3]):
            index.insert(key, pos)
        assert sorted(index.lookup(3)) == [1, 3]
        assert index.lookup(99) == []

    def test_range_inclusive(self):
        index = SortedIndex("f")
        for pos, key in enumerate(range(10)):
            index.insert(key, pos)
        assert sorted(index.range(3, 6)) == [3, 4, 5, 6]

    def test_len(self):
        index = SortedIndex("f")
        index.insert(1, 0)
        assert len(index) == 1


class TestHeapTable:
    def test_insert_and_scan(self, table):
        assert table.row_count == 20
        assert len(list(table.scan())) == 20

    def test_scan_with_predicate_pushdown(self, table):
        rows = list(table.scan(lambda r: r["score"] > 150))
        assert all(r["score"] > 150 for r in rows)
        assert len(rows) == 4

    def test_schema_mismatch_rejected(self, table):
        other = Schema(["x"])
        with pytest.raises(ValidationError, match="does not match"):
            table.insert(other.record(1))

    def test_index_lookup(self, table):
        table.create_index("name")
        rows = table.index_lookup("name", "n1")
        assert len(rows) == 5
        assert all(r["name"] == "n1" for r in rows)

    def test_index_range(self, table):
        table.create_index("score")
        rows = table.index_range("score", 30.0, 60.0)
        assert sorted(r["score"] for r in rows) == [30.0, 40.0, 50.0, 60.0]

    def test_index_maintained_on_insert(self, table, schema):
        table.create_index("name")
        table.insert(schema.record(99, "fresh", 0.0))
        assert len(table.index_lookup("name", "fresh")) == 1

    def test_missing_index_raises(self, table):
        with pytest.raises(PlatformError, match="no index"):
            table.index_lookup("score", 10.0)

    def test_create_index_idempotent(self, table):
        first = table.create_index("name")
        second = table.create_index("name")
        assert first is second

    def test_index_on_unknown_field(self, table):
        with pytest.raises(ValidationError):
            table.create_index("bogus")


class TestDatabase:
    def test_create_and_lookup(self, schema):
        db = Database()
        db.create_table("a", schema)
        assert "a" in db
        assert db.table("a").name == "a"

    def test_duplicate_table_rejected(self, schema):
        db = Database()
        db.create_table("a", schema)
        with pytest.raises(PlatformError, match="already exists"):
            db.create_table("a", schema)

    def test_missing_table(self):
        with pytest.raises(PlatformError, match="no such table"):
            Database().table("ghost")

    def test_drop_idempotent(self, schema):
        db = Database()
        db.create_table("a", schema)
        db.drop_table("a")
        db.drop_table("a")
        assert "a" not in db


class TestPostgresPlatform:
    def test_relational_plan_runs(self, schema):
        ctx = RheemContext(platforms=[PostgresPlatform()])
        rows = [schema.record(i, f"n{i}", float(i)) for i in range(10)]
        out = (
            ctx.collection(rows)
            .filter(lambda r: r["score"] >= 5)
            .sort(lambda r: -r["score"])
            .collect()
        )
        assert [r["id"] for r in out] == [9, 8, 7, 6, 5]

    def test_flatmap_unsupported(self):
        ctx = RheemContext(platforms=[PostgresPlatform()])
        with pytest.raises(OptimizationError):
            ctx.collection([1]).flat_map(lambda x: [x]).collect()

    def test_loops_unsupported(self):
        ctx = RheemContext(platforms=[PostgresPlatform()])
        with pytest.raises(OptimizationError):
            ctx.collection([1]).repeat(2, lambda dq: dq.map(lambda x: x)).collect()

    def test_native_table_source(self, schema):
        platform = PostgresPlatform()
        table = platform.database.create_table("people", schema)
        table.insert_many([schema.record(i, "x", float(i)) for i in range(5)])
        ctx = RheemContext(platforms=[platform])
        out = ctx.table("people").map(lambda r: r["id"]).collect()
        assert sorted(out) == [0, 1, 2, 3, 4]

    def test_aggregation_query(self, schema):
        ctx = RheemContext(platforms=[PostgresPlatform()])
        rows = [schema.record(i, f"g{i % 3}", float(i)) for i in range(30)]
        out = (
            ctx.collection(rows)
            .group_by(lambda r: r["name"])
            .map(lambda kv: (kv[0], sum(r["score"] for r in kv[1])))
            .sort(lambda kv: kv[0])
            .collect()
        )
        assert [k for k, _ in out] == ["g0", "g1", "g2"]

    def test_profiles(self):
        platform = PostgresPlatform()
        assert "relational" in platform.profiles
        assert "iterative" not in platform.profiles
