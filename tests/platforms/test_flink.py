"""Tests for the pipelined ("flink") platform and the plug-in-a-platform
extensibility story."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RheemContext
from repro.platforms import JavaPlatform, default_platforms
from repro.platforms.flink import DataStream, FlinkCostModel, FlinkPlatform


@pytest.fixture()
def fctx():
    return RheemContext(platforms=[FlinkPlatform()])


class TestDataStream:
    def test_from_list_snapshot(self):
        data = [1, 2]
        stream = DataStream.from_list(data)
        data.append(3)
        assert stream.materialize() == [1, 2]

    def test_transform_lazy(self):
        calls = []

        def producer():
            calls.append(1)
            return iter([1, 2, 3])

        stream = DataStream(producer).transform(
            lambda it: (x * 2 for x in it)
        )
        assert calls == []  # nothing pulled yet
        assert stream.materialize() == [2, 4, 6]
        assert calls == [1]

    def test_materialize_memoised(self):
        calls = []

        def producer():
            calls.append(1)
            return iter([1])

        stream = DataStream(producer)
        stream.materialize()
        stream.materialize()
        assert calls == [1]

    def test_restartable_iteration(self):
        stream = DataStream.from_list([1, 2])
        assert list(stream.iterate()) == [1, 2]
        assert list(stream.iterate()) == [1, 2]

    def test_chained_transforms_single_pass(self):
        passes = []

        def producer():
            passes.append("walk")
            return iter(range(100))

        stream = (
            DataStream(producer)
            .transform(lambda it: (x + 1 for x in it))
            .transform(lambda it: (x for x in it if x % 2 == 0))
            .transform(lambda it: (x * 10 for x in it))
        )
        result = stream.materialize()
        assert passes == ["walk"]  # pipelined: exactly one source pass
        assert result[:3] == [20, 40, 60]


class TestOperatorSemantics:
    def test_narrow_chain(self, fctx):
        out = (
            fctx.collection(range(20))
            .map(lambda x: x + 1)
            .filter(lambda x: x % 2 == 0)
            .flat_map(lambda x: [x, x])
            .collect()
        )
        expected = [
            v for x in range(20) if (x + 1) % 2 == 0 for v in ((x + 1), (x + 1))
        ]
        assert sorted(out) == sorted(expected)

    def test_wordcount(self, fctx):
        out = dict(
            fctx.collection(["a b a", "b"])
            .flat_map(str.split)
            .map(lambda w: (w, 1))
            .reduce_by(lambda kv: kv[0], lambda a, b: (a[0], a[1] + b[1]))
            .collect()
        )
        assert out == {"a": 2, "b": 2}

    def test_join_and_sort(self, fctx):
        left = fctx.collection([(1, "x"), (2, "y")])
        right = fctx.collection([(1, 10), (2, 20)])
        out = left.join(right, lambda t: t[0], lambda t: t[0]).sort(
            lambda p: p[0][0]
        ).collect()
        assert out == [((1, "x"), (1, 10)), ((2, "y"), (2, 20))]

    def test_limit_correct(self, fctx):
        out = fctx.collection(range(1000)).map(lambda x: x).limit(5).collect()
        assert out == list(range(5))

    def test_limit_early_out_at_stream_level(self):
        """The FLimit execution operator itself never pulls past n; the
        per-operator cost accounting (which needs real cardinalities)
        is what materialises upstream operators."""
        import itertools

        pulled = []

        def spy():
            for x in range(1000):
                pulled.append(x)
                yield x

        stream = DataStream(spy).transform(lambda it: itertools.islice(it, 5))
        assert stream.materialize() == list(range(5))
        assert len(pulled) == 5

    def test_loop_support(self, fctx):
        out, metrics = (
            fctx.collection([0])
            .repeat(6, lambda dq: dq.map(lambda x: x + 2))
            .collect_with_metrics()
        )
        assert out == [12]
        assert metrics.loop_iterations == 6

    def test_zip_with_id(self, fctx):
        out = fctx.collection("abc").zip_with_id().collect()
        assert sorted(out) == [(0, "a"), (1, "b"), (2, "c")]

    def test_count_distinct_union(self, fctx):
        out = (
            fctx.collection([1, 1, 2])
            .union(fctx.collection([2, 3]))
            .distinct()
            .count()
            .collect()
        )
        assert out == [3]


class TestIntegrationWithRoster:
    def test_equivalence_with_java(self):
        data = [(i % 5, i) for i in range(50)]

        def build(ctx):
            return (
                ctx.collection(data)
                .group_by(lambda t: t[0])
                .map(lambda kv: (kv[0], sum(v for _, v in kv[1])))
                .sort(lambda kv: kv[0])
            )

        java = build(RheemContext(platforms=[JavaPlatform()])).collect()
        flink = build(RheemContext(platforms=[FlinkPlatform()])).collect()
        assert java == flink

    def test_optimizer_picks_flink_for_loop_heavy_plans(self):
        """Cheap native iterations beat Spark's driver loop and Java's
        single thread at moderate scale — the optimizer should notice."""
        ctx = RheemContext(platforms=default_platforms() + [FlinkPlatform()])
        data = list(range(4_000))
        _, metrics = (
            ctx.collection(data)
            .repeat(
                30,
                lambda dq: dq.map(lambda x: x + 1, name="step"),
            )
            .collect_with_metrics()
        )
        # Whatever wins must at least beat the spark bill; typically flink.
        assert "spark" not in metrics.by_platform()

    def test_cheaper_iterations_than_spark(self):
        from repro.platforms import SparkPlatform

        flink = FlinkCostModel()
        spark = SparkPlatform().cost_model
        assert flink.loop_iteration_ms() < spark.loop_iteration_ms()

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(-20, 20), max_size=30))
    def test_random_pipelines_match_java(self, data):
        def build(ctx):
            return (
                ctx.collection(data)
                .map(lambda x: x * 2)
                .filter(lambda x: x >= 0)
                .distinct()
                .sort(lambda x: x)
            )

        java = build(RheemContext(platforms=[JavaPlatform()])).collect()
        flink = build(RheemContext(platforms=[FlinkPlatform()])).collect()
        assert java == flink
