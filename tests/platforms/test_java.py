"""Tests for the in-process ("Java") platform."""

import pytest

from repro import RheemContext
from repro.core.physical.operators import PMap
from repro.core.logical.operators import Map
from repro.errors import UnsupportedOperatorError
from repro.platforms import JavaPlatform


@pytest.fixture()
def jctx():
    return RheemContext(platforms=[JavaPlatform()])


class TestPlatformContract:
    def test_supports_all_generic_kinds(self, java_platform):
        kinds = [
            "source.collection", "map", "flatmap", "filter", "zipwithid",
            "groupby.hash", "groupby.sort", "reduceby.hash", "reduce.global",
            "join.hash", "join.sortmerge", "cross", "union", "sort",
            "distinct.hash", "distinct.sort", "sample", "count", "sink.collect",
        ]
        for kind in kinds:
            assert kind in java_platform._factories, kind

    def test_ingest_egest_roundtrip(self, java_platform):
        native = java_platform.ingest([1, 2, 3])
        assert java_platform.egest(native) == [1, 2, 3]
        assert java_platform.native_card(native) == 3

    def test_ingest_copies(self, java_platform):
        data = [1]
        native = java_platform.ingest(data)
        data.append(2)
        assert java_platform.egest(native) == [1]

    def test_unsupported_kind_raises(self, java_platform):
        op = PMap(Map(lambda x: x))
        op.kind = "imaginary.kind"
        with pytest.raises(UnsupportedOperatorError, match="imaginary"):
            java_platform.create_execution_operator(op)

    def test_profiles(self, java_platform):
        assert "batch" in java_platform.profiles
        assert "iterative" in java_platform.profiles


class TestOperatorSemantics:
    """Every generic operator, end-to-end on the java platform alone."""

    def test_map_order_preserved(self, jctx):
        assert jctx.collection([3, 1, 2]).map(str).collect() == ["3", "1", "2"]

    def test_flatmap_flattens_in_order(self, jctx):
        out = jctx.collection([[1, 2], [], [3]]).flat_map(lambda x: x).collect()
        assert out == [1, 2, 3]

    def test_groupby_sort_variant_forced(self, jctx):
        # run both variants through the enumerator by hint-forcing: simply
        # verify end-to-end grouping result shape.
        groups = dict(jctx.collection("abcabca").group_by(lambda c: c).collect())
        assert groups["a"] == ["a", "a", "a"]

    def test_sortmerge_join_equals_hash_join(self, jctx):
        left = [(k, f"l{k}") for k in range(20)]
        right = [(k % 5, f"r{k}") for k in range(20)]
        l1 = jctx.collection(left)
        r1 = jctx.collection(right)
        out = sorted(l1.join(r1, lambda t: t[0], lambda t: t[0]).collect())
        expected = sorted(
            (l, r) for l in left for r in right if l[0] == r[0]
        )
        assert out == expected

    def test_count_empty(self, jctx):
        assert jctx.collection([]).count().collect() == [0]

    def test_union_preserves_duplicates(self, jctx):
        out = jctx.collection([1, 1]).union(jctx.collection([1])).collect()
        assert out == [1, 1, 1]

    def test_textfile_read(self, jctx, tmp_path):
        path = tmp_path / "f.txt"
        path.write_text("a\nb\n")
        assert jctx.textfile(str(path)).collect() == ["a", "b"]

    def test_virtual_time_scales_with_data(self, jctx):
        _, small = jctx.collection(range(10)).map(lambda x: x).collect_with_metrics()
        _, large = (
            jctx.collection(range(100_000)).map(lambda x: x).collect_with_metrics()
        )
        assert large.virtual_ms > small.virtual_ms
