"""Tests for the simulated Spark platform: SimRDD semantics, shuffles,
stage/overhead accounting, and equivalence with the in-process engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import RheemContext
from repro.platforms import JavaPlatform, SparkPlatform
from repro.platforms.spark import ClusterConfig, SimRDD


@pytest.fixture()
def sctx():
    return RheemContext(platforms=[SparkPlatform()])


class TestSimRDD:
    def test_from_collection_partition_count(self):
        rdd = SimRDD.from_collection(list(range(10)), 4)
        assert rdd.num_partitions == 4
        assert rdd.count() == 10
        assert rdd.collect() == list(range(10))

    def test_from_collection_fewer_items_than_partitions(self):
        rdd = SimRDD.from_collection([1, 2], 8)
        assert rdd.num_partitions == 8
        assert rdd.count() == 2

    def test_map_partitions_independent(self):
        rdd = SimRDD([[1, 2], [3]])
        doubled = rdd.map_partitions(lambda p: [x * 2 for x in p])
        assert doubled.partitions == [[2, 4], [6]]

    def test_shuffle_by_key_groups_keys_together(self):
        rdd = SimRDD.from_collection(list(range(100)), 8)
        shuffled = rdd.shuffle_by_key(lambda x: x % 10, 4)
        for partition in shuffled.partitions:
            keys = {x % 10 for x in partition}
            # every key lives in exactly one partition
            for other in shuffled.partitions:
                if other is not partition:
                    assert keys.isdisjoint({x % 10 for x in other})

    def test_shuffle_preserves_multiset(self):
        data = [1, 2, 2, 3, 3, 3]
        rdd = SimRDD.from_collection(data, 3)
        shuffled = rdd.shuffle_by_key(lambda x: x, 2)
        assert sorted(shuffled.collect()) == sorted(data)

    def test_union_concatenates_partitions(self):
        a = SimRDD([[1], [2]])
        b = SimRDD([[3]])
        assert a.union(b).num_partitions == 3

    def test_repartition_balances(self):
        rdd = SimRDD([[1, 2, 3, 4, 5, 6], [], []])
        balanced = rdd.repartition(3)
        sizes = [len(p) for p in balanced.partitions]
        assert max(sizes) - min(sizes) <= 1

    @given(st.lists(st.integers(), max_size=40), st.integers(1, 8))
    def test_roundtrip_property(self, data, parts):
        rdd = SimRDD.from_collection(data, parts)
        assert rdd.collect() == data
        assert rdd.count() == len(data)


class TestSparkOperators:
    def test_zip_with_id_dense_global_ids(self, sctx):
        out = sctx.collection(list("abcdefghij")).zip_with_id().collect()
        assert sorted(i for i, _ in out) == list(range(10))

    def test_reduce_by_map_side_combine_correct(self, sctx):
        data = [(i % 3, 1) for i in range(99)]
        out = sctx.collection(data).reduce_by(
            lambda kv: kv[0], lambda a, b: (a[0], a[1] + b[1])
        ).collect()
        assert sorted(out) == [(0, 33), (1, 33), (2, 33)]

    def test_global_reduce_across_partitions(self, sctx):
        assert sctx.collection(range(1000)).reduce(lambda a, b: a + b).collect() == [
            499500
        ]

    def test_sort_global_order(self, sctx):
        out = sctx.collection([5, 3, 9, 1]).sort(lambda x: x).collect()
        assert out == [1, 3, 5, 9]

    def test_distinct_across_partitions(self, sctx):
        out = sctx.collection([1] * 50 + [2] * 50).distinct().collect()
        assert sorted(out) == [1, 2]

    def test_join_copartitioned(self, sctx):
        left = [(k, "l") for k in range(30)]
        right = [(k, "r") for k in range(0, 30, 3)]
        out = sctx.collection(left).join(
            sctx.collection(right), lambda t: t[0], lambda t: t[0]
        ).collect()
        assert len(out) == 10


class TestCostAccounting:
    def test_job_startup_charged(self, sctx):
        _, metrics = sctx.collection([1]).collect_with_metrics()
        assert metrics.by_label_prefix("startup") == pytest.approx(3000.0)

    def test_wide_ops_cost_more_than_narrow(self, sctx):
        data = list(range(20000))
        _, narrow = sctx.collection(data).map(lambda x: x).collect_with_metrics()
        _, wide = (
            sctx.collection(data).group_by(lambda x: x % 100).collect_with_metrics()
        )
        assert wide.virtual_ms > narrow.virtual_ms

    def test_custom_cluster_config(self):
        cluster = ClusterConfig(workers=2, default_parallelism=4,
                                job_startup_ms=500.0)
        ctx = RheemContext(platforms=[SparkPlatform(cluster)])
        out, metrics = ctx.collection(range(8)).collect_with_metrics()
        assert out == list(range(8))
        assert metrics.by_label_prefix("startup") == pytest.approx(500.0)


@st.composite
def pipelines(draw):
    """A random pipeline spec applied identically on both platforms."""
    steps = draw(
        st.lists(
            st.sampled_from(
                ["map", "filter", "flatmap", "distinct", "sort", "group", "reduceby"]
            ),
            max_size=4,
        )
    )
    data = draw(st.lists(st.integers(-20, 20), max_size=30))
    return steps, data


def apply_steps(ctx, steps, data):
    dq = ctx.collection(data)
    for step in steps:
        if step == "map":
            dq = dq.map(lambda x: x if isinstance(x, int) else x)
        elif step == "filter":
            dq = dq.filter(lambda x: (hashable_int(x) % 2) == 0)
        elif step == "flatmap":
            dq = dq.flat_map(lambda x: [x, x])
        elif step == "distinct":
            dq = dq.distinct()
        elif step == "sort":
            dq = dq.sort(repr)
        elif step == "group":
            dq = dq.group_by(hashable_int).map(
                lambda kv: (kv[0], tuple(sorted(map(repr, kv[1]))))
            )
        elif step == "reduceby":
            dq = dq.map(lambda x: (hashable_int(x), 1)).reduce_by(
                lambda kv: kv[0], lambda a, b: (a[0], a[1] + b[1])
            )
    return dq.collect()


def hashable_int(x):
    return x[0] if isinstance(x, tuple) else int(x) % 5


@given(pipelines())
def test_spark_equals_java_on_random_pipelines(spec):
    steps, data = spec
    java_ctx = RheemContext(platforms=[JavaPlatform()])
    spark_ctx = RheemContext(platforms=[SparkPlatform()])
    assert sorted(map(repr, apply_steps(java_ctx, steps, data))) == sorted(
        map(repr, apply_steps(spark_ctx, steps, data))
    )
