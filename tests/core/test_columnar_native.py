"""Columnar-native batch kernels: eligibility, elision, fallbacks, costing.

The columnar-native data path hands packed column buffers straight to
eligible batch kernels instead of materialising rows at every consuming
hop.  These tests pin its contract:

* static eligibility introspection (itemgetter projections,
  single-column predicates, columnwise reducers) and the per-hop elide
  gate;
* native kernels are byte-identical to the row path, including the
  mid-chain fallbacks — overflowing sums, bool/ragged projections and
  other layout escapes fall back to rows without wrong answers;
* refcount release of a channel never pulls buffers out from under an
  elided batch still being consumed;
* the resource profiler's ``payload_bytes``/``channel_bytes`` stay
  exact on elided boundaries, at parallelism 1 and 4;
* the kernel-aware cost model is fed by measured rates
  (``profile_datapath``) and predicts per-boundary row-vs-columnar wall
  cost; ``repro explain`` renders the per-boundary decision;
* ledger/epoch plumbing: zero-ms ``columnar.elide`` entries, a
  ``columnar_native`` config-epoch component, and trace-diff alignment
  between native and egest runs of the same plan.
"""

from __future__ import annotations

from operator import itemgetter
from types import SimpleNamespace

import pytest

from repro import RheemContext, Tracer
from repro.core.channels import ColumnarChannel
from repro.core.physical import kernels
from repro.core.physical.columnar import (
    ColumnarBatch,
    ColumnPredicate,
    ColumnwiseReduce,
    analyze_boundaries,
    can_elide,
    consume_decision,
    key_column,
    native_filter,
    native_keys,
    native_map,
    native_reduce_by,
    predicate_spec,
    projection_indices,
)
from repro.core.physical.compiled import KILL_SWITCH
from repro.errors import ExecutionError

ROWS = [(i % 7, float(i % 5) * 0.5, i * 3, i % 11) for i in range(200)]


def make_batch(rows=None):
    channel = ColumnarChannel.from_rows(rows or ROWS, "java")
    assert channel is not None
    return channel.batch()


def run_pipeline(build, **ctx_kwargs):
    """Collect ``build(quanta)`` on java under the given context flags."""
    ctx = RheemContext(**ctx_kwargs)
    return build(ctx).collect(platform="java")


# ----------------------------------------------------------------------
# eligibility introspection
# ----------------------------------------------------------------------
class TestIntrospection:
    def test_itemgetter_projection_indices(self):
        assert projection_indices(itemgetter(2)) == (2,)
        assert projection_indices(itemgetter(3, 1, 0)) == (3, 1, 0)
        assert projection_indices(itemgetter(-1, 0)) == (-1, 0)

    def test_non_projections_are_rejected(self):
        assert projection_indices(lambda t: t[0]) is None
        assert projection_indices(itemgetter("a")) is None
        assert projection_indices(itemgetter(0, "a")) is None

    def test_predicate_spec_variants(self):
        fn = (3).__lt__
        assert predicate_spec(ColumnPredicate(2, fn)) == (2, fn)
        # a bare itemgetter used as predicate means column truthiness
        assert predicate_spec(itemgetter(1)) == (1, None)
        assert predicate_spec(itemgetter(0, 1)) is None
        assert predicate_spec(lambda t: t[0] > 3) is None

    def test_key_column(self):
        assert key_column(itemgetter(0)) == 0
        assert key_column(itemgetter(1, 0)) is None
        assert key_column(lambda t: t[0]) is None

    def test_column_predicate_row_semantics(self):
        predicate = ColumnPredicate(1, (2.0).__gt__)  # 2.0 > value
        assert predicate((9, 1.5)) is True
        assert predicate((9, 3.5)) is False

    def test_columnwise_reduce_row_semantics(self):
        reducer = ColumnwiseReduce(("key", "sum", "min", "max"))
        assert reducer((1, 10, 5, 5), (9, 3, 2, 7)) == (1, 13, 2, 7)

    def test_columnwise_reduce_rejects_unknown_rule(self):
        with pytest.raises(ValueError, match="unknown columnwise combine"):
            ColumnwiseReduce(("key", "mean"))


# ----------------------------------------------------------------------
# the elide gate
# ----------------------------------------------------------------------
class TestElideGate:
    def test_map_projection_elides(self):
        op = SimpleNamespace(kind="map", udf=itemgetter(1, 0))
        assert can_elide(op, 0, width=4, scalar=False)
        assert not can_elide(op, 0, width=4, scalar=True)
        assert not can_elide(op, 0, width=1, scalar=False)  # out of range

    def test_map_lambda_does_not_elide(self):
        op = SimpleNamespace(kind="map", udf=lambda t: t[0])
        assert not can_elide(op, 0, width=4, scalar=False)

    def test_filter_single_column_elides(self):
        op = SimpleNamespace(
            kind="filter", predicate=ColumnPredicate(3, (1).__le__)
        )
        assert can_elide(op, 0, width=4, scalar=False)
        assert not can_elide(op, 0, width=3, scalar=False)  # out of range

    def test_reduceby_key_column_elides(self):
        op = SimpleNamespace(
            kind="reduceby.hash", key=itemgetter(0), reducer=None
        )
        assert can_elide(op, 0, width=4, scalar=False)
        op.key = lambda t: t[0]
        assert not can_elide(op, 0, width=4, scalar=False)

    def test_global_reduce_needs_scalar_layout(self):
        op = SimpleNamespace(kind="reduce.global")
        assert can_elide(op, 0, width=1, scalar=True)
        assert not can_elide(op, 0, width=2, scalar=False)

    def test_join_checks_the_consuming_slot(self):
        op = SimpleNamespace(
            kind="join.hash", left_key=itemgetter(0), right_key=lambda t: t[0]
        )
        assert can_elide(op, 0, width=2, scalar=False)
        assert not can_elide(op, 1, width=2, scalar=False)

    def test_unknown_kind_never_elides(self):
        op = SimpleNamespace(kind="sort")
        assert not can_elide(op, 0, width=4, scalar=False)

    def test_consume_decision_reasons(self):
        ok, why = consume_decision(
            SimpleNamespace(kind="map", udf=itemgetter(0, 1))
        )
        assert ok and "itemgetter projection" in why
        ok, why = consume_decision(
            SimpleNamespace(kind="map", udf=lambda t: t)
        )
        assert not ok and "not an itemgetter" in why
        ok, why = consume_decision(SimpleNamespace(kind="sink.collect"))
        assert not ok and "collect sink" in why


# ----------------------------------------------------------------------
# native kernels == row kernels, both kill-switch modes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("no_kernels", ["0", "1"])
class TestNativeKernels:
    @pytest.fixture(autouse=True)
    def _kill_switch(self, monkeypatch, no_kernels):
        monkeypatch.setenv(KILL_SWITCH, no_kernels)

    def test_native_map_matches_row_projection(self, no_kernels):
        batch = make_batch()
        out = native_map(itemgetter(3, 1), batch)
        assert out is not None
        assert out.rows() == [itemgetter(3, 1)(r) for r in ROWS]

    def test_native_map_single_index_is_scalar(self, no_kernels):
        batch = make_batch()
        out = native_map(itemgetter(2), batch)
        assert out is not None and out.scalar
        assert list(out) == [r[2] for r in ROWS]

    def test_native_map_zero_copy_when_compiled(self, no_kernels):
        batch = make_batch()
        out = native_map(itemgetter(1, 3), batch)
        shares = out.columns[0] is batch.columns[1]
        assert shares == (no_kernels == "0")

    def test_native_map_rejects_non_projection(self, no_kernels):
        assert native_map(lambda t: t[0], make_batch()) is None
        assert native_map(itemgetter(9), make_batch()) is None

    def test_native_filter_matches_row_filter(self, no_kernels):
        batch = make_batch()
        predicate = ColumnPredicate(0, (3).__gt__)  # keep col0 < 3
        out = native_filter(predicate, batch)
        assert out is not None
        assert out.rows() == [r for r in ROWS if predicate(r)]

    def test_native_filter_truthiness_predicate(self, no_kernels):
        batch = make_batch()
        out = native_filter(itemgetter(0), batch)
        assert out is not None
        assert out.rows() == [r for r in ROWS if r[0]]

    def test_native_reduce_by_matches_row_kernel(self, no_kernels):
        key = itemgetter(0)
        reducer = ColumnwiseReduce(("key", "sum", "sum", "min"))
        out = native_reduce_by(make_batch(), key, reducer)
        assert out is not None
        expected = kernels.hash_reduce_by(list(ROWS), key, reducer)
        assert list(out) == list(expected)

    def test_native_reduce_by_requires_declared_reducer(self, no_kernels):
        out = native_reduce_by(
            make_batch(), itemgetter(0), lambda a, b: a
        )
        assert out is None

    def test_native_reduce_by_overflow_falls_back_to_rows(self, no_kernels):
        # int64-packed inputs whose sum escapes int64: the sweep keeps
        # exact Python ints and returns row tuples (a batch could not
        # hold them), never a wrong answer
        big = 2**62
        rows = [(0, big), (0, big), (1, 5)]
        out = native_reduce_by(
            make_batch(rows), itemgetter(0), ColumnwiseReduce(("key", "sum"))
        )
        assert isinstance(out, list)
        assert out == kernels.hash_reduce_by(
            rows, itemgetter(0), ColumnwiseReduce(("key", "sum"))
        )
        assert out[0] == (0, 2 * big)

    def test_native_keys_reads_the_buffer(self, no_kernels):
        batch = make_batch()
        built = native_keys(batch, itemgetter(0))
        assert built is not None
        keys, rows = built
        assert keys is batch.columns[0]
        assert rows == list(ROWS)
        assert native_keys(batch, itemgetter(0, 1)) is None
        assert native_keys(list(ROWS), itemgetter(0)) is None


# ----------------------------------------------------------------------
# mid-chain fallbacks, end to end: never a wrong answer
# ----------------------------------------------------------------------
class TestMidChainFallback:
    def _both_modes(self, build):
        native = run_pipeline(build, columnar=True, columnar_native=True)
        plain = run_pipeline(build, columnar=False)
        assert native == plain
        return native

    def test_bool_projection_mid_chain(self):
        # the lambda yields bool columns — ineligible for packing; the
        # chain must degrade to rows with identical outputs
        def build(ctx):
            return (
                ctx.collection(list(ROWS))
                .map(itemgetter(3, 0))
                .map(lambda t: (t[0] > 5, t[1]))
                .filter(itemgetter(0))
            )

        out = self._both_modes(build)
        assert out and all(type(flag) is bool for flag, _ in out)

    def test_ragged_projection_mid_chain(self):
        # ragged widths cannot pack; fallback keeps exact row shapes
        def build(ctx):
            return (
                ctx.collection(list(ROWS))
                .map(lambda t: t[:1] if t[0] % 2 else t[:3])
                .map(lambda t: (len(t), t[0]))
            )

        self._both_modes(build)

    def test_overflowing_sum_mid_chain(self):
        big = 2**62

        def build(ctx):
            return (
                ctx.collection([(i % 3, big) for i in range(12)])
                .reduce_by(
                    key=itemgetter(0),
                    reducer=ColumnwiseReduce(("key", "sum")),
                )
                .map(itemgetter(1))
            )

        out = self._both_modes(build)
        assert sorted(out) == [4 * big] * 3

    def test_elided_loop_with_ineligible_tail(self):
        # the loop state elides; the tail lambda then needs rows — the
        # batch's sequence protocol serves them transparently
        def build(ctx):
            return (
                ctx.collection(list(ROWS))
                .repeat(
                    2,
                    lambda d: d.filter(ColumnPredicate(0, (6).__gt__)).map(
                        itemgetter(3, 1, 2, 0)
                    ),
                )
                .map(lambda t: (t[0] + t[3], t[1]))
            )

        self._both_modes(build)


# ----------------------------------------------------------------------
# refcounting: releasing a channel must not gut a live batch
# ----------------------------------------------------------------------
class TestElidedBufferRelease:
    def test_batch_survives_channel_release(self):
        channel = ColumnarChannel.from_rows(list(ROWS), "java")
        batch = channel.batch()
        channel.release()
        assert channel.released
        assert channel.payload_bytes() == 0
        assert len(channel) == len(ROWS)  # cardinality is kept
        # the elided view holds its own buffer references
        assert batch.rows() == list(ROWS)

    def test_batch_after_release_is_a_loud_error(self):
        channel = ColumnarChannel.from_rows(list(ROWS), "java")
        channel.release()
        with pytest.raises(ExecutionError, match="released"):
            channel.batch()

    def test_release_is_idempotent_with_live_batch(self):
        channel = ColumnarChannel.from_rows(list(ROWS), "java")
        batch = channel.batch()
        channel.release()
        channel.release()
        assert batch[0] == ROWS[0]

    def test_refcounted_native_run_matches_plain(self):
        # end to end: the executor's channel refcounting releases the
        # loop-state channels while elided batches are in flight
        def build(ctx):
            return ctx.collection(list(ROWS)).repeat(
                3,
                lambda d: d.filter(ColumnPredicate(0, (6).__gt__)).map(
                    itemgetter(3, 1, 2, 0)
                ),
            )

        native = run_pipeline(build, columnar=True, columnar_native=True)
        plain = run_pipeline(build, columnar=False)
        assert native == plain


# ----------------------------------------------------------------------
# ledger: elide entries are explicit, zero-cost, and the only delta
# ----------------------------------------------------------------------
class TestElideLedger:
    @staticmethod
    def _run(columnar_native):
        ctx = RheemContext(columnar=True, columnar_native=columnar_native)
        return (
            ctx.collection(list(ROWS))
            .repeat(
                2,
                lambda d: d.filter(ColumnPredicate(0, (6).__gt__)).map(
                    itemgetter(3, 1, 2, 0)
                ),
            )
            .collect_with_metrics()
        )

    def test_native_ledger_is_egest_plus_zero_ms_elides(self):
        native_out, native_metrics = self._run(True)
        egest_out, egest_metrics = self._run(False)
        assert native_out == egest_out
        assert native_metrics.virtual_ms == egest_metrics.virtual_ms

        def entries(metrics, drop_elide=False):
            return [
                (e.label, e.ms, e.platform)
                for e in metrics.ledger.entries
                if not (drop_elide and e.label == "columnar.elide")
            ]

        elides = [
            e for e in native_metrics.ledger.entries
            if e.label == "columnar.elide"
        ]
        assert elides, "native run recorded no columnar.elide entries"
        assert all(e.ms == 0.0 for e in elides)
        assert entries(native_metrics, drop_elide=True) == entries(
            egest_metrics
        )
        # the virtual egest price is still charged at elided boundaries
        assert len(
            [e for e in native_metrics.ledger.entries
             if e.label == "columnar.egest"]
        ) == len(
            [e for e in egest_metrics.ledger.entries
             if e.label == "columnar.egest"]
        )


# ----------------------------------------------------------------------
# resource profiler: exact bytes on elided boundaries, parallelism 1 & 4
# ----------------------------------------------------------------------
class TestProfiledElision:
    N = 300
    #: every hand-off in the loop pipeline below is width 2, int64 —
    #: the filter keeps all rows, the map is a permutation, so every
    #: columnar channel holds exactly 2 * 8 * N buffer bytes
    EXACT_BYTES = 2 * 8 * N

    def _profiled_run(self, parallelism, columnar_native):
        tracer = Tracer()
        ctx = RheemContext(
            profile=True,
            columnar=True,
            columnar_native=columnar_native,
            parallelism=parallelism,
            tracer=tracer,
        )
        try:
            out, metrics = (
                ctx.collection([(i, i * 3) for i in range(self.N)])
                .repeat(
                    2,
                    lambda d: d.filter(ColumnPredicate(0, (-1).__lt__)).map(
                        itemgetter(1, 0)
                    ),
                )
                .collect_with_metrics()
            )
        finally:
            ctx.executor._profiler.close()
        return tracer, out, metrics

    @pytest.mark.parametrize("parallelism", [1, 4])
    def test_channel_bytes_exact_on_elided_boundaries(
        self, parallelism, monkeypatch
    ):
        from repro.core.executor import Executor
        from repro.core.observability.resources import ResourceProfiler

        made = []
        orig_make = Executor._make_channel

        def spy_make(self, op_id, data, atom, metrics):
            channel = orig_make(self, op_id, data, atom, metrics)
            made.append((type(channel).__name__, channel.payload_bytes()))
            return channel

        recorded = []
        orig_record = ResourceProfiler.record_channel

        def spy_record(self, probe, nbytes, registry, platform):
            recorded.append(nbytes)
            return orig_record(self, probe, nbytes, registry, platform)

        monkeypatch.setattr(Executor, "_make_channel", spy_make)
        monkeypatch.setattr(ResourceProfiler, "record_channel", spy_record)

        tracer, out, metrics = self._profiled_run(parallelism, True)
        assert out == [(i, i * 3) for i in range(self.N)]
        elided = [
            s for s in tracer.spans
            if s.attributes.get("columnar_elided")
        ]
        assert elided, "profiled native run recorded no elisions"

        # every columnar hand-off carries *exact* buffer arithmetic
        # (2 int64 columns of N rows), not a sampled estimate — elided
        # or not, the packed payload is what gets sized
        columnar = [b for kind, b in made if kind == "ColumnarChannel"]
        assert columnar and all(b == self.EXACT_BYTES for b in columnar)

        # the recorded figures are those exact payload_bytes values
        # (the one sampled estimate is the plain collect-sink hand-off)
        assert recorded
        assert recorded.count(self.EXACT_BYTES) >= len(recorded) - 1

        hist = metrics.registry.histogram("channel_bytes")
        total = sum(series.total for series in hist.series.values())
        assert total == sum(recorded)
        atoms = [s for s in tracer.spans if s.name.startswith("atom#")]
        assert total == sum(s.attributes["channel_bytes"] for s in atoms)

    @pytest.mark.parametrize("parallelism", [1, 4])
    def test_elision_does_not_change_recorded_bytes(self, parallelism):
        _, native_out, native_metrics = self._profiled_run(parallelism, True)
        _, egest_out, egest_metrics = self._profiled_run(parallelism, False)
        assert native_out == egest_out

        def totals(metrics):
            hist = metrics.registry.histogram("channel_bytes")
            return (
                sum(series.n for series in hist.series.values()),
                sum(series.total for series in hist.series.values()),
            )

        assert totals(native_metrics) == totals(egest_metrics)


# ----------------------------------------------------------------------
# the kernel-aware cost model
# ----------------------------------------------------------------------
class TestKernelCostModel:
    def _model(self):
        from repro.core.optimizer.cost import KernelCostModel

        return KernelCostModel(
            {
                ("project", "row"): 0.002,
                ("project", "columnar"): 0.0001,
                ("filter", "row"): 0.003,
                ("filter", "columnar"): 0.001,
                ("boundary.unpack", "row"): 0.004,
                ("boundary.pack", "row"): 0.005,
            }
        )

    def test_boundary_prediction_arithmetic(self):
        model = self._model()
        assert model.unpack_ms(1000) == pytest.approx(4.0)
        assert model.pack_ms(1000) == pytest.approx(5.0)
        assert model.boundary_ms(1000, elided=True) == 0.0
        assert model.boundary_ms(1000, elided=False) == pytest.approx(4.0)
        row, columnar = model.predict_boundary("map", 1000)
        assert row == pytest.approx(4.0 + 2.0)
        assert columnar == pytest.approx(0.1)

    def test_fused_and_reduceby_kinds_map_to_stages(self):
        model = self._model()
        assert model.predict_boundary("fused.narrow", 10) is not None
        assert model.predict_boundary("filter", 10) is not None
        # no profiled stage for a collect sink
        assert model.predict_boundary("sink.collect", 10) is None

    def test_unknown_rates_price_as_zero(self):
        model = self._model()
        assert model.rate("reduceby", "row") == 0.0
        assert model.stage_ms("reduceby", 1000, "row") == 0.0

    def test_profile_datapath_feeds_the_model(self):
        from repro.core.optimizer.profiler import CostProfiler

        profile = CostProfiler().profile_datapath(sizes=(500, 2_000))
        for stage in ("project", "filter", "reduceby"):
            assert profile.per_row_ms(stage, "row") > 0.0
            assert profile.per_row_ms(stage, "columnar") > 0.0
        assert profile.per_row_ms("boundary.unpack", "row") > 0.0
        assert profile.per_row_ms("boundary.pack", "row") > 0.0

        model = profile.kernel_model()
        prediction = model.predict_boundary("map", 10_000)
        assert prediction is not None
        row_ms, columnar_ms = prediction
        assert row_ms > 0.0 and columnar_ms >= 0.0
        assert profile.summary()  # renders without error


# ----------------------------------------------------------------------
# boundary analysis + repro explain
# ----------------------------------------------------------------------
def _loop_execution(ctx):
    """The optimized execution of an elide-eligible repeat pipeline."""
    from repro.core.logical.operators import CollectSink

    quanta = ctx.collection(list(ROWS), name="rows").repeat(
        2,
        lambda d: d.filter(ColumnPredicate(0, (6).__gt__)).map(
            itemgetter(3, 1, 2, 0)
        ),
    )
    sink = CollectSink()
    quanta._builder.plan.add(sink, [quanta._op])
    physical = ctx.app_optimizer.optimize(quanta._builder.plan)
    return ctx.task_optimizer.optimize(physical, forced_platform="java")


class TestBoundaryAnalysis:
    def test_loop_state_boundary_is_eligible_with_consumer_kind(self):
        execution = _loop_execution(RheemContext())
        boundaries = execution.columnar_boundaries
        assert boundaries == analyze_boundaries(execution)
        loop_state = [
            b for b in boundaries if b["boundary"] == "loop-state"
        ]
        assert len(loop_state) == 1
        record = loop_state[0]
        assert record["eligible"] is True
        # priced by what actually consumes the state, not the loop input
        assert record["consumer_kind"] in ("filter", "fused.narrow")
        assert record["card"] == float(len(ROWS))

    def test_collect_sink_boundary_is_rejected_with_reason(self):
        execution = _loop_execution(RheemContext())
        sinks = [
            b for b in execution.columnar_boundaries
            if b["consumer_kind"] == "sink.collect"
        ]
        assert sinks and not sinks[0]["eligible"]
        assert "collect sink" in sinks[0]["reason"]


class TestExplainReport:
    def _render(self, **ctx_kwargs):
        from repro.cli import _render_columnar_report

        ctx = RheemContext(**ctx_kwargs)
        execution = _loop_execution(ctx)
        return "\n".join(_render_columnar_report(ctx, execution))

    def test_native_mode_reports_elided_and_prediction(self):
        text = self._render(columnar=True, columnar_native=True)
        assert "columnar data path: native" in text
        assert "packed + elided" in text
        assert "packed + egested (collect sink returns rows" in text
        assert "predicted from profiled kernel rates" in text
        assert "row path" in text and "columnar path" in text
        assert "predicted winner" in text

    def test_egest_mode_reports_would_elide(self):
        text = self._render(columnar=True, columnar_native=False)
        assert "packed, egest-per-consumer" in text
        assert "would elide" in text

    def test_columnar_off_reports_rows(self):
        text = self._render(columnar=False)
        assert "rows (columnar transport off)" in text
        assert "packed + elided" not in text


# ----------------------------------------------------------------------
# config epoch + env flag
# ----------------------------------------------------------------------
class TestNativeConfig:
    def test_config_epoch_gains_native_component(self):
        from repro.core.recovery import config_epoch

        base = config_epoch(columnar=True)
        native = config_epoch(columnar=True, columnar_native=True)
        assert base != native

    def test_native_without_columnar_is_inert(self):
        from repro.core.recovery import config_epoch

        assert config_epoch(columnar=False, columnar_native=True) == (
            config_epoch(columnar=False)
        )

    def test_env_default_is_on_with_columnar(self, monkeypatch):
        monkeypatch.delenv("REPRO_COLUMNAR_NATIVE", raising=False)
        assert RheemContext(columnar=True).executor.columnar_native is True

    @pytest.mark.parametrize("raw", ["0", "false", "no", "off"])
    def test_env_opt_out(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_COLUMNAR_NATIVE", raw)
        assert RheemContext(columnar=True).executor.columnar_native is False

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR_NATIVE", "0")
        ctx = RheemContext(columnar=True, columnar_native=True)
        assert ctx.executor.columnar_native is True


# ----------------------------------------------------------------------
# trace-diff: native and egest traces of one plan must align
# ----------------------------------------------------------------------
class TestTraceDiffAlignment:
    @staticmethod
    def _trace(columnar_native):
        tracer = Tracer()
        ctx = RheemContext(
            columnar=True, columnar_native=columnar_native, tracer=tracer
        )
        out = (
            ctx.collection(list(ROWS))
            .repeat(
                2,
                lambda d: d.filter(ColumnPredicate(0, (6).__gt__)).map(
                    itemgetter(3, 1, 2, 0)
                ),
            )
            .collect(platform="java")
        )
        assert out
        return tracer

    def test_elision_attrs_do_not_break_alignment(self):
        from repro.core.observability import diff_traces
        from repro.core.observability.export import span_records

        native = span_records(self._trace(True))
        egest = span_records(self._trace(False))
        # the native trace genuinely differs (elisions + columnar notes)
        assert any(
            r.get("attributes", {}).get("columnar_elided") for r in native
        )
        diff = diff_traces(egest, native)
        assert diff.only_in_a == []
        assert diff.only_in_b == []
        assert diff.matched
