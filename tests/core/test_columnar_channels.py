"""ColumnarChannel: eligibility, round trips, release, executor wiring.

The struct-of-arrays channel is opt-in and must be a *lossless* detour:
``from_rows`` only accepts data it can round-trip byte-identically, the
executor charges explicit ``columnar.ingest``/``columnar.egest`` ledger
entries for the conversions, and outputs never change.
"""

from __future__ import annotations

import array
from operator import itemgetter

import pytest

from repro import RheemContext
from repro.core.channels import CollectionChannel, ColumnarChannel
from repro.errors import ExecutionError

KEY = itemgetter(0)


# ----------------------------------------------------------------------
# from_rows eligibility
# ----------------------------------------------------------------------
class TestEligibility:
    def test_int_tuples_pack(self):
        rows = [(i, i * i) for i in range(10)]
        channel = ColumnarChannel.from_rows(rows, "java")
        assert channel is not None
        assert channel.width == 2
        assert channel.column(0).typecode == "q"

    def test_float_tuples_pack(self):
        rows = [(0.5 * i, -1.0 * i) for i in range(10)]
        channel = ColumnarChannel.from_rows(rows, "java")
        assert channel is not None
        assert channel.column(1).typecode == "d"

    def test_mixed_column_types_pack_per_column(self):
        rows = [(i, float(i)) for i in range(10)]
        channel = ColumnarChannel.from_rows(rows, "java")
        assert channel is not None
        assert channel.column(0).typecode == "q"
        assert channel.column(1).typecode == "d"

    def test_scalar_ints_pack(self):
        channel = ColumnarChannel.from_rows(list(range(10)), "java")
        assert channel is not None
        assert channel.width == 1

    @pytest.mark.parametrize(
        "rows",
        [
            [],  # empty
            [(1, "a"), (2, "b")],  # non-numeric column
            [(True, 1), (False, 2)],  # bool is not an exact int
            [(1, 2), (3, 4.0)],  # int column contaminated by float
            [(1.0, 2.0), (3, 4.0)],  # float column contaminated by int
            [(1, 2), (3,)],  # ragged widths
            [(1, 2), [3, 4]],  # non-tuple row
            [()],  # zero-width tuples
            [(1 << 70, 2)],  # int64 overflow
            [1 << 70, 2],  # scalar overflow
            ["a", "b"],  # non-numeric scalars
            [1, 2.0],  # mixed scalar types
            [1, True],  # bool scalar contamination
        ],
        ids=[
            "empty",
            "string-column",
            "bools",
            "int-col-float",
            "float-col-int",
            "ragged",
            "non-tuple-row",
            "zero-width",
            "int64-overflow",
            "scalar-overflow",
            "string-scalars",
            "mixed-scalars",
            "bool-scalar",
        ],
    )
    def test_ineligible_returns_none(self, rows):
        assert ColumnarChannel.from_rows(rows, "java") is None


# ----------------------------------------------------------------------
# round trip + channel protocol
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_tuple_rows_round_trip_identically(self):
        rows = [(i, i * 0.25, -i) for i in range(50)]
        channel = ColumnarChannel.from_rows(rows, "spark")
        assert channel.require_data() == rows
        assert list(channel) == rows
        assert len(channel) == 50
        assert channel.cardinality == 50

    def test_scalar_rows_round_trip_identically(self):
        rows = [0.5 * i for i in range(20)]
        channel = ColumnarChannel.from_rows(rows, "java")
        assert channel.require_data() == rows

    def test_row_view_is_cached(self):
        channel = ColumnarChannel.from_rows([(1, 2), (3, 4)], "java")
        assert channel.require_data() is channel.require_data()

    def test_columns_expose_buffers(self):
        channel = ColumnarChannel.from_rows([(1, 2), (3, 4)], "java")
        assert channel.column(0) == array.array("q", [1, 3])
        assert channel.column(1) == array.array("q", [2, 4])

    def test_repr_mentions_layout(self):
        wide = ColumnarChannel.from_rows([(1, 2)], "java")
        scalar = ColumnarChannel.from_rows([1, 2], "java")
        assert "width=2" in repr(wide)
        assert "scalar" in repr(scalar)


# ----------------------------------------------------------------------
# release semantics (scheduler refcounting)
# ----------------------------------------------------------------------
class TestRelease:
    def test_release_drops_columns_keeps_cardinality(self):
        channel = ColumnarChannel.from_rows([(i, i) for i in range(7)], "java")
        channel.release()
        assert channel.released
        assert channel.columns == []
        assert len(channel) == 7
        with pytest.raises(ExecutionError):
            channel.require_data()

    def test_release_is_idempotent(self):
        channel = ColumnarChannel.from_rows([1, 2, 3], "java")
        channel.release()
        channel.release()
        assert len(channel) == 3

    def test_base_class_release_hook_intercepts_columnar(self, monkeypatch):
        """The scheduler spies on ``CollectionChannel.release`` — the
        columnar subclass must flow through the same entry point."""
        released = []
        original = CollectionChannel.release

        def spy(self):
            released.append(type(self).__name__)
            original(self)

        monkeypatch.setattr(CollectionChannel, "release", spy)
        ColumnarChannel.from_rows([1, 2], "java").release()
        assert released == ["ColumnarChannel"]


# ----------------------------------------------------------------------
# executor integration
# ----------------------------------------------------------------------
def _conversion_entries(metrics):
    return [
        entry.label
        for entry in metrics.ledger.entries
        if entry.label.startswith("columnar.")
    ]


def _pipeline(ctx):
    """A looped numeric plan: each iteration hands off through a channel."""
    return (
        ctx.collection([(i % 5, i) for i in range(40)])
        .repeat(3, lambda q: q.map(itemgetter(1, 0)))
        .sort(lambda row: row)
        .collect_with_metrics(platform="java")
    )


class TestExecutorIntegration:
    def test_default_runs_have_no_conversion_entries(self, monkeypatch):
        monkeypatch.delenv("REPRO_COLUMNAR", raising=False)
        _, metrics = _pipeline(RheemContext())
        assert _conversion_entries(metrics) == []

    def test_columnar_runs_charge_ingest_and_egest(self):
        _, metrics = _pipeline(RheemContext(columnar=True))
        entries = _conversion_entries(metrics)
        assert "columnar.ingest" in entries
        assert "columnar.egest" in entries

    def test_columnar_outputs_identical_to_plain(self):
        plain, _ = _pipeline(RheemContext())
        packed, _ = _pipeline(RheemContext(columnar=True))
        assert packed == plain

    def test_env_var_opts_in(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR", "1")
        _, metrics = _pipeline(RheemContext())
        assert "columnar.ingest" in _conversion_entries(metrics)

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR", "1")
        _, metrics = _pipeline(RheemContext(columnar=False))
        assert _conversion_entries(metrics) == []

    def test_ineligible_payloads_fall_back_to_plain(self):
        ctx = RheemContext(columnar=True)
        outputs, metrics = (
            ctx.collection(["alpha beta", "beta gamma"])
            .flat_map(str.split)
            .map(lambda w: (w, 1))
            .reduce_by(KEY, lambda a, b: (a[0], a[1] + b[1]))
            .sort(KEY)
            .collect_with_metrics(platform="java")
        )
        assert outputs == [("alpha", 1), ("beta", 2), ("gamma", 1)]
        assert _conversion_entries(metrics) == []
