"""Tests for the RDF-encoded optimizer configuration (§8 challenge 1)."""

import pytest

from repro import RheemContext
from repro.core.rdf import (
    TripleStore,
    configuration_from_triples,
    default_configuration,
    vocabulary as voc,
)
from repro.core.rdf.store import Triple, TripleStoreError
from repro.core.logical.operators import GroupBy, Filter
from repro.core.physical.operators import PHashGroupBy, PSortGroupBy
from repro.errors import MappingError


class TestTripleStore:
    def test_add_and_query_exact(self):
        store = TripleStore()
        store.add("s", "p", 1)
        assert list(store.query("s", "p", 1)) == [Triple("s", "p", 1)]

    def test_add_idempotent(self):
        store = TripleStore()
        store.add("s", "p", 1)
        store.add("s", "p", 1)
        assert len(store) == 1

    def test_wildcards(self):
        store = TripleStore()
        store.add("a", "p", 1)
        store.add("a", "q", 2)
        store.add("b", "p", 3)
        assert len(list(store.query("a", None, None))) == 2
        assert len(list(store.query(None, "p", None))) == 2
        assert len(list(store.query(None, None, 3))) == 1
        assert len(list(store.query())) == 3

    def test_remove(self):
        store = TripleStore()
        store.add("s", "p", 1)
        assert store.remove("s", "p", 1)
        assert not store.remove("s", "p", 1)
        assert len(store) == 0

    def test_retract_pattern(self):
        store = TripleStore()
        store.add("a", "p", 1)
        store.add("a", "p", 2)
        store.add("b", "p", 3)
        assert store.retract_pattern("a", "p") == 2
        assert len(store) == 1

    def test_value_functional(self):
        store = TripleStore()
        store.add("s", "p", 1)
        assert store.value("s", "p") == 1
        assert store.value("s", "missing", default="d") == "d"
        store.add("s", "p", 2)
        with pytest.raises(TripleStoreError, match="expected one"):
            store.value("s", "p")

    def test_subjects(self):
        store = TripleStore()
        store.add("b", "p", 1)
        store.add("a", "p", 1)
        assert store.subjects("p") == ["a", "b"]

    def test_empty_subject_rejected(self):
        with pytest.raises(TripleStoreError):
            TripleStore().add("", "p", 1)

    def test_dump(self):
        store = TripleStore()
        store.add("s", "p", "o")
        assert "(s p 'o')" in store.dump()


class TestRoundTrip:
    def test_default_configuration_round_trips(self):
        config = configuration_from_triples(default_configuration())
        group_variants = config.mappings.candidates(GroupBy(lambda x: x))
        assert isinstance(group_variants[0], PHashGroupBy)
        assert isinstance(group_variants[1], PSortGroupBy)
        assert len(config.rules.rules) == 3
        assert config.estimator.DEFAULT_FILTER_SELECTIVITY == 0.25

    def test_context_runs_on_rdf_configuration(self):
        config = configuration_from_triples(default_configuration())
        ctx = RheemContext(
            mappings=config.mappings,
            rules=config.rules,
            estimator=config.estimator,
        )
        out = ctx.collection(range(10)).filter(lambda x: x % 2 == 0).collect()
        assert out == [0, 2, 4, 6, 8]


class TestEditingTriples:
    def test_reprioritising_swaps_default_variant(self):
        store = default_configuration()
        hash_edge = voc.mapping("GroupBy", "PHashGroupBy")
        sort_edge = voc.mapping("GroupBy", "PSortGroupBy")
        store.retract_pattern(hash_edge, voc.PRIORITY)
        store.retract_pattern(sort_edge, voc.PRIORITY)
        store.add(hash_edge, voc.PRIORITY, 5)
        store.add(sort_edge, voc.PRIORITY, 0)
        config = configuration_from_triples(store)
        variants = config.mappings.candidates(GroupBy(lambda x: x))
        assert isinstance(variants[0], PSortGroupBy)

    def test_disabling_mapping_removes_variant(self):
        store = default_configuration()
        edge = voc.mapping("GroupBy", "PSortGroupBy")
        store.retract_pattern(edge, voc.ENABLED)
        store.add(edge, voc.ENABLED, False)
        config = configuration_from_triples(store)
        variants = config.mappings.candidates(GroupBy(lambda x: x))
        assert len(variants) == 1
        assert isinstance(variants[0], PHashGroupBy)

    def test_disabling_all_mappings_of_an_operator_breaks_plans(self):
        store = default_configuration()
        for physical in ("PHashGroupBy", "PSortGroupBy"):
            edge = voc.mapping("GroupBy", physical)
            store.retract_pattern(edge, voc.ENABLED)
        config = configuration_from_triples(store)
        ctx = RheemContext(mappings=config.mappings, rules=config.rules)
        with pytest.raises(MappingError):
            ctx.collection([1, 2]).group_by(lambda x: x).collect()

    def test_disabling_a_rule(self):
        store = default_configuration()
        store.retract_pattern(voc.rule("fuse-adjacent-filters"), voc.ENABLED)
        config = configuration_from_triples(store)
        names = {rule.name for rule in config.rules.rules}
        assert "fuse-adjacent-filters" not in names
        assert "push-filter-below-sort" in names

    def test_estimator_constants_from_triples(self):
        store = default_configuration()
        store.retract_pattern(voc.estimator(), voc.FILTER_SELECTIVITY)
        store.add(voc.estimator(), voc.FILTER_SELECTIVITY, 0.01)
        config = configuration_from_triples(store)
        assert config.estimator.DEFAULT_FILTER_SELECTIVITY == 0.01
        # the class default is untouched
        from repro.core.optimizer.cardinality import CardinalityEstimator

        assert CardinalityEstimator.DEFAULT_FILTER_SELECTIVITY == 0.25

    def test_unknown_physical_operator_rejected(self):
        store = default_configuration()
        edge = voc.mapping("Filter", "PWarpDrive")
        store.add(edge, voc.MAPS_LOGICAL, voc.logical_op("Filter"))
        store.add(edge, voc.MAPS_PHYSICAL, voc.physical_op("PWarpDrive"))
        store.add(edge, voc.PRIORITY, 9)
        store.add(edge, voc.ENABLED, True)
        with pytest.raises(MappingError, match="PWarpDrive"):
            configuration_from_triples(store)

    def test_application_extends_registries(self):
        from repro.core.rdf.config import (
            register_logical_type,
            register_physical_factory,
        )
        from repro.core.physical.operators import PFilter

        class NoisyFilter(Filter):
            pass

        register_logical_type("NoisyFilter", NoisyFilter)
        register_physical_factory("PNoisyFilter", PFilter)
        store = default_configuration()
        edge = voc.mapping("NoisyFilter", "PNoisyFilter")
        store.add(edge, voc.MAPS_LOGICAL, voc.logical_op("NoisyFilter"))
        store.add(edge, voc.MAPS_PHYSICAL, voc.physical_op("PNoisyFilter"))
        store.add(edge, voc.PRIORITY, 0)
        store.add(edge, voc.ENABLED, True)
        config = configuration_from_triples(store)
        assert config.mappings.has_mapping(NoisyFilter)
