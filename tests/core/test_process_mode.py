"""Process-mode execution: the GIL-escape backend's determinism contract.

``Executor(execution_mode="process")`` swaps the concurrent scheduler's
thread pool for forked worker processes with a zero-copy shared-memory
transport for columnar channels.  The contract is the same as the
thread backend's, verbatim: byte-identical outputs, ``virtual_ms``,
ledger entry sequence and span shape versus a sequential run, at any
parallelism, under seeded fault injection, failover, chaos crashes and
cross-mode resume — plus two of its own: columnar buffers cross the
process boundary without pickling (``shm_bytes`` reconciles exactly
against ``channel_bytes``), and no shared-memory segment survives any
exit path (the autouse leak fixture backs every test here).
"""

import os

import pytest

from repro import (
    CheckpointManager,
    CrashInjector,
    FailureInjector,
    RheemContext,
    RunJournal,
    RuntimeContext,
    SimulatedCrash,
    Tracer,
)
from repro.core.channels import (
    ColumnarChannel,
    ShmColumnarChannel,
    export_columnar,
    live_segments,
    register_segment,
    shm_segment_name,
    unlink_segment,
)
from repro.core.executor import Executor
from repro.core.logical.operators import CollectionSource, CollectSink, Map
from repro.core.logical.plan import LogicalPlan
from repro.core.observability.resources import resource_summary
from repro.errors import AtomExhaustedError, ExecutionError
from repro.storage import Catalog, LocalFsStore

MODES = ("thread", "process")

WORDS = (
    "the road to freedom in big data analytics "
    "the freedom to choose a platform the road goes on"
).split()


# ----------------------------------------------------------------------
# plan zoo (multi-atom: branching pipelines, joins, loop barriers)
# ----------------------------------------------------------------------
def build_wordcount(ctx):
    lines = [" ".join(WORDS[i : i + 4]) for i in range(0, len(WORDS), 2)]
    return (
        ctx.collection(lines)
        .flat_map(str.split)
        .map(lambda word: (word, 1))
        .reduce_by(
            key=lambda pair: pair[0],
            reducer=lambda a, b: (a[0], a[1] + b[1]),
        )
        .sort(key=lambda pair: (-pair[1], pair[0]))
    )


def build_join(ctx):
    left = ctx.collection(range(40)).map(lambda x: (x % 7, x))
    right = ctx.collection(range(25)).map(lambda x: (x % 7, x * x))
    return (
        left.join(right, lambda p: p[0], lambda p: p[0])
        .map(lambda pair: (pair[0][1], pair[1][1]))
        .sort(key=lambda p: (p[0], p[1]))
    )


def build_kmeans(ctx):
    points = [float(x) for x in range(0, 30, 3)]

    def iteration(state):
        side = state.source(points, name="points")
        return (
            state.cross(side)
            .map(lambda pair: (pair[1], pair[0], abs(pair[0] - pair[1])))
            .reduce_by(
                key=lambda t: t[0],
                reducer=lambda a, b: a if a[2] <= b[2] else b,
            )
            .group_by(lambda t: t[1])
            .map(lambda g: sum(point for point, _, _ in g[1]) / len(g[1]))
            .sort(key=lambda c: c)
        )

    return (
        ctx.collection([1.0, 25.0])
        .repeat(3, iteration)
        .sort(key=lambda c: c)
    )


def build_pagerank(ctx):
    edges = [(i, (i * 3 + 1) % 8) for i in range(8)] + [(0, 4), (5, 2)]

    def iteration(state):
        side = state.source(edges, name="edges")
        return (
            state.join(side, lambda r: r[0], lambda e: e[0])
            .map(lambda pair: (pair[1][1], pair[0][1] * 0.85))
            .reduce_by(
                key=lambda r: r[0],
                reducer=lambda a, b: (a[0], a[1] + b[1]),
            )
            .map(lambda r: (r[0], round(r[1] + 0.15, 9)))
            .sort(key=lambda r: r[0])
        )

    ranks = [(node, 1.0) for node in range(8)]
    return ctx.collection(ranks).repeat(2, iteration).sort(key=lambda r: r[0])


WORKLOADS = {
    "wordcount": build_wordcount,
    "join": build_join,
    "kmeans": build_kmeans,
    "pagerank": build_pagerank,
}


def build_execution(ctx, build):
    handle = build(ctx)
    handle.plan.add(CollectSink(), [handle.operator])
    physical = ctx.app_optimizer.optimize(handle.plan)
    return ctx.task_optimizer.optimize(physical)


def branching_execution(pipelines=6, numeric=False):
    """Independent source→map→sink pipelines: one dispatchable atom
    each, so the scheduler genuinely overlaps them.  ``numeric=True``
    makes every atom output packable (floats) for the columnar tests."""
    from repro.core.optimizer.application import ApplicationOptimizer
    from repro.core.optimizer.enumerator import MultiPlatformOptimizer
    from repro.platforms import JavaPlatform

    plan = LogicalPlan()
    for p in range(pipelines):
        if numeric:
            src = plan.add(
                CollectionSource([float(x) for x in range(p, p + 40)])
            )
            mapped = plan.add(Map(lambda x, p=p: x * 1.5 + p), [src])
        else:
            src = plan.add(CollectionSource(list(range(p * 10, p * 10 + 8))))
            mapped = plan.add(Map(lambda x, p=p: x * 3 + p), [src])
        plan.add(CollectSink(), [mapped])
    physical = ApplicationOptimizer().optimize(plan)
    return MultiPlatformOptimizer([JavaPlatform()]).optimize(physical)


# ----------------------------------------------------------------------
# comparison helpers
# ----------------------------------------------------------------------
def run(execution, parallelism, mode="thread", runtime=None, tracer=None,
        **executor_kw):
    runtime = runtime or RuntimeContext(tracer=tracer)
    return Executor(
        parallelism=parallelism, execution_mode=mode, **executor_kw
    ).execute(execution, runtime)


def ledger_sequence(metrics):
    return [
        (e.label, repr(e.ms), e.platform, e.atom_id)
        for e in metrics.ledger.entries
    ]


def span_shape(tracer):
    """Span tree as comparable rows, dropping scheduler stamps."""
    by_id = {s.span_id: s for s in tracer.spans}
    rows = []
    for span in tracer.spans:
        parent = by_id.get(span.parent_id)
        attrs = {
            k: v for k, v in span.attributes.items()
            if k not in ("worker", "slot")
        }
        rows.append((
            span.name, span.kind,
            parent.name if parent else None,
            tuple(sorted((k, repr(v)) for k, v in attrs.items())),
            tuple(e.name for e in span.events),
        ))
    return sorted(rows)


def fingerprint(execution, parallelism, mode, **executor_kw):
    tracer = Tracer()
    result = run(execution, parallelism, mode, tracer=tracer, **executor_kw)
    return {
        "outputs": result.outputs,
        "virtual": repr(result.metrics.virtual_ms),
        "ledger": ledger_sequence(result.metrics),
        "spans": span_shape(tracer),
        "makespan": repr(result.metrics.makespan_ms),
    }


# ----------------------------------------------------------------------
# the equivalence matrix
# ----------------------------------------------------------------------
def assert_matrix_identical(execution, **executor_kw):
    """The full equivalence contract over one shared execution object
    (reusing it keeps atom ids stable across runs):

    * processes == threads at the *same* parallelism on everything —
      outputs, ``virtual_ms``, ledger sequence, span shape, makespan;
    * outputs, ``virtual_ms`` and the ledger sequence additionally match
      the sequential run at every parallelism (makespan and span
      virtual timing legitimately compress when lanes overlap).
    """
    sequential = fingerprint(execution, 1, "thread", **executor_kw)
    for parallelism in (1, 4):
        per_mode = {
            mode: fingerprint(execution, parallelism, mode, **executor_kw)
            for mode in MODES
        }
        assert per_mode["process"] == per_mode["thread"], parallelism
        for mode, got in per_mode.items():
            for key in ("outputs", "virtual", "ledger"):
                assert got[key] == sequential[key], (mode, parallelism, key)


class TestEquivalenceMatrix:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_workloads_identical_across_modes(self, name):
        execution = build_execution(RheemContext(), WORKLOADS[name])
        assert_matrix_identical(execution)

    def test_branching_plan_identical_across_modes(self):
        assert_matrix_identical(branching_execution())

    def test_columnar_identical_across_modes(self):
        assert_matrix_identical(
            branching_execution(numeric=True), columnar=True
        )

    def test_columnar_loop_identical_across_modes(self):
        """Loop barriers consume shared-memory state channels inline on
        the coordinator (attach + rebuild path)."""
        execution = build_execution(RheemContext(), build_kmeans)
        assert_matrix_identical(execution, columnar=True)

    def test_counters_identical(self):
        execution = branching_execution()
        base = run(execution, 1).metrics
        proc = run(execution, 4, "process").metrics
        assert proc.atoms_executed == base.atoms_executed
        assert proc.retries == base.retries
        assert proc.by_platform() == base.by_platform()


# ----------------------------------------------------------------------
# zero-copy accounting
# ----------------------------------------------------------------------
class TestSharedMemoryAccounting:
    @staticmethod
    def _spy_transport(monkeypatch):
        """Record every worker→coordinator channel hand-off: the shm
        descriptors and anything that arrived as a pickle."""
        from repro.core import scheduler as sched

        seen = {"shm": [], "raw": []}
        orig = sched.ConcurrentAtomScheduler._journal_from_result

        def spy(self, result):
            for _op_id, (kind, payload) in result.produced:
                seen[kind].append(payload)
            return orig(self, result)

        monkeypatch.setattr(
            sched.ConcurrentAtomScheduler, "_journal_from_result", spy
        )
        return seen

    def test_shm_bytes_reconcile_exactly_with_descriptors(
        self, monkeypatch
    ):
        """The join plan's left pipeline hands a columnar channel to the
        join atom: 40 rows × 2 int64 columns = exactly 640 payload
        bytes.  That hand-off must cross as a segment whose descriptor
        carries the exact ``payload_bytes``, the ``shm_bytes``
        histogram must reconcile observation-for-observation against
        those descriptors, and no columnar channel may arrive pickled
        (the zero-copy claim)."""
        seen = self._spy_transport(monkeypatch)
        execution = build_execution(RheemContext(), build_join)
        result = run(execution, 4, "process", columnar=True, profile=True)
        assert [d.nbytes for d in seen["shm"]] == [640]
        assert not any(
            isinstance(channel, ColumnarChannel)
            for channel in seen["raw"]
        ), "a columnar channel crossed the boundary as a pickle"
        shm = resource_summary(result.metrics.registry)["shm_bytes"]
        assert shm["n"] == len(seen["shm"]) == 1
        assert shm["total"] == shm["max"] == 640.0

    def test_loop_state_crosses_as_segment(self, monkeypatch):
        """Loop barriers run inline on the coordinator and consume the
        pre-stage's shared-memory state channel there (attach path)."""
        seen = self._spy_transport(monkeypatch)
        execution = build_execution(RheemContext(), build_kmeans)
        result = run(execution, 4, "process", columnar=True, profile=True)
        # initial centroids: 2 float64s = 16 bytes
        assert [d.nbytes for d in seen["shm"]] == [16]
        shm = resource_summary(result.metrics.registry)["shm_bytes"]
        assert shm["n"] == 1 and shm["total"] == 16.0

    def test_channel_accounting_identical_across_modes(self):
        """``channel_bytes`` (and every other resource total the modes
        share deterministically) must not notice the backend swap."""
        execution = build_execution(RheemContext(), build_join)
        per_mode = {
            mode: resource_summary(
                run(
                    execution, 4, mode, columnar=True, profile=True
                ).metrics.registry
            )
            for mode in MODES
        }
        assert per_mode["process"]["channel_bytes"] == (
            per_mode["thread"]["channel_bytes"]
        )
        assert "shm_bytes" not in per_mode["thread"]
        assert per_mode["process"]["shm_bytes"]["n"] == 1

    def test_export_import_roundtrip_preserves_payload(self):
        channel = ColumnarChannel.from_rows(
            [(1.5, 2.0), (3.25, 4.0), (5.0, 6.0)], "java"
        )
        name = shm_segment_name(os.getpid() % 7 + 1, 0, 0)
        register_segment(name)
        try:
            descriptor = export_columnar(channel, name)
            assert descriptor.nbytes == channel.payload_bytes()
            rebuilt = ShmColumnarChannel(descriptor, owner=False)
            assert len(rebuilt) == len(channel)
            assert rebuilt.payload_bytes() == channel.payload_bytes()
            assert rebuilt.require_data() == channel.require_data()
            assert [c.typecode for c in rebuilt.columns] == [
                c.typecode for c in channel.columns
            ]
        finally:
            unlink_segment(name)
        assert name not in live_segments()

    def test_owner_release_unlinks_segment(self):
        channel = ColumnarChannel.from_rows([(1.0, 2.0), (3.0, 4.0)], "java")
        name = shm_segment_name(os.getpid() % 7 + 2, 1, 0)
        register_segment(name)
        descriptor = export_columnar(channel, name)
        owner = ShmColumnarChannel(descriptor, owner=True)
        assert name in live_segments()
        owner.release()
        assert owner.released and owner.payload_bytes() == 0
        assert name not in live_segments()
        # consuming an unlinked segment is a loud lifetime bug
        orphan = ShmColumnarChannel(descriptor, owner=False)
        with pytest.raises(ExecutionError, match="vanished"):
            orphan.require_data()

    def test_localize_survives_unlink(self):
        channel = ColumnarChannel.from_rows([(7.0, 8.0)], "java")
        name = shm_segment_name(os.getpid() % 7 + 3, 2, 0)
        register_segment(name)
        descriptor = export_columnar(channel, name)
        shared = ShmColumnarChannel(descriptor, owner=True)
        shared.localize()
        unlink_segment(name)
        assert shared.require_data() == [(7.0, 8.0)]


# ----------------------------------------------------------------------
# fault injection parity
# ----------------------------------------------------------------------
class TestFaultInjectionParity:
    @staticmethod
    def _outcome(execution, parallelism, mode, injector_config,
                 **executor_kw):
        runtime = RuntimeContext(
            failure_injector=FailureInjector(**injector_config)
        )
        try:
            result = Executor(
                parallelism=parallelism, execution_mode=mode,
                max_retries=2, **executor_kw
            ).execute(execution, runtime)
        except ExecutionError as error:
            return ("error", type(error).__name__, str(error))
        return (
            "ok", result.outputs, result.metrics.virtual_ms,
            result.metrics.retries,
        )

    def test_transient_failure_at_every_position(self):
        execution = branching_execution()
        reference = run(execution, 1)
        total = reference.metrics.atoms_executed
        for position in range(int(total)):
            result = run(
                execution, 4, "process",
                runtime=RuntimeContext(
                    failure_injector=FailureInjector({position: 1})
                ),
            )
            assert result.outputs == reference.outputs, position
            assert result.metrics.retries == 1, position

    @pytest.mark.parametrize("seed", range(4))
    def test_probabilistic_sweep_identical_outcomes(self, seed):
        execution = branching_execution()
        config = dict(rate=0.3, seed=seed)
        sequential = self._outcome(execution, 1, "thread", config)
        threads = self._outcome(execution, 4, "thread", config)
        processes = self._outcome(execution, 4, "process", config)
        assert processes == sequential == threads

    @pytest.mark.parametrize("seed", range(3))
    def test_straggler_sweep_identical_bill(self, seed):
        execution = branching_execution()
        config = dict(slowdown_rate=0.5, slowdown_ms=7.0, seed=seed)
        sequential = self._outcome(execution, 1, "thread", config)
        processes = self._outcome(execution, 4, "process", config)
        assert processes == sequential
        assert sequential[0] == "ok"

    def test_exhaustion_error_identical(self):
        """A terminal AtomExhaustedError survives the pickle boundary
        with its message intact and its atom reattached."""
        execution = branching_execution()
        config = dict(failures={0: 99})
        sequential = self._outcome(execution, 1, "thread", config)
        processes = self._outcome(execution, 4, "process", config)
        assert sequential[0] == "error"
        assert processes == sequential

    def test_exhaustion_atom_reattached(self):
        execution = branching_execution()
        runtime = RuntimeContext(
            failure_injector=FailureInjector({0: 99})
        )
        with pytest.raises(AtomExhaustedError) as failure:
            Executor(
                parallelism=4, execution_mode="process", max_retries=1
            ).execute(execution, runtime)
        assert failure.value.atom is not None
        assert failure.value.atom in execution.atoms

    def test_failover_identical_to_sequential(self):
        results = {}
        for parallelism, mode in ((1, "thread"), (4, "process")):
            ctx = RheemContext(
                failover=True, max_retries=1, parallelism=parallelism,
                execution_mode=mode,
            )
            execution = build_execution(ctx, build_kmeans)
            runtime = RuntimeContext(
                failure_injector=FailureInjector(down_platforms={"java": 1})
            )
            results[mode, parallelism] = ctx.executor.execute(
                execution, runtime
            )
        sequential = results["thread", 1]
        processes = results["process", 4]
        assert processes.single == sequential.single
        assert processes.metrics.virtual_ms == sequential.metrics.virtual_ms
        assert processes.metrics.failovers == sequential.metrics.failovers
        assert processes.metrics.failovers >= 1


# ----------------------------------------------------------------------
# chaos: crashes, cross-mode resume, segment hygiene on abnormal exits
# ----------------------------------------------------------------------
class ChaosHarness:
    """One shared execution, one journal layout, many crash/resume runs."""

    def __init__(self, tmp_path, build=build_kmeans, **executor_kw):
        self.tmp_path = tmp_path
        self.executor_kw = executor_kw
        self.execution = build_execution(RheemContext(), build)
        self.runs = 0

    def run(self, rundir, mode, parallelism=4, crash_at=None,
            crash_mode="after"):
        rundir = os.fspath(rundir)
        os.makedirs(rundir, exist_ok=True)
        catalog = Catalog()
        catalog.register_store(
            LocalFsStore(root=os.path.join(rundir, "ckpt"))
        )
        checkpoint = CheckpointManager(catalog, "localfs", plan_key="chaos")
        journal = RunJournal(
            os.path.join(rundir, "run.journal"), run_id="chaos"
        )
        tracer = Tracer()
        runtime = RuntimeContext(
            checkpoint=checkpoint,
            tracer=tracer,
            journal=journal,
            crash_injector=(
                CrashInjector(crash_at, mode=crash_mode)
                if crash_at is not None
                else None
            ),
        )
        executor = Executor(
            resume=True, parallelism=parallelism, execution_mode=mode,
            **self.executor_kw,
        )
        try:
            result = executor.execute(self.execution, runtime)
            return result, journal, tracer
        finally:
            journal.close()

    def reference(self):
        result, journal, tracer = self.run(
            self.tmp_path / "reference", "thread", parallelism=1
        )
        return {
            "output": result.single,
            "virtual": repr(result.metrics.virtual_ms),
            "ledger": ledger_sequence(result.metrics),
            "spans": span_shape(tracer),
            "records": journal.records_written,
        }

    def crash_then_resume(self, crash_at, crash_mode, mode, resume_mode):
        self.runs += 1
        rundir = self.tmp_path / f"crash-{self.runs}"
        with pytest.raises(SimulatedCrash):
            self.run(rundir, mode, crash_at=crash_at, crash_mode=crash_mode)
        assert not live_segments(), "crash path leaked segments"
        return self.run(rundir, resume_mode)

    def assert_identical(self, reference, result, tracer):
        assert result.single == reference["output"]
        assert repr(result.metrics.virtual_ms) == reference["virtual"]
        assert ledger_sequence(result.metrics) == reference["ledger"]
        assert span_shape(tracer) == reference["spans"]


class TestChaosParity:
    def test_crash_resume_in_process_mode(self, tmp_path):
        harness = ChaosHarness(tmp_path)
        reference = harness.reference()
        assert reference["records"] >= 2
        for crash_at in range(reference["records"]):
            result, journal, tracer = harness.crash_then_resume(
                crash_at, "after", "process", "process"
            )
            harness.assert_identical(reference, result, tracer)
            assert result.metrics.resumes == 1
            assert result.metrics.atoms_restored == crash_at + 1
            assert journal.records_written == reference["records"]

    def test_torn_tail_in_process_mode(self, tmp_path):
        harness = ChaosHarness(tmp_path)
        reference = harness.reference()
        result, _journal, tracer = harness.crash_then_resume(
            0, "torn", "process", "process"
        )
        harness.assert_identical(reference, result, tracer)

    @pytest.mark.parametrize(
        "crash_under,resume_under",
        [("thread", "process"), ("process", "thread")],
    )
    def test_cross_mode_resume(self, tmp_path, crash_under, resume_under):
        """Execution mode is excluded from the config epoch: a journal
        written under one backend resumes under the other."""
        harness = ChaosHarness(tmp_path)
        reference = harness.reference()
        result, _journal, tracer = harness.crash_then_resume(
            0, "after", crash_under, resume_under
        )
        harness.assert_identical(reference, result, tracer)
        assert result.metrics.resumes == 1

    def test_columnar_crash_resume_in_process_mode(self, tmp_path):
        harness = ChaosHarness(tmp_path, columnar=True)
        reference = harness.reference()
        result, _journal, tracer = harness.crash_then_resume(
            reference["records"] - 1, "after", "process", "process"
        )
        harness.assert_identical(reference, result, tracer)

    def test_header_records_execution_mode(self, tmp_path):
        harness = ChaosHarness(tmp_path)
        with pytest.raises(SimulatedCrash):
            harness.run(
                tmp_path / "hdr", "process", crash_at=0, crash_mode="after"
            )
        header, _records, _torn = RunJournal(
            os.path.join(tmp_path, "hdr", "run.journal")
        ).load()
        assert header["execution_mode"] == "process"
        assert header["parallelism"] == 4


class TestSegmentHygiene:
    def test_plain_columnar_run_leaves_nothing(self):
        execution = branching_execution(numeric=True)
        run(execution, 4, "process", columnar=True)
        assert not live_segments()

    def test_failover_drain_leaves_nothing(self):
        ctx = RheemContext(
            failover=True, max_retries=1, parallelism=4,
            execution_mode="process", columnar=True,
        )
        execution = build_execution(ctx, build_kmeans)
        runtime = RuntimeContext(
            failure_injector=FailureInjector(down_platforms={"java": 1})
        )
        result = ctx.executor.execute(execution, runtime)
        assert result.metrics.failovers >= 1
        assert not live_segments()

    def test_terminal_error_leaves_nothing(self):
        execution = branching_execution(numeric=True)
        runtime = RuntimeContext(
            failure_injector=FailureInjector({2: 99})
        )
        with pytest.raises(AtomExhaustedError):
            run(
                execution, 4, "process", runtime=runtime,
                columnar=True, max_retries=1,
            )
        assert not live_segments()

    def test_deadline_kill_leaves_nothing(self):
        import time

        ctx = RheemContext(
            deadline_ms=80.0, max_retries=0, parallelism=4,
            execution_mode="process", columnar=True,
        )
        execution = build_execution(
            ctx,
            lambda c: c.collection([float(x) for x in range(4)]).map(
                lambda x: time.sleep(0.4) or x
            ),
        )
        with pytest.raises(AtomExhaustedError):
            ctx.executor.execute(execution, RuntimeContext())
        assert not live_segments()


# ----------------------------------------------------------------------
# configuration plumbing
# ----------------------------------------------------------------------
class TestExecutionModeConfig:
    def test_default_is_thread(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTION_MODE", raising=False)
        assert Executor().execution_mode == "thread"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTION_MODE", "process")
        assert Executor().execution_mode == "process"
        monkeypatch.setenv("REPRO_EXECUTION_MODE", "junk")
        assert Executor().execution_mode == "thread"

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTION_MODE", "process")
        assert Executor(execution_mode="thread").execution_mode == "thread"

    def test_explicit_invalid_raises(self):
        with pytest.raises(ValueError, match="execution_mode"):
            Executor(execution_mode="fibers")

    def test_context_passes_mode_through(self):
        ctx = RheemContext(execution_mode="process")
        assert ctx.executor.execution_mode == "process"

    def test_cli_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["demo", "--execution-mode", "process"]
        )
        assert args.execution_mode == "process"
        args = build_parser().parse_args(
            ["resume", "r1", "--journal", "runs"]
        )
        assert args.execution_mode is None

    def test_sequential_parallelism_ignores_mode(self):
        """parallelism=1 never builds a pool of either kind."""
        execution = branching_execution()
        base = run(execution, 1, "thread")
        proc = run(execution, 1, "process")
        assert proc.outputs == base.outputs
        assert proc.metrics.virtual_ms == base.metrics.virtual_ms
