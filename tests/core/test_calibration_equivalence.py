"""Property-style equivalence: calibration off vs cold-store on.

Calibration must be a pure *learning* layer: until the store has
evidence, attaching it may not move a single estimate, plan choice, or
ledger charge.  For every seeded workload here, outputs, the virtual
bill, and the full ledger entry sequence are identical between a plain
context and a ``calibrate=True`` context with a cold store — and
``REPRO_NO_CALIBRATION=1`` restores that identity even when the store is
warm.  Mirrors the compiled-data-path suite's ``(label, ms, platform)``
bill comparison (atom ids are process-global, so labels are compared
positionally).
"""

from __future__ import annotations

from operator import itemgetter

import pytest

from repro import CostHints, RheemContext
from repro.core.logical.operators import CollectSink
from repro.core.optimizer.calibration import (
    KILL_SWITCH,
    CalibrationStore,
    calibration_enabled,
)

KEY = itemgetter(0)

WORDS = [
    "freedom is the recognition of necessity",
    "the road to freedom is long",
    "freedom necessity freedom",
] * 5


def _bill(metrics):
    return [
        (entry.label, entry.ms, entry.platform)
        for entry in metrics.ledger.entries
    ]


def _wordcount(ctx):
    return (
        ctx.collection(WORDS)
        .flat_map(str.split)
        .map(lambda w: (w, 1))
        .reduce_by(KEY, lambda a, b: (a[0], a[1] + b[1]))
        .sort(lambda kv: (-kv[1], kv[0]))
        .collect_with_metrics()
    )


def _filter_groupby(ctx):
    return (
        ctx.collection(range(2_000))
        .filter(lambda x: x % 3 == 0, hints=CostHints(selectivity=0.33))
        .map(lambda x: (x % 7, x))
        .group_by(KEY)
        .map(lambda kv: (kv[0], len(kv[1])))
        .sort(KEY)
        .collect_with_metrics()
    )


def _join(ctx):
    left = ctx.collection([(i, f"l{i}") for i in range(200)])
    right = ctx.collection([(i % 50, f"r{i}") for i in range(200)])
    return (
        left.join(right, KEY, KEY)
        .map(lambda pair: (pair[0][0], pair[1][1]))
        .sort(lambda kv: (kv[0], kv[1]))
        .collect_with_metrics()
    )


WORKLOADS = {
    "wordcount": _wordcount,
    "filter_groupby": _filter_groupby,
    "join": _join,
}


def skewed_logical_plan(ctx):
    dq = (
        ctx.collection(range(20_000))
        .filter(lambda x: True, hints=CostHints(selectivity=0.0001))
        .repeat(
            15,
            lambda s: s.map(lambda x: x + 1, hints=CostHints(udf_load=10.0)),
        )
    )
    dq.plan.add(CollectSink(), [dq.operator])
    return dq.plan


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_cold_store_is_byte_identical(monkeypatch, workload):
    """Criterion (a): plain vs calibrate=True-with-cold-store runs have
    identical outputs, virtual bills, and ledger entry sequences."""
    monkeypatch.delenv(KILL_SWITCH, raising=False)
    run = WORKLOADS[workload]
    out_plain, m_plain = run(RheemContext())
    ctx_cold = RheemContext(calibrate=True)
    out_cold, m_cold = run(ctx_cold)
    assert out_plain == out_cold
    assert m_plain.virtual_ms == m_cold.virtual_ms
    assert _bill(m_plain) == _bill(m_cold)
    # the cold store learned from the run (it records even while it
    # cannot yet correct) without perturbing it
    assert ctx_cold.calibration.sample_count() > 0


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_kill_switch_neutralises_a_warm_store(monkeypatch, workload):
    """``REPRO_NO_CALIBRATION=1`` restores pre-calibration behaviour
    byte-for-byte even when the attached store is warm and skewed."""
    monkeypatch.delenv(KILL_SWITCH, raising=False)
    run = WORKLOADS[workload]
    out_plain, m_plain = run(RheemContext())

    warm = CalibrationStore()
    for kind in ("filter", "flatmap", "groupby.hash", "join.hash"):
        for _ in range(5):
            warm.observe(kind, "java", estimated=10.0, observed=1_000.0)
    monkeypatch.setenv(KILL_SWITCH, "1")
    assert not calibration_enabled()
    out_killed, m_killed = run(RheemContext(calibrate=warm))
    assert out_plain == out_killed
    assert m_plain.virtual_ms == m_killed.virtual_ms
    assert _bill(m_plain) == _bill(m_killed)


def test_adaptive_cold_store_matches_legacy_bill(monkeypatch):
    """The drift-band trigger (calibration on, cold store) and the
    legacy fixed threshold (kill switch) replan the seeded skewed plan
    identically: same outputs, same replan count, same ledger."""
    monkeypatch.delenv(KILL_SWITCH, raising=False)
    ctx_cold = RheemContext(calibrate=True)
    result_cold, replans_cold = ctx_cold.execute_adaptive(
        skewed_logical_plan(ctx_cold)
    )

    monkeypatch.setenv(KILL_SWITCH, "1")
    ctx_legacy = RheemContext()
    result_legacy, replans_legacy = ctx_legacy.execute_adaptive(
        skewed_logical_plan(ctx_legacy)
    )
    assert replans_cold == replans_legacy >= 1
    assert sorted(result_cold.single) == sorted(result_legacy.single)
    assert (
        result_cold.metrics.virtual_ms == result_legacy.metrics.virtual_ms
    )
    assert _bill(result_cold.metrics) == _bill(result_legacy.metrics)


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_warm_store_preserves_outputs(monkeypatch, workload):
    """Corrections may re-place operators but never change results."""
    monkeypatch.delenv(KILL_SWITCH, raising=False)
    run = WORKLOADS[workload]
    out_plain, _ = run(RheemContext())
    store = CalibrationStore()
    run(RheemContext(calibrate=store))  # learn
    out_warm, _ = run(RheemContext(calibrate=store))  # apply
    assert out_warm == out_plain


def test_cold_store_trace_shape_matches_plain(monkeypatch):
    """Span names are identical plain vs cold store: the calibration
    span attributes only appear once corrections actually move an
    estimate."""
    from repro.core.observability import Tracer

    monkeypatch.delenv(KILL_SWITCH, raising=False)

    import re

    def spans(ctx, tracer):
        _wordcount(ctx)
        # atom ids are process-global; compare shapes, not counters
        return [re.sub(r"#\d+", "#N", span.name) for span in tracer.spans]

    tracer_plain = Tracer()
    tracer_cold = Tracer()
    names_plain = spans(RheemContext(tracer=tracer_plain), tracer_plain)
    names_cold = spans(
        RheemContext(calibrate=True, tracer=tracer_cold), tracer_cold
    )
    assert names_plain == names_cold
