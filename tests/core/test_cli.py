"""Tests for the command-line interface."""

import pytest

from repro.cli import _coerce, build_parser, main


@pytest.fixture()
def people_csv(tmp_path):
    path = tmp_path / "people.csv"
    path.write_text(
        "id,name,dept,salary\n"
        "1,ada,eng,120.5\n"
        "2,bob,eng,95\n"
        "3,cyn,ops,80\n"
    )
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sql_arguments(self):
        args = build_parser().parse_args(
            ["sql", "SELECT 1 FROM t", "--table", "t=f.csv", "--platform", "java"]
        )
        assert args.query == "SELECT 1 FROM t"
        assert args.table == ["t=f.csv"]
        assert args.platform == "java"


class TestCoerce:
    def test_int_float_bool_string(self):
        assert _coerce("42") == 42
        assert _coerce("3.5") == 3.5
        assert _coerce("true") is True
        assert _coerce("FALSE") is False
        assert _coerce("hello") == "hello"


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "platforms:" in out
        assert "java" in out and "spark" in out and "postgres" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "freedom" in out
        assert "identical" in out
        assert "DIFFERENT" not in out

    def test_sql_over_csv(self, capsys, people_csv):
        code = main(
            [
                "sql",
                "SELECT dept, COUNT(*) AS n, AVG(salary) AS pay "
                "FROM people GROUP BY dept ORDER BY dept",
                "--table",
                f"people={people_csv}",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "eng" in out and "ops" in out
        assert "(2 rows" in out

    def test_sql_explain(self, capsys, people_csv):
        code = main(
            [
                "sql",
                "SELECT name FROM people WHERE salary > 90",
                "--table",
                f"people={people_csv}",
                "--explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sql-where" in out

    def test_sql_pinned_platform(self, capsys, people_csv):
        code = main(
            [
                "sql",
                "SELECT name FROM people ORDER BY name LIMIT 1",
                "--table",
                f"people={people_csv}",
                "--platform",
                "spark",
            ]
        )
        assert code == 0
        assert "ada" in capsys.readouterr().out

    def test_bad_table_spec(self, people_csv):
        with pytest.raises(SystemExit, match="NAME=CSVFILE"):
            main(["sql", "SELECT 1 FROM t", "--table", "oops"])

    def test_empty_csv(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(SystemExit, match="empty CSV"):
            main(["sql", "SELECT 1 FROM t", "--table", f"t={empty}"])


class TestExplainCommand:
    def test_explain_demo(self, capsys):
        assert main(["explain", "demo"]) == 0
        out = capsys.readouterr().out
        assert "enumerator:" in out
        assert "candidate(s) considered" in out
        assert "winner:" in out
        assert "reason:" in out
        assert "est=" in out
        assert "operator assignment:" in out
        assert "execution plan (task atoms):" in out
        assert "atom#" in out

    def test_explain_lists_infeasible_candidates(self, capsys):
        # the demo pipeline flat_maps, which postgres cannot run
        main(["explain", "demo"])
        assert "infeasible" in capsys.readouterr().out

    def test_explain_sql(self, capsys, people_csv):
        code = main(
            [
                "explain",
                "SELECT dept, COUNT(*) AS n FROM people GROUP BY dept",
                "--table",
                f"people={people_csv}",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "application optimizer:" in out
        assert "winner:" in out
        assert "groupby" in out

    def test_explain_bad_sql(self, people_csv):
        with pytest.raises(SystemExit):
            main(
                ["explain", "SELECT FROM nothing", "--table",
                 f"people={people_csv}"]
            )


class TestTraceFlags:
    def test_demo_trace_out_chrome(self, tmp_path, capsys):
        import json

        trace = tmp_path / "demo.json"
        assert main(["demo", "--trace-out", str(trace)]) == 0
        err = capsys.readouterr().err
        assert "[trace]" in err and "Chrome trace" in err
        doc = json.loads(trace.read_text())
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert events
        # at least one complete span tree: a root with children
        roots = [e for e in events if e["args"]["parent_id"] is None]
        assert roots
        root_ids = {e["args"]["span_id"] for e in roots}
        assert any(
            e["args"]["parent_id"] in root_ids for e in events
        )
        assert doc["otherData"]["virtual_total_ms"] > 0

    def test_sql_trace_out_jsonl(self, tmp_path, capsys, people_csv):
        import json

        trace = tmp_path / "run.jsonl"
        code = main(
            [
                "sql",
                "SELECT name FROM people ORDER BY name",
                "--table",
                f"people={people_csv}",
                "--trace-out",
                str(trace),
            ]
        )
        assert code == 0
        assert "JSONL" in capsys.readouterr().err
        rows = [
            json.loads(line)
            for line in trace.read_text().strip().split("\n")
        ]
        assert any(row["name"] == "task" for row in rows)
        assert all(row["complete"] for row in rows)

    def test_demo_flame(self, capsys):
        assert main(["demo", "--flame"]) == 0
        err = capsys.readouterr().err
        assert "task" in err
        assert "%" in err and "█" in err

    def test_untraced_demo_prints_no_trace_output(self, capsys):
        assert main(["demo"]) == 0
        assert "[trace]" not in capsys.readouterr().err


class TestParallelismFlag:
    def test_parser_accepts_parallelism(self):
        args = build_parser().parse_args(["demo", "--parallelism", "4"])
        assert args.parallelism == 4
        args = build_parser().parse_args(["sql", "SELECT 1 FROM t"])
        assert args.parallelism is None

    def test_demo_runs_with_parallelism(self, capsys):
        assert main(["demo", "--parallelism", "4"]) == 0
        out = capsys.readouterr().out
        assert "word counts" in out
        assert "identical" in out

    def test_sql_runs_with_parallelism(self, capsys, people_csv):
        code = main([
            "sql", "--table", f"people={people_csv}", "--parallelism", "2",
            "SELECT dept, COUNT(*) AS n FROM people GROUP BY dept",
        ])
        assert code == 0
        assert "eng" in capsys.readouterr().out


class TestServeMetricsParser:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve-metrics"])
        assert args.host == "127.0.0.1"
        assert args.port == 9464
        assert args.parallelism is None

    def test_parser_overrides(self):
        args = build_parser().parse_args(
            ["serve-metrics", "--host", "0.0.0.0", "--port", "0",
             "--parallelism", "2"]
        )
        assert (args.host, args.port, args.parallelism) == ("0.0.0.0", 0, 2)
