"""Tests for the command-line interface."""

import pytest

from repro.cli import _coerce, build_parser, main


@pytest.fixture()
def people_csv(tmp_path):
    path = tmp_path / "people.csv"
    path.write_text(
        "id,name,dept,salary\n"
        "1,ada,eng,120.5\n"
        "2,bob,eng,95\n"
        "3,cyn,ops,80\n"
    )
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_sql_arguments(self):
        args = build_parser().parse_args(
            ["sql", "SELECT 1 FROM t", "--table", "t=f.csv", "--platform", "java"]
        )
        assert args.query == "SELECT 1 FROM t"
        assert args.table == ["t=f.csv"]
        assert args.platform == "java"


class TestCoerce:
    def test_int_float_bool_string(self):
        assert _coerce("42") == 42
        assert _coerce("3.5") == 3.5
        assert _coerce("true") is True
        assert _coerce("FALSE") is False
        assert _coerce("hello") == "hello"


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "platforms:" in out
        assert "java" in out and "spark" in out and "postgres" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "freedom" in out
        assert "identical" in out
        assert "DIFFERENT" not in out

    def test_sql_over_csv(self, capsys, people_csv):
        code = main(
            [
                "sql",
                "SELECT dept, COUNT(*) AS n, AVG(salary) AS pay "
                "FROM people GROUP BY dept ORDER BY dept",
                "--table",
                f"people={people_csv}",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "eng" in out and "ops" in out
        assert "(2 rows" in out

    def test_sql_explain(self, capsys, people_csv):
        code = main(
            [
                "sql",
                "SELECT name FROM people WHERE salary > 90",
                "--table",
                f"people={people_csv}",
                "--explain",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sql-where" in out

    def test_sql_pinned_platform(self, capsys, people_csv):
        code = main(
            [
                "sql",
                "SELECT name FROM people ORDER BY name LIMIT 1",
                "--table",
                f"people={people_csv}",
                "--platform",
                "spark",
            ]
        )
        assert code == 0
        assert "ada" in capsys.readouterr().out

    def test_bad_table_spec(self, people_csv):
        with pytest.raises(SystemExit, match="NAME=CSVFILE"):
            main(["sql", "SELECT 1 FROM t", "--table", "oops"])

    def test_empty_csv(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(SystemExit, match="empty CSV"):
            main(["sql", "SELECT 1 FROM t", "--table", f"t={empty}"])
