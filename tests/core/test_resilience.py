"""Tests for the resilience subsystem: backoff, circuit breakers,
failure injection, retry accounting and user-error wrapping."""

import pytest

from repro import (
    BackoffPolicy,
    FailureInjector,
    HealthTracker,
    RheemContext,
    RuntimeContext,
)
from repro.core.listeners import ATOM_RETRIED, RecordingListener
from repro.core.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
)
from repro.errors import (
    ExecutionError,
    PlatformDownError,
    TransientError,
)


class TestBackoffPolicy:
    def test_exponential_growth(self):
        policy = BackoffPolicy(base_ms=10.0, factor=2.0, jitter=0.0)
        assert policy.delay_ms(0) == 10.0
        assert policy.delay_ms(1) == 20.0
        assert policy.delay_ms(3) == 80.0

    def test_cap(self):
        policy = BackoffPolicy(base_ms=10.0, factor=10.0, max_ms=50.0,
                               jitter=0.0)
        assert policy.delay_ms(5) == 50.0

    def test_jitter_is_deterministic(self):
        policy = BackoffPolicy(seed=7)
        assert policy.delay_ms(2, token="atom-9") == policy.delay_ms(
            2, token="atom-9"
        )

    def test_jitter_decorrelates_tokens(self):
        policy = BackoffPolicy(seed=7)
        assert policy.delay_ms(2, token="a") != policy.delay_ms(2, token="b")

    def test_jitter_bounded(self):
        policy = BackoffPolicy(base_ms=100.0, factor=1.0, jitter=0.5)
        for attempt in range(5):
            delay = policy.delay_ms(attempt, token=attempt)
            assert 50.0 <= delay <= 100.0

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            BackoffPolicy().delay_ms(-1)


class TestHealthTracker:
    def test_starts_closed_and_available(self):
        tracker = HealthTracker()
        assert tracker.state("java") == BREAKER_CLOSED
        assert tracker.is_available("java")

    def test_threshold_trips_breaker(self):
        tracker = HealthTracker(failure_threshold=3)
        assert not tracker.record_failure("java")
        assert not tracker.record_failure("java")
        assert tracker.record_failure("java")  # third consecutive: trip
        assert tracker.state("java") == BREAKER_OPEN
        assert not tracker.is_available("java")
        assert tracker.health("java").quarantines == 1

    def test_success_resets_consecutive_count(self):
        tracker = HealthTracker(failure_threshold=2)
        tracker.record_failure("java")
        tracker.record_success("java")
        assert not tracker.record_failure("java")  # streak was broken
        assert tracker.state("java") == BREAKER_CLOSED

    def test_permanent_failure_trips_immediately(self):
        tracker = HealthTracker(failure_threshold=99)
        assert tracker.record_failure("java", permanent=True)
        assert not tracker.is_available("java")

    def test_cooldown_admits_half_open_probe(self):
        tracker = HealthTracker(cooldown_ms=100.0)
        tracker.quarantine("java")
        assert not tracker.is_available("java")
        tracker.advance(99.0)
        assert not tracker.is_available("java")
        tracker.advance(1.0)
        assert tracker.state("java") == BREAKER_HALF_OPEN
        assert tracker.is_available("java")

    def test_half_open_success_closes(self):
        tracker = HealthTracker(cooldown_ms=10.0)
        tracker.quarantine("java")
        tracker.advance(10.0)
        assert tracker.state("java") == BREAKER_HALF_OPEN
        tracker.record_success("java")
        assert tracker.state("java") == BREAKER_CLOSED

    def test_half_open_failure_reopens_with_escalated_cooldown(self):
        tracker = HealthTracker(cooldown_ms=10.0, escalation=2.0)
        tracker.quarantine("java")  # next cooldown escalates to 20
        tracker.advance(10.0)
        assert tracker.state("java") == BREAKER_HALF_OPEN
        tracker.record_failure("java")
        assert tracker.state("java") == BREAKER_OPEN
        record = tracker.health("java")
        assert record.quarantined_until_ms == pytest.approx(
            tracker.clock_ms + 20.0
        )
        assert record.quarantines == 2

    def test_escalation_capped(self):
        tracker = HealthTracker(
            cooldown_ms=10.0, escalation=10.0, max_cooldown_ms=50.0
        )
        for _ in range(4):
            tracker.quarantine("java")
        assert tracker.health("java").next_cooldown_ms == 50.0

    def test_available_filters(self):
        tracker = HealthTracker()
        tracker.quarantine("spark")
        assert tracker.available(["java", "spark"]) == ["java"]

    def test_platforms_tracked_independently(self):
        tracker = HealthTracker(failure_threshold=1)
        tracker.record_failure("spark")
        assert not tracker.is_available("spark")
        assert tracker.is_available("java")


class TestFailureInjector:
    def test_legacy_budget_interface(self):
        injector = FailureInjector({0: 2})
        ordinal = injector.next_atom()
        with pytest.raises(TransientError):
            injector.check(ordinal)
        with pytest.raises(TransientError):
            injector.check(ordinal)
        injector.check(ordinal)  # budget exhausted: passes

    def test_down_platform_fails_forever(self):
        injector = FailureInjector(down_platforms={"java": 1})
        injector.check(injector.next_atom(), "java")  # ordinal 0: fine
        ordinal = injector.next_atom()
        for _ in range(5):
            with pytest.raises(PlatformDownError):
                injector.check(ordinal, "java")
        injector.check(ordinal, "spark")  # other platforms unaffected

    def test_probabilistic_rate_targets_platforms(self):
        injector = FailureInjector(
            seed=3, rate=1.0, target_platforms={"spark"}
        )
        injector.check(injector.next_atom(), "java")  # untargeted: passes
        with pytest.raises(TransientError):
            injector.check(injector.next_atom(), "spark")

    def test_custom_error_class(self):
        class MyError(ExecutionError):
            pass

        injector = FailureInjector({0: 1}, error_class=MyError)
        with pytest.raises(MyError):
            injector.check(injector.next_atom())

    def test_error_class_outside_taxonomy_rejected(self):
        with pytest.raises(TypeError):
            FailureInjector(error_class=ValueError)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            FailureInjector(rate=1.5)

    def test_slowdown_injection(self):
        injector = FailureInjector(slowdown_rate=1.0, slowdown_ms=42.0)
        assert injector.slowdown_for(0, "java") == 42.0
        assert ("slowdown" in {kind for (_, _, kind) in injector.log})

    def test_same_seed_same_config_identical_sequence(self):
        def run(seed):
            injector = FailureInjector(
                seed=seed, rate=0.4, slowdown_rate=0.3, slowdown_ms=5.0
            )
            for _ in range(40):
                ordinal = injector.next_atom()
                injector.slowdown_for(ordinal, "java")
                try:
                    injector.check(ordinal, "java")
                except ExecutionError:
                    pass
            return list(injector.log)

        first, second = run(11), run(11)
        assert first == second
        assert first  # the config above injects *something*
        assert run(12) != first  # and the seed matters


class TestRetryAccounting:
    """The retry counter counts retries, not failed attempts (the seed
    decremented it after the loop and emitted ATOM_RETRIED for the final,
    never-retried attempt)."""

    def _run(self, budget, max_retries):
        ctx = RheemContext(max_retries=max_retries)
        recorder = RecordingListener()
        ctx.executor.add_listener(recorder)
        runtime = RuntimeContext(
            failure_injector=FailureInjector({0: budget})
        )
        dq = ctx.collection(range(10)).map(lambda x: x + 1)
        from repro.core.logical.operators import CollectSink

        dq.plan.add(CollectSink(), [dq.operator])
        physical = ctx.app_optimizer.optimize(dq.plan)
        execution = ctx.task_optimizer.optimize(
            physical, forced_platform="java"
        )
        result = None
        error = None
        try:
            result = ctx.executor.execute(execution, runtime)
        except ExecutionError as exc:
            error = exc
        return result, error, recorder

    def test_exhausted_run_counts_only_real_retries(self):
        result, error, recorder = self._run(budget=99, max_retries=2)
        assert result is None and error is not None
        assert "failed after 3 attempts" in str(error)
        # 3 attempts happened, but only 2 were retries.
        assert recorder.count(ATOM_RETRIED) == 2

    def test_retry_event_payload(self):
        result, error, recorder = self._run(budget=1, max_retries=2)
        assert error is None
        assert result.metrics.retries == 1
        (event,) = [e for e in recorder.events if e.kind == ATOM_RETRIED]
        assert event.details["platform"] == "java"
        assert event.details["attempt"] == 1
        assert event.details["transient"] is True
        assert event.details["backoff_ms"] > 0

    def test_backoff_charged_to_ledger(self):
        result, _, _ = self._run(budget=2, max_retries=2)
        backoff = result.metrics.by_label_prefix("retry.backoff")
        assert backoff > 0
        assert result.metrics.backoff_ms == pytest.approx(backoff)

    def test_backoff_deterministic_across_runs(self):
        first, _, _ = self._run(budget=2, max_retries=2)
        second, _, _ = self._run(budget=2, max_retries=2)
        assert first.metrics.backoff_ms == second.metrics.backoff_ms


class TestUserErrorWrapping:
    def test_udf_type_error_becomes_execution_error(self):
        ctx = RheemContext(max_retries=0)
        dq = ctx.collection([1, 2, "three"]).map(lambda x: x + 1)
        from repro.core.logical.operators import CollectSink

        dq.plan.add(CollectSink(), [dq.operator])
        physical = ctx.app_optimizer.optimize(dq.plan)
        execution = ctx.task_optimizer.optimize(
            physical, forced_platform="java"
        )
        with pytest.raises(ExecutionError) as info:
            ctx.executor.execute(execution, RuntimeContext())
        message = str(info.value)
        assert "TypeError" in message
        assert "java" in message
        assert "atom #" in message

    def test_slowdown_charged_during_execution(self):
        ctx = RheemContext()
        runtime = RuntimeContext(
            failure_injector=FailureInjector(
                slowdown_rate=1.0, slowdown_ms=7.0
            )
        )
        dq = ctx.collection(range(5)).map(lambda x: x)
        from repro.core.logical.operators import CollectSink

        dq.plan.add(CollectSink(), [dq.operator])
        physical = ctx.app_optimizer.optimize(dq.plan)
        execution = ctx.task_optimizer.optimize(
            physical, forced_platform="java"
        )
        result = ctx.executor.execute(execution, runtime)
        assert result.metrics.by_label_prefix("inject.slowdown") > 0
