"""End-to-end smoke of the serving daemon over real HTTP.

The CI ``serve-smoke`` job runs exactly this file: boot the daemon,
drive a cold/warm submit pair, assert the warm run reports a
``plan_cache`` hit with zero enumeration spans, and shut down cleanly —
no leaked serving threads (checked here) and no leaked shared-memory
segments (the suite-wide autouse fixture).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.serving import ServingDaemon
from repro.core.serving.daemon import _ENUMERATION_SPANS

SPEC = {"workload": "wordcount", "seed": 11, "lines": 10, "width": 5}


def _get(url: str) -> tuple[int, str]:
    with urllib.request.urlopen(url) as response:
        return response.status, response.read().decode("utf-8")


def _post(url: str, data: bytes, tenant: str = "smoke") -> tuple[int, dict]:
    request = urllib.request.Request(
        url, data=data, headers={"X-Repro-Tenant": tenant}
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _submit(daemon: ServingDaemon, spec: dict) -> dict:
    status, body = _post(
        daemon.url + "/submit", json.dumps(spec).encode("utf-8")
    )
    assert status == 200, body
    return body


class TestServeSmoke:
    def test_cold_warm_pair_and_clean_shutdown(self):
        threads_before = set(threading.enumerate())
        with ServingDaemon(port=0) as daemon:
            status, body = _get(daemon.url + "/healthz")
            assert (status, body) == (200, "ok\n")

            cold = _submit(daemon, SPEC)
            assert cold["plan_cache"] == "miss"
            warm = _submit(daemon, SPEC)
            assert warm["plan_cache"] == "hit"
            # Byte-identical virtual time, zero enumeration work.
            assert warm["virtual_ms"] == cold["virtual_ms"]
            _, cold_full = _get(f"{daemon.url}/result/{cold['id']}")
            _, warm_full = _get(f"{daemon.url}/result/{warm['id']}")
            cold_full = json.loads(cold_full)
            warm_full = json.loads(warm_full)
            assert warm_full["rows"] == cold_full["rows"]
            assert warm_full["enumeration_spans"] == 0
            assert cold_full["enumeration_spans"] > 0
            assert not any(
                name in _ENUMERATION_SPANS for name in warm_full["spans"]
            )
            assert warm_full["ledger"][0][0] == "plan_cache.hit"

            status, text = _get(daemon.url + "/metrics")
            assert status == 200
            assert 'repro_serve_queries{plan_cache="hit"' in text
            run_info = [
                line for line in text.splitlines()
                if line.startswith("repro_run_info{")
            ]
            assert len(run_info) == 1, run_info

        # Clean shutdown: the acceptor thread is joined and no serving
        # thread outlives the daemon (handler threads are short-lived —
        # give them a moment to drain).
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            leftover = {
                t for t in set(threading.enumerate()) - threads_before
                if t.is_alive()
            }
            if not leftover:
                break
            time.sleep(0.05)
        assert not leftover, f"leaked serving threads: {leftover}"
        assert daemon._server is None and daemon._thread is None

    def test_http_error_paths(self):
        with ServingDaemon(port=0) as daemon:
            status, body = _post(daemon.url + "/submit", b"not json")
            assert status == 400 and "JSON" in body["error"]
            status, body = _post(daemon.url + "/submit", b'["a list"]')
            assert status == 400
            status, body = _post(
                daemon.url + "/submit", b'{"workload": "no-such"}'
            )
            assert status == 400 and "unknown workload" in body["error"]
            status, body = _post(
                daemon.url + "/submit",
                b'{"workload": "wordcount", "bogus": 1}',
            )
            assert status == 400 and "bad wordcount parameters" in body["error"]
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(daemon.url + "/status/q999")
            assert excinfo.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(daemon.url + "/nope")
            assert excinfo.value.code == 404

    def test_stop_is_idempotent_and_restartable(self):
        daemon = ServingDaemon(port=0)
        daemon.start()
        port_first = daemon.port
        assert port_first != 0
        daemon.stop()
        daemon.stop()  # idempotent
        daemon.start()
        try:
            status, _ = _get(daemon.url + "/healthz")
            assert status == 200
        finally:
            daemon.stop()
