"""Concurrency harness for the multi-tenant serving daemon.

N threads submit seeded wordcount/join/kmeans specs against one daemon,
each as its own tenant.  Per-query outputs, ``virtual_ms`` and ledger
sequences must be byte-identical to a direct :class:`RheemContext` run
of the same spec — at parallelism 1 and 4, in thread and process
execution modes — and per-tenant registry series must reconcile exactly
to the per-query records with no cross-tenant bleed.

Normalization: the daemon inserts a zero-ms ``plan_cache.hit`` ledger
marker on warm runs (0.0 + x == x, so the virtual total is untouched)
— those entries are filtered before comparing against the cold direct
run.  Atom ids come from a process-global counter, so they are
renumbered by first appearance on both sides; ``repr`` of the float ms
values is compared, which is exact to the last bit.
"""

from __future__ import annotations

import threading

import pytest

from repro import RheemContext
from repro.core.serving import ServingDaemon
from repro.core.serving.workloads import build_workload

SPECS = [
    {"workload": "wordcount", "seed": 5, "lines": 10, "width": 5},
    {"workload": "join", "seed": 2, "rows": 12},
    {"workload": "kmeans", "seed": 1, "points": 12, "k": 2, "iters": 2},
]

MATRIX = [
    pytest.param(1, "thread", id="thread-p1"),
    pytest.param(4, "thread", id="thread-p4"),
    pytest.param(1, "process", id="process-p1"),
    pytest.param(4, "process", id="process-p4"),
]


def direct_run(spec: dict, parallelism: int, mode: str):
    """One cold run of ``spec`` on a fresh context — the reference."""
    ctx = RheemContext(parallelism=parallelism, execution_mode=mode)
    rows, metrics = build_workload(ctx, dict(spec)).collect_with_metrics()
    ledger = [
        (e.label, repr(e.ms), e.platform, e.atom_id)
        for e in metrics.ledger.entries
    ]
    return {
        "rows": rows,
        "virtual_ms": metrics.virtual_ms,
        "ledger": _renumber(ledger),
        "atoms": metrics.atoms_executed,
    }


def _renumber(rows):
    """Renumber atom ids by first appearance (process-global counter)."""
    mapping: dict = {}
    out = []
    for label, ms, platform, atom_id in rows:
        if atom_id is not None:
            atom_id = mapping.setdefault(atom_id, len(mapping))
        out.append((label, ms, platform, atom_id))
    return out


def record_ledger(record):
    """A daemon record's ledger in the reference shape (cache markers
    dropped — they are the only entries a warm run adds)."""
    rows = [
        (label, repr(ms), platform, atom_id)
        for label, ms, platform, atom_id, _tenant in record.ledger
        if not (label.startswith("plan_cache.") and ms == 0.0)
    ]
    return _renumber(rows)


class TestServeConcurrency:
    @pytest.mark.parametrize("parallelism,mode", MATRIX)
    def test_byte_identity_under_concurrent_tenants(self, parallelism, mode):
        expected = {
            spec["workload"]: direct_run(spec, parallelism, mode)
            for spec in SPECS
        }
        daemon = ServingDaemon(parallelism=parallelism, execution_mode=mode)
        results: dict = {}
        errors: list[BaseException] = []

        def tenant_worker(tenant: str, spec: dict) -> None:
            try:
                results[tenant] = (
                    spec,
                    [daemon.submit(dict(spec), tenant=tenant)
                     for _ in range(2)],
                )
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(
                target=tenant_worker, args=(f"tenant-{i}", spec)
            )
            for i, spec in enumerate(SPECS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == len(SPECS)

        for tenant, (spec, records) in results.items():
            reference = expected[spec["workload"]]
            cold, warm = records
            assert cold.plan_cache == "miss"
            assert warm.plan_cache == "hit"
            assert warm.enumeration_spans == 0
            assert warm.ledger[0][0] == "plan_cache.hit"
            for record in records:
                assert record.status == "done"
                assert record.tenant == tenant
                # Byte-identical to the direct run, cold or warm.
                assert record.rows == reference["rows"]
                assert record.virtual_ms == reference["virtual_ms"]
                assert record_ledger(record) == reference["ledger"]
                # Every ledger entry is tagged with this tenant only.
                assert {row[4] for row in record.ledger} == {tenant}

        # Per-tenant registry series reconcile to the per-query records.
        serve = daemon.registry.counter("serve_queries")
        requests = daemon.registry.counter("plan_cache_requests")
        atoms = daemon.registry.counter("atoms_executed")
        for tenant, (spec, records) in results.items():
            workload = spec["workload"]
            assert serve.value(
                tenant=tenant, workload=workload, plan_cache="miss"
            ) == 1
            assert serve.value(
                tenant=tenant, workload=workload, plan_cache="hit"
            ) == 1
            assert requests.value(tenant=tenant, result="miss") == 1
            assert requests.value(tenant=tenant, result="hit") == 1
            reference = expected[workload]
            assert atoms.value(tenant=tenant) == 2 * reference["atoms"]

    def test_no_cross_tenant_metric_bleed(self):
        daemon = ServingDaemon()
        daemon.submit(dict(SPECS[0]), tenant="alpha")
        daemon.submit(dict(SPECS[0]), tenant="alpha")
        daemon.submit(dict(SPECS[1]), tenant="beta")

        serve = daemon.registry.counter("serve_queries")
        seen = {dict(key)["tenant"]: dict(key)["workload"]
                for key in serve.series}
        # alpha only ever ran wordcount, beta only join — no mixing.
        by_tenant: dict[str, set] = {}
        for key in serve.series:
            labels = dict(key)
            by_tenant.setdefault(labels["tenant"], set()).add(
                labels["workload"]
            )
        assert by_tenant == {"alpha": {"wordcount"}, "beta": {"join"}}
        assert seen.keys() == {"alpha", "beta"}

        # Every merged execution series carries a tenant label; the only
        # tenant-less series is the daemon's own run_info gauge.
        for name, metric in daemon.registry.snapshot().items():
            if name == "run_info":
                continue
            for label_repr in metric["series"]:
                assert "tenant=" in label_repr, (name, label_repr)

    def test_sessions_are_isolated_but_cache_is_shared(self):
        daemon = ServingDaemon()
        first = daemon.submit(dict(SPECS[0]), tenant="alpha")
        second = daemon.submit(dict(SPECS[0]), tenant="beta")
        # Distinct sessions (contexts) per tenant ...
        assert daemon.sessions.tenants() == ["alpha", "beta"]
        ctx_a = daemon.sessions.session("alpha").context
        ctx_b = daemon.sessions.session("beta").context
        assert ctx_a is not ctx_b
        assert ctx_a.plan_cache is ctx_b.plan_cache
        # ... sharing one plan cache: the fingerprint covers the data,
        # so beta's identical spec hits alpha's memoized plan.
        assert first.plan_cache == "miss"
        assert second.plan_cache == "hit"
        assert second.rows == first.rows
        assert second.virtual_ms == first.virtual_ms

    def test_admission_pool_is_shared_and_balanced(self):
        daemon = ServingDaemon(parallelism=4)
        for i, spec in enumerate(SPECS):
            daemon.submit(dict(spec), tenant=f"t{i}")
        snapshot = daemon.slot_pool.snapshot()
        assert snapshot, "sessions must register platforms on the pool"
        for name, state in snapshot.items():
            assert state["in_use"] == 0, (name, state)
            assert state["capacity"] >= 1
