"""Golden-file tests for the ``repro serve`` surface.

Freezes the user-facing contract of the daemon: the CLI help text and
the ``/status`` / ``/result`` JSON bodies.  Bodies are captured over
real HTTP, then normalised in-JSON (query id, wall/virtual timings,
per-entry ledger ms, atom-id renumbering — JSON numbers carry no ``ms``
suffix, so the text scrubbers cannot catch them) before the shared
:func:`~tests.core.test_explain_golden.scrub` pass.

Regenerate after an intentional change::

    REPRO_UPDATE_GOLDENS=1 python -m pytest tests/core/serving/test_serve_golden.py
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.cli import main
from repro.core.serving import ServingDaemon

from tests.core.test_explain_golden import assert_matches_golden

SPEC = {"workload": "wordcount", "seed": 7, "lines": 8, "width": 4}


def _normalize(payload: dict) -> str:
    """Stable rendering of a /status or /result body."""
    payload = json.loads(json.dumps(payload))  # deep copy via round-trip
    payload["id"] = "<ID>"
    for key in ("virtual_ms", "wall_ms"):
        if key in payload:
            payload[key] = "<T>"
    if "ledger" in payload:
        atom_ids: dict = {}
        for entry in payload["ledger"]:
            entry[1] = "<T>"
            if entry[3] is not None:
                entry[3] = atom_ids.setdefault(entry[3], len(atom_ids))
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _get_json(url: str) -> dict:
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read().decode("utf-8"))


def _post_json(url: str, body: dict, tenant: str) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode("utf-8"),
        headers={
            "Content-Type": "application/json",
            "X-Repro-Tenant": tenant,
        },
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read().decode("utf-8"))


class TestServeHelpGolden:
    def test_serve_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        assert_matches_golden("serve_help.txt", capsys.readouterr().out)


@pytest.fixture(scope="module")
def served_bodies():
    """One submit against a live daemon; both bodies captured over HTTP."""
    with ServingDaemon(port=0) as daemon:
        submitted = _post_json(daemon.url + "/submit", SPEC, tenant="golden")
        query_id = submitted["id"]
        status = _get_json(f"{daemon.url}/status/{query_id}")
        result = _get_json(f"{daemon.url}/result/{query_id}")
    return submitted, status, result


class TestServeBodyGoldens:
    # One golden per test: regeneration (REPRO_UPDATE_GOLDENS) skips a
    # test right after writing its golden, so bundling two goldens in
    # one test would leave the second forever unwritten.
    def test_status_body(self, served_bodies):
        submitted, status, _ = served_bodies
        # The submit response IS the status body (same summary()).
        assert submitted == status
        assert_matches_golden("serve_status.json.txt", _normalize(status))

    def test_result_body(self, served_bodies):
        _, _, result = served_bodies
        assert_matches_golden("serve_result.json.txt", _normalize(result))
