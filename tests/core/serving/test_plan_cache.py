"""Cache-semantics harness for the serving plan cache.

Two layers of guarantees are pinned here:

* the :class:`~repro.core.serving.plan_cache.PlanCache` container itself
  — LRU order, capacity bounds and thread-safety, checked property-style
  against a model ``OrderedDict``;
* the *key* semantics wired through :meth:`RheemContext.execute` — a
  repeat fingerprint hits, while flipping the calibration-store epoch or
  the executor config epoch always misses (a stale plan is never
  replayed, in either flip direction).
"""

from __future__ import annotations

import random
import threading
from collections import OrderedDict

import pytest

from repro import RheemContext
from repro.core.optimizer.calibration import CalibrationStore
from repro.core.optimizer.fingerprint import logical_plan_fingerprint
from repro.core.serving import PlanCache, plan_cache_key
from repro.core.serving.workloads import wordcount


class TestPlanCacheModel:
    """Randomized insert/hit/evict trace replayed against a model dict."""

    CAPACITY = 8
    KEYS = [f"k{i}" for i in range(24)]

    def _model_get(self, model: OrderedDict, key):
        if key in model:
            model.move_to_end(key)
            return model[key]
        return None

    def _model_put(self, model: OrderedDict, key, value) -> int:
        model[key] = value
        model.move_to_end(key)
        evicted = 0
        while len(model) > self.CAPACITY:
            model.popitem(last=False)
            evicted += 1
        return evicted

    def test_randomized_trace_matches_model(self):
        rng = random.Random(0xC0FFEE)
        cache = PlanCache(self.CAPACITY)
        model: OrderedDict = OrderedDict()
        hits = misses = evictions = 0
        for step in range(600):
            key = rng.choice(self.KEYS)
            if rng.random() < 0.5:
                value = ("plan", key, step)
                cache.put(key, value)
                evictions += self._model_put(model, key, value)
            else:
                got = cache.get(key)
                want = self._model_get(model, key)
                assert got == want
                if want is None:
                    misses += 1
                else:
                    hits += 1
            # LRU order (least-recent first) must match the model exactly.
            assert cache.keys() == list(model)
            assert len(cache) == len(model) <= self.CAPACITY
        stats = cache.stats()
        assert stats["hits"] == hits
        assert stats["misses"] == misses
        assert stats["evictions"] == evictions

    def test_get_refreshes_recency(self):
        cache = PlanCache(3)
        for key in ("a", "b", "c"):
            cache.put(key, key.upper())
        assert cache.get("a") == "A"
        cache.put("d", "D")  # evicts b, the true LRU — not a
        assert "a" in cache and "d" in cache
        assert "b" not in cache
        assert cache.keys() == ["c", "a", "d"]

    def test_put_overwrites_without_growth(self):
        cache = PlanCache(2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1
        assert cache.get("a") == 2
        assert cache.stats()["evictions"] == 0

    def test_capacity_is_validated(self):
        with pytest.raises(ValueError):
            PlanCache(0)

    def test_clear_empties_but_keeps_counters(self):
        cache = PlanCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        cache.clear()
        assert len(cache) == 0
        assert "a" not in cache
        assert cache.stats()["hits"] == 1


class TestPlanCacheThreadSafety:
    def test_concurrent_hits_and_puts_stay_bounded(self):
        cache = PlanCache(16)
        keys = [f"k{i}" for i in range(32)]
        for key in keys[:16]:
            cache.put(key, key)
        errors: list[BaseException] = []

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            try:
                for _ in range(300):
                    key = rng.choice(keys)
                    if rng.random() < 0.4:
                        cache.put(key, key)
                    else:
                        got = cache.get(key)
                        assert got in (None, key)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 16
        assert len(cache.keys()) == len(cache)
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] > 0

    def test_concurrent_hits_on_one_key_all_succeed(self):
        cache = PlanCache(4)
        cache.put("hot", "plan")
        results: list = []

        def reader() -> None:
            for _ in range(200):
                results.append(cache.get("hot"))

        threads = [threading.Thread(target=reader) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results and all(value == "plan" for value in results)
        assert cache.stats()["hits"] == len(results)


class TestCacheKeyComposition:
    def test_every_component_flips_the_key(self):
        base = plan_cache_key("fp", "java", 0, "epoch-a")
        assert plan_cache_key("fp2", "java", 0, "epoch-a") != base
        assert plan_cache_key("fp", "spark", 0, "epoch-a") != base
        assert plan_cache_key("fp", "java", 1, "epoch-a") != base
        assert plan_cache_key("fp", "java", 0, "epoch-b") != base
        assert plan_cache_key("fp", "java", 0, "epoch-a") == base

    def test_fingerprint_tracks_data_and_shape(self):
        ctx = RheemContext()
        fp_a = logical_plan_fingerprint(wordcount(ctx, seed=3).plan)
        fp_same = logical_plan_fingerprint(wordcount(ctx, seed=3).plan)
        fp_data = logical_plan_fingerprint(wordcount(ctx, seed=4).plan)
        fp_shape = logical_plan_fingerprint(wordcount(ctx, seed=3, chain=1).plan)
        assert fp_a == fp_same  # operator ids are excluded
        assert fp_a != fp_data
        assert fp_a != fp_shape


class TestEpochInvalidation:
    """Epoch flips always miss; a flip never resurrects a stale plan."""

    def _run(self, ctx):
        return ctx.execute(wordcount(ctx, seed=5, lines=8, width=4).plan)

    def test_calibration_epoch_flip_is_a_miss_never_stale(self):
        ctx = RheemContext()
        ctx.plan_cache = PlanCache(8)
        assert self._run(ctx).plan_cache == "miss"
        assert self._run(ctx).plan_cache == "hit"

        # Attaching a cold store keeps epoch == 0, the no-store value:
        # nothing that influenced enumeration moved, so still a hit.
        store = CalibrationStore()
        ctx.calibration = store
        assert store.epoch == 0
        assert self._run(ctx).plan_cache == "hit"

        # Priors moved -> epoch bumped -> the memoized plan is stale.
        assert store.observe("map", "java", estimated=10.0, observed=40.0)
        assert store.epoch == 1
        assert self._run(ctx).plan_cache == "miss"
        assert self._run(ctx).plan_cache == "hit"

        # reset() is also an epoch flip, and it must *not* flip back to
        # a key that would resurrect the epoch-1 plan.
        store.reset()
        assert store.epoch == 2
        assert self._run(ctx).plan_cache == "miss"
        # Three distinct epochs -> three distinct cache entries.
        assert len(ctx.plan_cache) == 3

    def test_restore_bumps_the_epoch(self):
        store = CalibrationStore()
        store.observe("map", "java", estimated=10.0, observed=40.0)
        snapshot = store.snapshot()
        epoch_before = store.epoch
        store.restore(snapshot)
        assert store.epoch == epoch_before + 1

    def test_config_epoch_partitions_the_cache(self):
        shared = PlanCache(8)
        ctx_row = RheemContext(columnar=False)
        ctx_col = RheemContext(columnar=True)
        ctx_row.plan_cache = shared
        ctx_col.plan_cache = shared
        assert (
            ctx_row.executor._config_epoch() != ctx_col.executor._config_epoch()
        )
        assert self._run(ctx_row).plan_cache == "miss"
        assert self._run(ctx_row).plan_cache == "hit"
        # Same fingerprint, different config epoch: never a cross-hit.
        assert self._run(ctx_col).plan_cache == "miss"
        assert self._run(ctx_col).plan_cache == "hit"
        assert len(shared) == 2

    def test_forced_platform_partitions_the_cache(self):
        ctx = RheemContext()
        ctx.plan_cache = PlanCache(8)
        plan = wordcount(ctx, seed=5, lines=8, width=4).plan
        assert ctx.execute(plan, platform="java").plan_cache == "miss"
        assert ctx.execute(plan, platform="java").plan_cache == "hit"
        assert ctx.execute(plan, platform="spark").plan_cache == "miss"
        assert len(ctx.plan_cache) == 2
