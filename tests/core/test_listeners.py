"""Tests for Executor monitoring listeners."""

import io

import pytest

from repro import FailureInjector, RheemContext
from repro.core.listeners import (
    ATOM_FINISHED,
    ATOM_RETRIED,
    ATOM_STARTED,
    EXECUTION_FINISHED,
    EXECUTION_STARTED,
    LOOP_ITERATION,
    ConsoleProgressListener,
    ExecutionEvent,
    ExecutionListener,
    RecordingListener,
    VirtualBudgetListener,
)
from repro.errors import ExecutionError


@pytest.fixture()
def listening_ctx():
    ctx = RheemContext()
    recorder = RecordingListener()
    ctx.executor.add_listener(recorder)
    return ctx, recorder


class TestEventStream:
    def test_simple_plan_event_sequence(self, listening_ctx):
        ctx, recorder = listening_ctx
        ctx.collection(range(5)).map(lambda x: x).collect(platform="java")
        kinds = recorder.kinds()
        assert kinds[0] == EXECUTION_STARTED
        assert kinds[-1] == EXECUTION_FINISHED
        assert ATOM_STARTED in kinds and ATOM_FINISHED in kinds

    def test_atom_events_carry_platform(self, listening_ctx):
        ctx, recorder = listening_ctx
        ctx.collection([1]).collect(platform="spark")
        started = [e for e in recorder.events if e.kind == ATOM_STARTED]
        assert all(e.details["platform"] == "spark" for e in started)

    def test_finish_event_totals(self, listening_ctx):
        ctx, recorder = listening_ctx
        _, metrics = ctx.collection(range(10)).collect_with_metrics(platform="java")
        finish = recorder.events[-1]
        assert finish.details["virtual_ms"] == pytest.approx(metrics.virtual_ms)
        assert finish.details["atoms_executed"] == metrics.atoms_executed

    def test_retry_events(self):
        ctx = RheemContext(failure_injector=FailureInjector({0: 1}))
        recorder = RecordingListener()
        ctx.executor.add_listener(recorder)
        ctx.collection([1]).collect(platform="java")
        assert recorder.count(ATOM_RETRIED) == 1
        retry = next(e for e in recorder.events if e.kind == ATOM_RETRIED)
        assert "injected failure" in retry.details["error"]

    def test_loop_iteration_events(self, listening_ctx):
        ctx, recorder = listening_ctx
        ctx.collection([0]).repeat(4, lambda dq: dq.map(lambda x: x + 1)).collect(
            platform="java"
        )
        assert recorder.count(LOOP_ITERATION) == 4
        last = [e for e in recorder.events if e.kind == LOOP_ITERATION][-1]
        assert last.details["state_card"] == 1

    def test_multiple_listeners_all_notified(self):
        ctx = RheemContext()
        first, second = RecordingListener(), RecordingListener()
        ctx.executor.add_listener(first)
        ctx.executor.add_listener(second)
        ctx.collection([1]).collect(platform="java")
        assert first.kinds() == second.kinds()


class TestConsoleListener:
    def test_prints_one_line_per_event(self):
        buffer = io.StringIO()
        ctx = RheemContext()
        ctx.executor.add_listener(ConsoleProgressListener(stream=buffer))
        ctx.collection([1]).collect(platform="java")
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 4
        assert all(line.startswith("[rheem]") for line in lines)


class TestBudgetListener:
    def test_aborts_over_budget(self):
        ctx = RheemContext()
        ctx.executor.add_listener(VirtualBudgetListener(budget_ms=0.001))
        with pytest.raises(ExecutionError, match="virtual budget exceeded"):
            ctx.collection(range(100)).map(lambda x: x).collect(platform="java")

    def test_under_budget_passes(self):
        ctx = RheemContext()
        ctx.executor.add_listener(VirtualBudgetListener(budget_ms=1e9))
        out = ctx.collection(range(10)).collect(platform="java")
        assert out == list(range(10))


def test_event_str():
    event = ExecutionEvent(ATOM_STARTED, {"atom": 1, "platform": "java"})
    assert "atom=1" in str(event)
    assert "platform=java" in str(event)


class _BombListener(ExecutionListener):
    """Raises on the Nth event of a given kind (satellite regression
    guard: a listener blowing up mid-run must abort cleanly)."""

    def __init__(self, kind: str, after: int = 1):
        self.kind = kind
        self.after = after
        self.seen = 0

    def on_event(self, event: ExecutionEvent) -> None:
        if event.kind == self.kind:
            self.seen += 1
            if self.seen >= self.after:
                raise RuntimeError(f"listener bomb on {self.kind}")


class TestListenerErrorPropagation:
    """A listener raising mid-run aborts the execution cleanly: the
    error propagates undecorated, checkpoint state stays consistent and
    the HealthTracker is not left half-open."""

    def _execution(self, ctx):
        from repro.core.logical.operators import CollectSink

        dq = ctx.collection(range(40)).map(lambda x: x + 1).filter(
            lambda x: x % 2 == 0
        )
        dq.plan.add(CollectSink(), [dq.operator])
        physical = ctx.app_optimizer.optimize(dq.plan)
        return ctx.task_optimizer.optimize(physical, forced_platform="java")

    def test_listener_error_aborts_and_propagates(self):
        from repro import RheemContext

        ctx = RheemContext()
        bomb = _BombListener(ATOM_FINISHED)
        ctx.executor.add_listener(bomb)
        with pytest.raises(RuntimeError, match="listener bomb"):
            ctx.collection(range(10)).map(lambda x: x).collect()

    def test_executor_reusable_after_aborted_run(self):
        from repro import RheemContext

        ctx = RheemContext()
        bomb = _BombListener(ATOM_FINISHED)
        ctx.executor.add_listener(bomb)
        with pytest.raises(RuntimeError):
            ctx.collection(range(10)).map(lambda x: x).collect()
        ctx.executor.listeners.remove(bomb)
        assert ctx.collection(range(3)).map(lambda x: x * 2).collect() == [
            0, 2, 4,
        ]

    def test_health_tracker_not_left_half_open(self):
        from repro import RheemContext, RuntimeContext
        from repro.core.resilience import BREAKER_CLOSED

        ctx = RheemContext()
        ctx.executor.add_listener(_BombListener(ATOM_FINISHED))
        runtime = RuntimeContext()
        execution = self._execution(ctx)
        with pytest.raises(RuntimeError):
            ctx.executor.execute(execution, runtime)
        # The abort is not a platform failure: every breaker stays
        # closed and every platform stays available.
        for platform in ctx.platforms:
            assert runtime.health.state(platform.name) == BREAKER_CLOSED
            assert runtime.health.is_available(platform.name)
            assert runtime.health.health(platform.name).failures == 0

    def test_checkpoint_state_not_corrupted(self, tmp_path):
        from repro import CheckpointManager, RheemContext, RuntimeContext
        from repro.core.logical.operators import CollectSink
        from repro.storage import Catalog, LocalFsStore

        catalog = Catalog()
        catalog.register_store(LocalFsStore(root=str(tmp_path)))
        manager = CheckpointManager(catalog, "localfs", plan_key="bomb-test")

        ctx = RheemContext()
        # Two atoms via a union of two sources, forced to one platform.
        left = ctx.collection(range(20)).map(lambda x: x + 1)
        dq = left.union(ctx.collection(range(5)))
        dq.plan.add(CollectSink(), [dq.operator])
        physical = ctx.app_optimizer.optimize(dq.plan)
        execution = ctx.task_optimizer.optimize(
            physical, forced_platform="java"
        )
        if len(execution.atoms) < 2:
            pytest.skip("plan collapsed into one atom")

        bomb = _BombListener(ATOM_FINISHED, after=2)
        ctx.executor.add_listener(bomb)
        with pytest.raises(RuntimeError):
            ctx.executor.execute(
                execution, RuntimeContext(checkpoint=manager)
            )
        assert manager.saves >= 1  # completed atoms were persisted

        # Resume without the bomb: restores cleanly, result correct.
        ctx.executor.listeners.remove(bomb)
        resumed = ctx.executor.execute(
            execution, RuntimeContext(checkpoint=manager)
        )
        assert resumed.metrics.atoms_skipped >= 1
        expected = sorted([x + 1 for x in range(20)] + list(range(5)))
        assert sorted(resumed.single) == expected

    def test_bomb_on_started_aborts_before_any_work(self):
        from repro import RheemContext, RuntimeContext

        ctx = RheemContext()
        recording = RecordingListener()
        ctx.executor.add_listener(_BombListener(EXECUTION_STARTED))
        ctx.executor.add_listener(recording)
        with pytest.raises(RuntimeError):
            ctx.executor.execute(self._execution(ctx), RuntimeContext())
        assert recording.count(ATOM_FINISHED) == 0
