"""Tests for Executor monitoring listeners."""

import io

import pytest

from repro import FailureInjector, RheemContext
from repro.core.listeners import (
    ATOM_FINISHED,
    ATOM_RETRIED,
    ATOM_STARTED,
    EXECUTION_FINISHED,
    EXECUTION_STARTED,
    LOOP_ITERATION,
    ConsoleProgressListener,
    ExecutionEvent,
    RecordingListener,
    VirtualBudgetListener,
)
from repro.errors import ExecutionError


@pytest.fixture()
def listening_ctx():
    ctx = RheemContext()
    recorder = RecordingListener()
    ctx.executor.add_listener(recorder)
    return ctx, recorder


class TestEventStream:
    def test_simple_plan_event_sequence(self, listening_ctx):
        ctx, recorder = listening_ctx
        ctx.collection(range(5)).map(lambda x: x).collect(platform="java")
        kinds = recorder.kinds()
        assert kinds[0] == EXECUTION_STARTED
        assert kinds[-1] == EXECUTION_FINISHED
        assert ATOM_STARTED in kinds and ATOM_FINISHED in kinds

    def test_atom_events_carry_platform(self, listening_ctx):
        ctx, recorder = listening_ctx
        ctx.collection([1]).collect(platform="spark")
        started = [e for e in recorder.events if e.kind == ATOM_STARTED]
        assert all(e.details["platform"] == "spark" for e in started)

    def test_finish_event_totals(self, listening_ctx):
        ctx, recorder = listening_ctx
        _, metrics = ctx.collection(range(10)).collect_with_metrics(platform="java")
        finish = recorder.events[-1]
        assert finish.details["virtual_ms"] == pytest.approx(metrics.virtual_ms)
        assert finish.details["atoms_executed"] == metrics.atoms_executed

    def test_retry_events(self):
        ctx = RheemContext(failure_injector=FailureInjector({0: 1}))
        recorder = RecordingListener()
        ctx.executor.add_listener(recorder)
        ctx.collection([1]).collect(platform="java")
        assert recorder.count(ATOM_RETRIED) == 1
        retry = next(e for e in recorder.events if e.kind == ATOM_RETRIED)
        assert "injected failure" in retry.details["error"]

    def test_loop_iteration_events(self, listening_ctx):
        ctx, recorder = listening_ctx
        ctx.collection([0]).repeat(4, lambda dq: dq.map(lambda x: x + 1)).collect(
            platform="java"
        )
        assert recorder.count(LOOP_ITERATION) == 4
        last = [e for e in recorder.events if e.kind == LOOP_ITERATION][-1]
        assert last.details["state_card"] == 1

    def test_multiple_listeners_all_notified(self):
        ctx = RheemContext()
        first, second = RecordingListener(), RecordingListener()
        ctx.executor.add_listener(first)
        ctx.executor.add_listener(second)
        ctx.collection([1]).collect(platform="java")
        assert first.kinds() == second.kinds()


class TestConsoleListener:
    def test_prints_one_line_per_event(self):
        buffer = io.StringIO()
        ctx = RheemContext()
        ctx.executor.add_listener(ConsoleProgressListener(stream=buffer))
        ctx.collection([1]).collect(platform="java")
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 4
        assert all(line.startswith("[rheem]") for line in lines)


class TestBudgetListener:
    def test_aborts_over_budget(self):
        ctx = RheemContext()
        ctx.executor.add_listener(VirtualBudgetListener(budget_ms=0.001))
        with pytest.raises(ExecutionError, match="virtual budget exceeded"):
            ctx.collection(range(100)).map(lambda x: x).collect(platform="java")

    def test_under_budget_passes(self):
        ctx = RheemContext()
        ctx.executor.add_listener(VirtualBudgetListener(budget_ms=1e9))
        out = ctx.collection(range(10)).collect(platform="java")
        assert out == list(range(10))


def test_event_str():
    event = ExecutionEvent(ATOM_STARTED, {"atom": 1, "platform": "java"})
    assert "atom=1" in str(event)
    assert "platform=java" in str(event)
