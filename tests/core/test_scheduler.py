"""The concurrent DAG scheduler's determinism contract.

Whatever the parallelism, a run must produce byte-identical outputs, an
*identical* cost ledger (entry order included — ``virtual_ms`` is a
float sum), equivalent span trees (modulo ``worker``/``slot`` stamps)
and identical resilience behaviour under seeded fault injection.  On top
of that: ``makespan_ms <= virtual_ms`` always, and channel refcounting
must release intermediate hand-offs without ever touching a payload a
consumer still needs.
"""

import pytest

from repro import FailureInjector, RheemContext, RuntimeContext, Tracer
from repro.core.channels import CollectionChannel
from repro.core.executor import Executor
from repro.core.logical.operators import CollectionSource, CollectSink, Map
from repro.core.logical.plan import LogicalPlan
from repro.core.optimizer.application import ApplicationOptimizer
from repro.core.optimizer.enumerator import MultiPlatformOptimizer
from repro.core.scheduler import CriticalPath, atom_dependencies
from repro.errors import ExecutionError
from repro.platforms import JavaPlatform

PIPELINES = 6


def branching_execution():
    """PIPELINES independent source→map→sink pipelines (one atom each)."""
    plan = LogicalPlan()
    for p in range(PIPELINES):
        src = plan.add(CollectionSource(list(range(p * 10, p * 10 + 8))))
        mapped = plan.add(Map(lambda x, p=p: x * 3 + p), [src])
        plan.add(CollectSink(), [mapped])
    physical = ApplicationOptimizer().optimize(plan)
    return MultiPlatformOptimizer([JavaPlatform()]).optimize(physical)


def loop_execution(ctx):
    """Pre-stage, loop barrier, post-stage: a multi-atom chain."""
    dq = (
        ctx.collection(range(60))
        .map(lambda x: x + 1)
        .repeat(3, lambda s: s.map(lambda x: x * 2))
        .filter(lambda x: x % 3 != 0)
        .sort(lambda x: x)
    )
    dq.plan.add(CollectSink(), [dq.operator])
    physical = ctx.app_optimizer.optimize(dq.plan)
    return ctx.task_optimizer.optimize(physical, forced_platform="java")


def run(execution, parallelism, runtime=None, tracer=None, **executor_kw):
    runtime = runtime or RuntimeContext(tracer=tracer)
    return Executor(parallelism=parallelism, **executor_kw).execute(
        execution, runtime
    )


class TestIdenticalResultsAndBill:
    def test_outputs_and_virtual_ms_identical(self):
        execution = branching_execution()
        base = run(execution, 1)
        for parallelism in (2, 4, 8):
            result = run(execution, parallelism)
            assert result.outputs == base.outputs
            assert result.metrics.virtual_ms == base.metrics.virtual_ms

    def test_ledger_entries_identical_in_order(self):
        """Not just the total: the *entry sequence* matches sequential."""
        execution = branching_execution()
        entries = {}
        for parallelism in (1, 4):
            result = run(execution, parallelism)
            entries[parallelism] = [
                (e.label, e.ms, e.platform, e.atom_id)
                for e in result.metrics.ledger.entries
            ]
        assert entries[1] == entries[4]

    def test_counters_identical(self):
        execution = branching_execution()
        base = run(execution, 1).metrics
        wide = run(execution, 4).metrics
        assert wide.atoms_executed == base.atoms_executed
        assert wide.retries == base.retries
        assert wide.by_platform() == base.by_platform()

    def test_loop_plan_identical(self):
        ctx = RheemContext()
        execution = loop_execution(ctx)
        base = run(execution, 1)
        wide = run(execution, 4)
        assert wide.single == base.single
        assert wide.metrics.virtual_ms == base.metrics.virtual_ms
        assert wide.metrics.loop_iterations == base.metrics.loop_iterations


class TestMakespan:
    def test_makespan_at_most_virtual(self):
        execution = branching_execution()
        for parallelism in (1, 2, 4):
            metrics = run(execution, parallelism).metrics
            assert 0 < metrics.makespan_ms <= metrics.virtual_ms

    def test_makespan_strictly_below_virtual_on_branching_plan(self):
        """Independent pipelines overlap: the critical path is one
        pipeline, not the sum of all six."""
        metrics = run(branching_execution(), 4).metrics
        assert metrics.makespan_ms < metrics.virtual_ms

    def test_makespan_agrees_across_parallelism(self):
        execution = branching_execution()
        base = run(execution, 1).metrics.makespan_ms
        wide = run(execution, 4).metrics.makespan_ms
        assert wide == pytest.approx(base, rel=1e-9)

    def test_makespan_in_summary(self):
        metrics = run(branching_execution(), 4).metrics
        assert "makespan=" in metrics.summary()

    def test_sequential_chain_makespan_equals_atom_time(self):
        """A linear chain has no overlap: makespan == serialized path."""
        ctx = RheemContext()
        metrics = run(loop_execution(ctx), 4).metrics
        assert metrics.makespan_ms == pytest.approx(
            metrics.virtual_ms, rel=1e-9
        )


class TestSpanEquivalence:
    @staticmethod
    def _shape(tracer):
        """Span tree as comparable rows, dropping scheduler stamps."""
        by_id = {s.span_id: s for s in tracer.spans}
        rows = []
        for span in tracer.spans:
            parent = by_id.get(span.parent_id)
            attrs = {
                k: v for k, v in span.attributes.items()
                if k not in ("worker", "slot")
            }
            rows.append((
                span.name, span.kind,
                parent.name if parent else None,
                tuple(sorted((k, repr(v)) for k, v in attrs.items())),
                tuple(e.name for e in span.events),
            ))
        return sorted(rows)

    def test_span_tree_identical_modulo_worker_slot(self):
        execution = branching_execution()
        shapes = {}
        tracers = {}
        for parallelism in (1, 4):
            tracer = Tracer()
            run(execution, parallelism, tracer=tracer)
            shapes[parallelism] = self._shape(tracer)
            tracers[parallelism] = tracer
        assert shapes[1] == shapes[4]

    def test_parallel_atom_spans_carry_worker_and_slot(self):
        tracer = Tracer()
        run(branching_execution(), 4, tracer=tracer)
        atom_spans = [s for s in tracer.spans if s.name.startswith("atom#")]
        assert atom_spans
        for span in atom_spans:
            assert isinstance(span.attributes.get("worker"), int)
            assert isinstance(span.attributes.get("slot"), int)

    def test_virtual_clock_reconciles_with_ledger(self):
        tracer = Tracer()
        result = run(branching_execution(), 4, tracer=tracer)
        assert tracer.total_virtual_ms() == pytest.approx(
            result.metrics.virtual_ms
        )


class TestFaultInjectionSweep:
    """Seeded fault injection must be schedule-free: any parallelism
    sees exactly the failures, retries and (if it comes to it) the
    terminal error a sequential run sees."""

    @staticmethod
    def _outcome(execution, parallelism, injector_config, **executor_kw):
        runtime = RuntimeContext(
            failure_injector=FailureInjector(**injector_config)
        )
        try:
            result = Executor(
                parallelism=parallelism, max_retries=2, **executor_kw
            ).execute(execution, runtime)
        except ExecutionError as error:
            return ("error", type(error).__name__, str(error))
        return (
            "ok", result.outputs, result.metrics.virtual_ms,
            result.metrics.retries,
        )

    def test_transient_failure_at_every_position(self):
        execution = branching_execution()
        reference = run(execution, 1)
        total = reference.metrics.atoms_executed
        for position in range(total):
            result = run(
                execution, 4,
                runtime=RuntimeContext(
                    failure_injector=FailureInjector({position: 1})
                ),
            )
            assert result.outputs == reference.outputs, position
            assert result.metrics.retries == 1, position

    @pytest.mark.parametrize("seed", range(6))
    def test_probabilistic_sweep_identical_outcomes(self, seed):
        execution = branching_execution()
        config = dict(rate=0.3, seed=seed)
        sequential = self._outcome(execution, 1, config)
        concurrent = self._outcome(execution, 4, config)
        assert concurrent == sequential

    @pytest.mark.parametrize("seed", range(4))
    def test_straggler_sweep_identical_bill(self, seed):
        execution = branching_execution()
        config = dict(slowdown_rate=0.5, slowdown_ms=7.0, seed=seed)
        sequential = self._outcome(execution, 1, config)
        concurrent = self._outcome(execution, 4, config)
        assert concurrent == sequential
        assert sequential[0] == "ok"

    def test_loop_plan_fault_sweep(self):
        ctx = RheemContext()
        execution = loop_execution(ctx)
        for seed in range(3):
            config = dict(rate=0.25, seed=seed)
            sequential = self._outcome(execution, 1, config)
            concurrent = self._outcome(execution, 4, config)
            assert concurrent == sequential, seed


class TestFailoverUnderParallelism:
    def _ctx(self, parallelism):
        return RheemContext(
            failover=True, max_retries=1, parallelism=parallelism
        )

    def _run(self, parallelism):
        ctx = self._ctx(parallelism)
        execution = loop_execution(ctx)
        runtime = RuntimeContext(
            failure_injector=FailureInjector(down_platforms={"java": 1})
        )
        return ctx.executor.execute(execution, runtime), runtime

    def test_failover_results_match_sequential(self):
        sequential, _ = self._run(1)
        concurrent, _ = self._run(4)
        assert concurrent.single == sequential.single
        assert (
            concurrent.metrics.virtual_ms == sequential.metrics.virtual_ms
        )
        assert concurrent.metrics.failovers == sequential.metrics.failovers
        assert (
            concurrent.metrics.quarantines
            == sequential.metrics.quarantines
        )
        assert concurrent.metrics.failovers >= 1

    def test_multi_sink_failover_discards_speculative_work(self):
        """Every branch lands on the surviving platform with identical
        outputs even though speculative java executions get rolled
        back mid-run."""
        plan = LogicalPlan()
        for p in range(4):
            src = plan.add(CollectionSource(list(range(20))))
            mapped = plan.add(Map(lambda x, p=p: x + p), [src])
            plan.add(CollectSink(), [mapped])
        results = {}
        for parallelism in (1, 4):
            ctx = RheemContext(
                failover=True, max_retries=1, parallelism=parallelism
            )
            physical = ctx.app_optimizer.optimize(plan)
            execution = ctx.task_optimizer.optimize(
                physical, forced_platform="java"
            )
            runtime = RuntimeContext(
                failure_injector=FailureInjector(down_platforms={"java": 2})
            )
            results[parallelism] = ctx.executor.execute(execution, runtime)
        # Each parallelism re-optimizes (sink ids differ); compare values.
        assert sorted(results[4].outputs.values()) == sorted(
            results[1].outputs.values()
        )
        assert (
            results[4].metrics.virtual_ms == results[1].metrics.virtual_ms
        )


class TestChannelRefcounting:
    def _spy(self, monkeypatch):
        released = []
        original = CollectionChannel.release

        def recording(channel):
            released.append(channel)
            original(channel)

        monkeypatch.setattr(CollectionChannel, "release", recording)
        return released

    def test_intermediate_channels_released(self, monkeypatch):
        released = self._spy(monkeypatch)
        ctx = RheemContext()
        execution = loop_execution(ctx)
        reference = run(execution, 1).single
        result = run(execution, 4)
        assert result.single == reference
        assert released, "no intermediate channel was released"

    def test_failover_mode_disables_refcounting(self, monkeypatch):
        released = self._spy(monkeypatch)
        ctx = RheemContext(failover=True, parallelism=4)
        execution = loop_execution(ctx)
        ctx.executor.execute(execution, RuntimeContext())
        assert released == []


class TestChannelUnit:
    def test_owned_list_adopted_without_copy(self):
        payload = [1, 2, 3]
        channel = CollectionChannel(payload, "java", owned=True)
        assert channel.data is payload

    def test_unowned_sequences_copied(self):
        payload = [1, 2, 3]
        assert CollectionChannel(payload, "java").data is not payload
        assert CollectionChannel((1, 2), "java", owned=True).data == [1, 2]

    def test_release_keeps_cardinality_and_blocks_reads(self):
        channel = CollectionChannel([1, 2, 3], "java")
        channel.release()
        channel.release()  # idempotent
        assert channel.released
        assert len(channel) == 3
        assert channel.cardinality == 3
        with pytest.raises(ExecutionError, match="released"):
            channel.require_data()


class TestCriticalPathUnit:
    class _FakeAtom:
        def __init__(self, inputs, outputs):
            self.external_inputs = {i: op for i, op in enumerate(inputs)}
            self.output_ids = list(outputs)

    def test_diamond_critical_path(self):
        cpath = CriticalPath()
        source = self._FakeAtom([], [1])
        left = self._FakeAtom([1], [2])
        right = self._FakeAtom([1], [3])
        join = self._FakeAtom([2, 3], [4])
        cpath.record(source, 10.0)
        cpath.record(left, 5.0)
        cpath.record(right, 20.0)
        cpath.record(join, 1.0)
        # 10 + max(5, 20) + 1
        assert cpath.makespan_ms == pytest.approx(31.0)
        assert cpath.accounted_ms == pytest.approx(36.0)

    def test_overhead_serializes_before_atoms(self):
        cpath = CriticalPath()
        cpath.sync_overhead(4.0)  # e.g. platform startup
        atom = self._FakeAtom([], [1])
        cpath.record(atom, 6.0)
        assert cpath.makespan_ms == pytest.approx(10.0)

    def test_atom_dependencies_task(self):
        atom = self._FakeAtom([7, 9], [11])
        assert atom_dependencies(atom) == {7, 9}


class TestParallelismConfig:
    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLELISM", "4")
        assert Executor().parallelism == 4
        monkeypatch.setenv("REPRO_PARALLELISM", "junk")
        assert Executor().parallelism == 1

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLELISM", "8")
        assert Executor(parallelism=2).parallelism == 2

    def test_floor_of_one(self):
        assert Executor(parallelism=0).parallelism == 1

    def test_context_passes_parallelism_through(self):
        ctx = RheemContext(parallelism=4)
        assert ctx.executor.parallelism == 4
