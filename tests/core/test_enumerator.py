"""Tests for the multi-platform task optimizer (enumerator)."""

import pytest

from repro.core.logical.operators import (
    CollectionSource,
    CollectSink,
    FlatMap,
    GroupBy,
    LoopInput,
    Map,
    Repeat,
)
from repro.core.logical.plan import LogicalPlan
from repro.core.execution.plan import LoopAtom, TaskAtom
from repro.core.optimizer.application import ApplicationOptimizer
from repro.core.optimizer.cost import FreeMovementCostModel, MovementCostModel
from repro.core.optimizer.enumerator import MultiPlatformOptimizer
from repro.core.physical.operators import PHashGroupBy, PSortGroupBy
from repro.errors import OptimizationError
from repro.platforms import JavaPlatform, PostgresPlatform, SparkPlatform


def physical_for(logical_plan):
    return ApplicationOptimizer().optimize(logical_plan)


def simple_plan(n=100):
    plan = LogicalPlan()
    src = plan.add(CollectionSource(list(range(n))))
    mapped = plan.add(Map(lambda x: x * 2), [src])
    plan.add(CollectSink(), [mapped])
    return plan


def loop_plan(times=3):
    body = LogicalPlan()
    loop_in = body.add(LoopInput())
    out = body.add(Map(lambda x: x + 1), [loop_in])
    repeat = Repeat(body, loop_in, out, times=times)
    plan = LogicalPlan()
    src = plan.add(CollectionSource([0]))
    rep = plan.add(repeat, [src])
    plan.add(CollectSink(), [rep])
    return plan


@pytest.fixture()
def platforms():
    return [JavaPlatform(), SparkPlatform(), PostgresPlatform()]


class TestAssignment:
    def test_small_plan_prefers_cheap_startup(self, platforms):
        optimizer = MultiPlatformOptimizer(platforms)
        execution = optimizer.optimize(physical_for(simple_plan(10)))
        names = {atom.platform.name for atom in execution.atoms}
        assert "spark" not in names  # 3s job startup never pays off here

    def test_forced_platform_pins_everything(self, platforms):
        optimizer = MultiPlatformOptimizer(platforms)
        execution = optimizer.optimize(
            physical_for(simple_plan()), forced_platform="spark"
        )
        assert {atom.platform.name for atom in execution.atoms} == {"spark"}

    def test_forced_unknown_platform(self, platforms):
        optimizer = MultiPlatformOptimizer(platforms)
        with pytest.raises(OptimizationError, match="unknown platform"):
            optimizer.optimize(physical_for(simple_plan()), forced_platform="flink")

    def test_forced_unsupporting_platform(self, platforms):
        plan = LogicalPlan()
        src = plan.add(CollectionSource([1]))
        fm = plan.add(FlatMap(lambda x: [x]), [src])
        plan.add(CollectSink(), [fm])
        optimizer = MultiPlatformOptimizer(platforms)
        with pytest.raises(OptimizationError, match="does not support"):
            optimizer.optimize(physical_for(plan), forced_platform="postgres")

    def test_no_platform_supports_operator(self):
        plan = LogicalPlan()
        src = plan.add(CollectionSource([1]))
        fm = plan.add(FlatMap(lambda x: [x]), [src])
        plan.add(CollectSink(), [fm])
        optimizer = MultiPlatformOptimizer([PostgresPlatform()])
        with pytest.raises(OptimizationError, match="no platform supports"):
            optimizer.optimize(physical_for(plan))

    def test_loops_pruned_from_non_iterative_platforms(self, platforms):
        optimizer = MultiPlatformOptimizer(platforms)
        execution = optimizer.optimize(physical_for(loop_plan()))
        loop_atoms = [a for a in execution.atoms if isinstance(a, LoopAtom)]
        assert len(loop_atoms) == 1
        assert loop_atoms[0].platform.name != "postgres"

    def test_loop_only_platform_postgres_fails(self):
        optimizer = MultiPlatformOptimizer([PostgresPlatform()])
        with pytest.raises(OptimizationError, match="no platform supports"):
            optimizer.optimize(physical_for(loop_plan()))

    def test_duplicate_platform_names_rejected(self):
        with pytest.raises(OptimizationError, match="duplicate"):
            MultiPlatformOptimizer([JavaPlatform(), JavaPlatform()])

    def test_empty_platform_list_rejected(self):
        with pytest.raises(OptimizationError, match="at least one"):
            MultiPlatformOptimizer([])


class TestVariants:
    def test_hash_groupby_chosen_by_default(self, platforms):
        plan = LogicalPlan()
        src = plan.add(CollectionSource(list(range(1000))))
        group = plan.add(GroupBy(lambda x: x % 7), [src])
        plan.add(CollectSink(), [group])
        physical = physical_for(plan)
        optimizer = MultiPlatformOptimizer(platforms)
        execution = optimizer.optimize(physical)
        kinds = {
            op.kind
            for atom in execution.atoms
            if isinstance(atom, TaskAtom)
            for op in atom.fragment
        }
        assert "groupby.hash" in kinds
        assert "groupby.sort" not in kinds
        # The committed variant replaced the node in the physical plan too.
        assert any(isinstance(op, PHashGroupBy) for op in physical.graph)
        assert not any(isinstance(op, PSortGroupBy) for op in physical.graph)


class TestAtomCutting:
    def test_single_platform_single_atom(self, platforms):
        optimizer = MultiPlatformOptimizer(platforms)
        execution = optimizer.optimize(
            physical_for(simple_plan()), forced_platform="java"
        )
        assert len(execution.atoms) == 1
        atom = execution.atoms[0]
        assert len(atom.fragment) == 3
        assert atom.external_inputs == {}

    def test_diamond_with_crossing_platforms_stays_acyclic(self):
        # src -> a(map) -> join ; src -> join  with a forced split would be
        # exercised through cost differences; here we at least verify the
        # cut handles diamonds on one platform.
        from repro.core.logical.operators import Union

        plan = LogicalPlan()
        src = plan.add(CollectionSource([1, 2, 3]))
        left = plan.add(Map(lambda x: x), [src])
        union = plan.add(Union(), [left, src])
        plan.add(CollectSink(), [union])
        optimizer = MultiPlatformOptimizer([JavaPlatform()])
        execution = optimizer.optimize(physical_for(plan))
        assert len(execution.atoms) >= 1
        # all operators covered exactly once
        covered = [
            op_id for atom in execution.atoms for op_id in atom.operator_ids
        ]
        assert len(covered) == len(set(covered)) == 4

    def test_loop_atom_structure(self, platforms):
        optimizer = MultiPlatformOptimizer(platforms)
        execution = optimizer.optimize(physical_for(loop_plan(times=5)))
        loop_atom = next(a for a in execution.atoms if isinstance(a, LoopAtom))
        assert loop_atom.repeat.times == 5
        assert len(loop_atom.body_plan.atoms) >= 1
        body_platforms = {a.platform.name for a in loop_atom.body_plan.atoms}
        assert body_platforms == {loop_atom.platform.name}

    def test_atoms_in_dependency_order(self, platforms):
        optimizer = MultiPlatformOptimizer(platforms)
        execution = optimizer.optimize(physical_for(loop_plan()))
        seen: set[int] = set()
        for atom in execution.atoms:
            if isinstance(atom, LoopAtom):
                assert atom.state_producer_id in seen or True
            seen.update(atom.operator_ids)
        assert len(seen) == 3  # source, repeat, sink


class TestCosts:
    def test_estimated_cost_positive_and_orderable(self, platforms):
        optimizer = MultiPlatformOptimizer(platforms)
        physical = physical_for(simple_plan(1000))
        java_cost = optimizer.estimated_plan_cost(physical, "java")
        spark_cost = optimizer.estimated_plan_cost(physical, "spark")
        assert 0 < java_cost < spark_cost

    def test_movement_model_changes_plans(self):
        """With free movement the optimizer may split platforms; with the
        real model the same tiny plan stays on one platform."""
        platforms = [JavaPlatform(), PostgresPlatform()]
        plan = physical_for(simple_plan(50))
        with_movement = MultiPlatformOptimizer(
            platforms, movement=MovementCostModel(per_transfer_ms=1000.0)
        )
        execution = with_movement.optimize(plan)
        names = {atom.platform.name for atom in execution.atoms}
        assert len(names) == 1

    def test_free_movement_model_is_zero(self):
        model = FreeMovementCostModel()
        java = JavaPlatform().cost_model
        spark = SparkPlatform().cost_model
        assert model.transfer_ms(java, spark, 1e6) == 0.0

    def test_loop_cost_scales_with_iterations(self, platforms):
        optimizer = MultiPlatformOptimizer(platforms)
        few = optimizer.estimated_plan_cost(physical_for(loop_plan(2)), "java")
        many = optimizer.estimated_plan_cost(physical_for(loop_plan(50)), "java")
        assert many > few


def test_explain_execution_plan(platforms):
    optimizer = MultiPlatformOptimizer(platforms)
    execution = optimizer.optimize(physical_for(simple_plan()))
    text = execution.explain()
    assert "atom#" in text
