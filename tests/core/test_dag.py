"""Unit tests for the shared operator-DAG machinery."""

import pytest

from repro.core.dag import OperatorGraph, OperatorNode, walk_down
from repro.errors import PlanError, ValidationError


class Src(OperatorNode):
    num_inputs = 0


class Unary(OperatorNode):
    num_inputs = 1


class Binary(OperatorNode):
    num_inputs = 2


def chain(*nodes):
    graph = OperatorGraph()
    previous = None
    for node in nodes:
        graph.add(node, [previous] if previous is not None else [])
        previous = node
    return graph


class TestConstruction:
    def test_add_and_inputs(self):
        src, op = Src(), Unary()
        graph = chain(src, op)
        assert graph.inputs_of(op) == (src,)
        assert graph.consumers_of(src) == (op,)

    def test_add_wrong_arity(self):
        graph = OperatorGraph()
        src = graph.add(Src())
        with pytest.raises(PlanError, match="expects 2"):
            graph.add(Binary(), [src])

    def test_add_twice_rejected(self):
        graph = OperatorGraph()
        src = graph.add(Src())
        with pytest.raises(PlanError, match="already added"):
            graph.add(src)

    def test_foreign_input_rejected(self):
        graph = OperatorGraph()
        with pytest.raises(PlanError, match="not part of this plan"):
            graph.add(Unary(), [Src()])

    def test_duplicate_producer_slots_allowed(self):
        graph = OperatorGraph()
        src = graph.add(Src())
        cross = graph.add(Binary(), [src, src])
        assert graph.inputs_of(cross) == (src, src)
        assert graph.topological_order() == [src, cross]

    def test_sources_and_sinks(self):
        src, mid, sink = Src(), Unary(), Unary()
        graph = chain(src, mid, sink)
        assert graph.sources == (src,)
        assert graph.sinks == (sink,)


class TestTraversal:
    def test_topological_order_diamond(self):
        graph = OperatorGraph()
        src = graph.add(Src())
        left = graph.add(Unary(), [src])
        right = graph.add(Unary(), [src])
        join = graph.add(Binary(), [left, right])
        order = graph.topological_order()
        assert order.index(src) < order.index(left) < order.index(join)
        assert order.index(src) < order.index(right) < order.index(join)

    def test_cycle_detected_after_surgery(self):
        src, a, b = Src(), Unary(), Unary()
        graph = chain(src, a, b)
        graph.replace_input(a, src, b)  # creates a <-> b cycle
        with pytest.raises(PlanError, match="cycle"):
            graph.topological_order()

    def test_walk_down_visits_descendants_once(self):
        graph = OperatorGraph()
        src = graph.add(Src())
        left = graph.add(Unary(), [src])
        right = graph.add(Unary(), [src])
        join = graph.add(Binary(), [left, right])
        visited = []
        walk_down(graph, src, visited.append)
        assert set(visited) == {src, left, right, join}
        assert len(visited) == 4


class TestValidation:
    def test_empty_plan_invalid(self):
        with pytest.raises(ValidationError, match="empty"):
            OperatorGraph().validate()

    def test_valid_chain(self):
        chain(Src(), Unary()).validate()

    def test_no_source_invalid(self):
        graph = OperatorGraph()
        src, op = Src(), Unary()
        graph.add(src)
        graph.add(op, [src])
        graph._operators.remove(src)  # simulate corruption
        del graph._inputs[src.id]
        with pytest.raises(ValidationError):
            graph.validate()


class TestSurgery:
    def test_replace_input(self):
        graph = OperatorGraph()
        a, b = graph.add(Src()), graph.add(Src())
        op = graph.add(Unary(), [a])
        graph.replace_input(op, a, b)
        assert graph.inputs_of(op) == (b,)

    def test_replace_input_missing(self):
        graph = OperatorGraph()
        a, b = graph.add(Src()), graph.add(Src())
        op = graph.add(Unary(), [a])
        with pytest.raises(PlanError):
            graph.replace_input(op, b, a)

    def test_insert_between(self):
        src, sink = Src(), Unary()
        graph = chain(src, sink)
        mid = Unary()
        graph.insert_between(src, sink, mid)
        assert graph.inputs_of(sink) == (mid,)
        assert graph.inputs_of(mid) == (src,)

    def test_remove_unary_splices(self):
        src, mid, sink = Src(), Unary(), Unary()
        graph = chain(src, mid, sink)
        graph.remove_unary(mid)
        assert graph.inputs_of(sink) == (src,)
        assert mid not in graph

    def test_remove_unary_rejects_sources(self):
        graph = OperatorGraph()
        src = graph.add(Src())
        with pytest.raises(PlanError):
            graph.remove_unary(src)

    def test_replace_node_transfers_wiring(self):
        src, old, sink = Src(), Unary(), Unary()
        graph = chain(src, old, sink)
        new = Unary()
        graph.replace_node(old, new)
        assert graph.inputs_of(new) == (src,)
        assert graph.inputs_of(sink) == (new,)
        assert old not in graph

    def test_replace_node_arity_mismatch(self):
        src, old = Src(), Unary()
        graph = chain(src, old)
        with pytest.raises(PlanError, match="arity"):
            graph.replace_node(old, Binary())

    def test_absorb_merges_disjoint_graphs(self):
        g1 = chain(Src(), Unary())
        src2 = Src()
        g2 = chain(src2)
        g1.absorb(g2)
        assert src2 in g1
        assert len(g1) == 3

    def test_absorb_rejects_overlap(self):
        src = Src()
        g1 = chain(src)
        g2 = OperatorGraph()
        g2._operators.append(src)
        g2._inputs[src.id] = []
        with pytest.raises(PlanError, match="both graphs"):
            g1.absorb(g2)

    def test_subgraph_keeps_internal_edges_only(self):
        src, a, b = Src(), Unary(), Unary()
        graph = chain(src, a, b)
        sub = graph.subgraph([a, b])
        assert sub.inputs_of(a) == ()  # external producer dropped
        assert sub.inputs_of(b) == (a,)


def test_explain_lists_all_operators():
    src, op = Src(), Unary()
    graph = chain(src, op)
    text = graph.explain()
    assert f"#{src.id}" in text and f"#{op.id}" in text
