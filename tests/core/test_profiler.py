"""Tests for the cost-model micro-profiler."""

import pytest

from repro import RheemContext
from repro.core.optimizer.profiler import CostProfiler
from repro.platforms import JavaPlatform


@pytest.fixture(scope="module")
def report():
    return CostProfiler(sizes=(1_000, 5_000)).profile()


class TestProfiling:
    def test_all_kinds_sampled(self, report):
        expected = {"map", "filter", "groupby.hash", "sort", "join.hash",
                    "distinct.hash"}
        assert expected <= set(report.samples)
        for samples in report.samples.values():
            assert len(samples) == 2  # one per size

    def test_per_unit_in_plausible_range(self, report):
        # Pure-Python per-tuple work on any modern machine: between one
        # nanosecond and one millisecond per abstract unit.
        per_unit = report.per_unit_ms()
        assert 1e-6 < per_unit < 1.0

    def test_per_kind_lookup(self, report):
        assert report.per_unit_ms("map") > 0
        with pytest.raises(ValueError):
            report.per_unit_ms("warpdrive")

    def test_summary_mentions_kinds(self, report):
        text = report.summary()
        assert "map" in text and "overall" in text


class TestCalibratedModel:
    def test_model_uses_measured_constant(self, report):
        model = CostProfiler(sizes=(1_000,)).calibrated_java_model(report)
        assert model.per_unit_ms == pytest.approx(report.per_unit_ms())

    def test_calibrated_platform_runs_plans(self, report):
        model = CostProfiler().calibrated_java_model(report)
        ctx = RheemContext(platforms=[JavaPlatform(cost_model=model)])
        out, metrics = (
            ctx.collection(range(5_000))
            .map(lambda x: x + 1)
            .collect_with_metrics()
        )
        assert out[:3] == [1, 2, 3]
        # virtual time now reflects this machine's measured speed
        assert metrics.virtual_ms > 0

    def test_virtual_tracks_wall_within_an_order_of_magnitude(self, report):
        """The whole point of calibration: virtual ≈ wall for the
        in-process platform (within a loose factor — the harness adds
        overhead the model does not capture)."""
        model = CostProfiler().calibrated_java_model(report)
        model.startup = 0.0
        ctx = RheemContext(platforms=[JavaPlatform(cost_model=model)])
        data = list(range(100_000))
        _, metrics = (
            ctx.collection(data)
            .map(lambda x: x * 3)
            .filter(lambda x: x % 2 == 0)
            .collect_with_metrics()
        )
        assert metrics.virtual_ms > 0
        ratio = metrics.wall_ms / metrics.virtual_ms
        assert 0.05 < ratio < 50.0
