"""Tests for checkpointed (resumable) execution."""

import pytest

from repro import FailureInjector, RheemContext, RuntimeContext
from repro.core.checkpoint import CheckpointManager, plan_fingerprint
from repro.core.logical.operators import CollectSink
from repro.errors import ExecutionError, StorageError
from repro.platforms import JavaPlatform, SparkPlatform
from repro.storage import Catalog, LocalFsStore


@pytest.fixture()
def catalog(tmp_path):
    catalog = Catalog()
    catalog.register_store(LocalFsStore(root=str(tmp_path)))
    return catalog


@pytest.fixture()
def manager(catalog):
    return CheckpointManager(catalog, "localfs", plan_key="test-plan")


def build_execution(ctx, *, cross_platform=False):
    """A two-atom plan (via a forced platform split) ending in a sink."""
    dq = ctx.collection(range(50)).map(lambda x: x * 2).filter(
        lambda x: x % 3 == 0
    )
    dq.plan.add(CollectSink(), [dq.operator])
    physical = ctx.app_optimizer.optimize(dq.plan)
    return ctx.task_optimizer.optimize(physical, forced_platform="java")


class TestCheckpointManager:
    def test_save_load_roundtrip(self, manager):
        manager.save(0, 0, [1, "two", (3,)])
        restored = manager.load(0, 0)
        assert restored is not None
        data, cost = restored
        assert data == [1, "two", (3,)]
        assert cost >= 0

    def test_missing_checkpoint_is_none(self, manager):
        assert manager.load(7, 0) is None
        assert not manager.has(7, 0)

    def test_clear_scoped_to_plan_key(self, catalog):
        first = CheckpointManager(catalog, "localfs", plan_key="a")
        second = CheckpointManager(catalog, "localfs", plan_key="b")
        first.save(0, 0, [1])
        second.save(0, 0, [2])
        assert first.clear() == 1
        assert second.load(0, 0)[0] == [2]

    def test_empty_plan_key_rejected(self, catalog):
        with pytest.raises(StorageError):
            CheckpointManager(catalog, "localfs", plan_key="")


class TestResumableExecution:
    def test_second_run_skips_everything(self, manager):
        ctx = RheemContext()
        execution = build_execution(ctx)
        first = ctx.executor.execute(execution, RuntimeContext(checkpoint=manager))
        second = ctx.executor.execute(execution, RuntimeContext(checkpoint=manager))
        assert second.single == first.single
        assert second.metrics.atoms_executed == 0
        assert second.metrics.atoms_skipped == len(execution.atoms)

    def test_restore_charges_virtual_time(self, manager):
        ctx = RheemContext()
        execution = build_execution(ctx)
        ctx.executor.execute(execution, RuntimeContext(checkpoint=manager))
        second = ctx.executor.execute(execution, RuntimeContext(checkpoint=manager))
        assert second.metrics.by_label_prefix("checkpoint.restore") > 0

    def test_failure_then_resume(self, manager):
        """An execution that dies mid-plan resumes past the finished atoms."""
        ctx = RheemContext(platforms=[JavaPlatform(), SparkPlatform()])
        # Two atoms: force a platform switch so the plan has >1 atom.
        left = ctx.collection(range(20)).map(lambda x: x + 1)
        dq = left.union(ctx.collection(range(5)))
        dq.plan.add(CollectSink(), [dq.operator])
        physical = ctx.app_optimizer.optimize(dq.plan)
        execution = ctx.task_optimizer.optimize(physical, forced_platform="java")
        if len(execution.atoms) < 2:
            pytest.skip("plan collapsed into one atom")

        # Fail the second atom unrecoverably on the first execution.
        injector = FailureInjector({1: 10})
        with pytest.raises(ExecutionError):
            ctx.executor.execute(
                execution,
                RuntimeContext(checkpoint=manager, failure_injector=injector),
            )
        assert manager.saves >= 1  # first atom was persisted

        resumed = ctx.executor.execute(
            execution, RuntimeContext(checkpoint=manager)
        )
        assert resumed.metrics.atoms_skipped >= 1
        reference_ctx = RheemContext(platforms=[JavaPlatform()])
        ref = (
            reference_ctx.collection(range(20)).map(lambda x: x + 1)
            .union(reference_ctx.collection(range(5)))
            .collect(platform="java")
        )
        assert sorted(resumed.single) == sorted(ref)

    def test_loop_atom_checkpointed_as_a_whole(self, manager):
        ctx = RheemContext()
        dq = ctx.collection([0]).repeat(5, lambda s: s.map(lambda x: x + 1))
        dq.plan.add(CollectSink(), [dq.operator])
        physical = ctx.app_optimizer.optimize(dq.plan)
        execution = ctx.task_optimizer.optimize(physical, forced_platform="java")
        first = ctx.executor.execute(execution, RuntimeContext(checkpoint=manager))
        second = ctx.executor.execute(execution, RuntimeContext(checkpoint=manager))
        assert first.single == second.single == [5]
        assert second.metrics.loop_iterations == 0  # loop skipped entirely

    def test_no_checkpoint_manager_means_no_saves(self, catalog):
        ctx = RheemContext()
        execution = build_execution(ctx)
        ctx.executor.execute(execution, RuntimeContext())
        assert not [
            n for n in catalog.dataset_names if n.startswith("__ckpt__")
        ]


class TestPlanFingerprint:
    def test_identical_plans_match_across_rebuilds(self):
        """The fingerprint is structural: rebuilding the same plan (with
        fresh, process-global operator ids) yields the same digest."""
        ctx = RheemContext()
        first = plan_fingerprint(build_execution(ctx))
        second = plan_fingerprint(build_execution(ctx))
        assert first == second

    def test_different_plans_differ(self):
        ctx = RheemContext()
        base = plan_fingerprint(build_execution(ctx))

        dq = ctx.collection(range(50)).map(lambda x: x * 2)  # no filter
        dq.plan.add(CollectSink(), [dq.operator])
        physical = ctx.app_optimizer.optimize(dq.plan)
        other = ctx.task_optimizer.optimize(physical, forced_platform="java")
        assert plan_fingerprint(other) != base

    def test_platform_assignment_included(self):
        ctx = RheemContext()
        dq = ctx.collection(range(50)).map(lambda x: x * 2)
        dq.plan.add(CollectSink(), [dq.operator])
        physical = ctx.app_optimizer.optimize(dq.plan)
        java = ctx.task_optimizer.optimize(physical, forced_platform="java")
        spark = ctx.task_optimizer.optimize(physical, forced_platform="spark")
        assert plan_fingerprint(java) != plan_fingerprint(spark)

    def test_loop_structure_included(self):
        def looped(times):
            ctx = RheemContext()
            dq = ctx.collection([0]).repeat(
                times, lambda s: s.map(lambda x: x + 1)
            )
            dq.plan.add(CollectSink(), [dq.operator])
            physical = ctx.app_optimizer.optimize(dq.plan)
            return ctx.task_optimizer.optimize(
                physical, forced_platform="java"
            )

        assert plan_fingerprint(looped(3)) != plan_fingerprint(looped(4))


class TestStalenessGuard:
    def test_matching_fingerprint_keeps_saves(self, manager):
        ctx = RheemContext()
        execution = build_execution(ctx)
        fingerprint = plan_fingerprint(execution)
        assert manager.ensure_fingerprint(fingerprint) is True
        manager.save(0, 0, [1, 2])
        assert manager.ensure_fingerprint(fingerprint) is True
        assert manager.has(0, 0)
        assert manager.stale_clears == 0

    def test_mismatch_clears_stale_saves(self, manager):
        manager.ensure_fingerprint("old-plan-shape")
        manager.save(0, 0, [1, 2])
        assert manager.ensure_fingerprint("new-plan-shape") is False
        assert manager.stale_clears == 1
        assert not manager.has(0, 0)
        # The new fingerprint is now the accepted one.
        assert manager.ensure_fingerprint("new-plan-shape") is True

    def test_executor_clears_checkpoints_of_changed_plan(self, manager):
        """Resuming a *different* plan under the same plan_key must not
        restore the old plan's atoms positionally."""
        ctx = RheemContext()
        execution = build_execution(ctx)
        ctx.executor.execute(execution, RuntimeContext(checkpoint=manager))
        assert manager.saves >= 1

        dq = ctx.collection(range(50)).map(lambda x: x * 3).filter(
            lambda x: x % 2 == 0
        )
        dq.plan.add(CollectSink(), [dq.operator])
        physical = ctx.app_optimizer.optimize(dq.plan)
        changed = ctx.task_optimizer.optimize(
            physical, forced_platform="java"
        )
        result = ctx.executor.execute(
            changed, RuntimeContext(checkpoint=manager)
        )
        assert manager.stale_clears == 1
        assert result.metrics.atoms_skipped == 0
        assert result.single == [
            x * 3 for x in range(50) if (x * 3) % 2 == 0
        ]

    def test_executor_reuses_saves_for_same_plan_shape(self, manager):
        ctx = RheemContext()
        execution = build_execution(ctx)
        ctx.executor.execute(execution, RuntimeContext(checkpoint=manager))
        rebuilt = build_execution(ctx)  # same shape, fresh operator ids
        second = ctx.executor.execute(
            rebuilt, RuntimeContext(checkpoint=manager)
        )
        assert manager.stale_clears == 0
        assert second.metrics.atoms_skipped == len(rebuilt.atoms)

    def test_same_fingerprint_different_epoch_clears(self, manager):
        """A checkpoint written under one execution config (say
        ``columnar=1``) must not be restored into a run with another —
        conversion charges and channel shapes would not line up."""
        assert manager.ensure_fingerprint("fp", epoch="epoch-a") is True
        manager.save(0, 0, [1, 2])
        assert manager.ensure_fingerprint("fp", epoch="epoch-b") is False
        assert manager.stale_clears == 1
        assert not manager.has(0, 0)
        assert manager.ensure_fingerprint("fp", epoch="epoch-b") is True

    def test_epochless_record_stale_against_epoch_aware_check(self, manager):
        # Pre-epoch checkpoints are unverifiable against a config epoch:
        # treated as stale rather than trusted.
        manager.ensure_fingerprint("fp")
        manager.save(0, 0, [1])
        assert manager.ensure_fingerprint("fp", epoch="e") is False
        assert not manager.has(0, 0)

    def test_executor_clears_checkpoints_on_config_epoch_flip(
        self, manager, monkeypatch
    ):
        ctx = RheemContext()
        execution = build_execution(ctx)
        first = ctx.executor.execute(
            execution, RuntimeContext(checkpoint=manager)
        )
        assert manager.saves >= 1

        monkeypatch.setenv("REPRO_NO_KERNELS", "1")
        second = ctx.executor.execute(
            execution, RuntimeContext(checkpoint=manager)
        )
        assert manager.stale_clears == 1
        assert second.metrics.atoms_skipped == 0
        assert second.single == first.single


class TestCorruptionDetection:
    def test_crc_mismatch_detected_on_load(self, manager):
        manager.save(0, 0, [1, 2, 3])
        # Tamper with the stored payload while keeping the stale guard.
        name = manager._dataset(0, 0)
        stored, _ = manager.catalog.read_dataset_with_cost(name)
        tampered = [stored[0]] + [999]
        manager.catalog.drop_dataset(name)
        manager.catalog.write_dataset(name, tampered, "localfs")

        with pytest.warns(RuntimeWarning, match="failed CRC validation"):
            assert manager.load(0, 0) is None
        assert manager.corrupt_detected == 1
        assert manager.restores == 0

    def test_guardless_payload_rejected(self, manager):
        # A payload without the CRC guard element is unverifiable.
        name = manager._dataset(0, 1)
        manager.catalog.write_dataset(name, [1, 2, 3], "localfs")
        with pytest.warns(RuntimeWarning, match="failed CRC validation"):
            assert manager.load(0, 1) is None
        assert manager.corrupt_detected == 1

    def test_executor_recomputes_past_corrupt_checkpoint(self, manager):
        """End-to-end: a corrupted checkpoint degrades to a recompute of
        that atom — never a crash, never a wrong answer."""
        ctx = RheemContext()
        execution = build_execution(ctx)
        first = ctx.executor.execute(
            execution, RuntimeContext(checkpoint=manager)
        )
        name = manager._dataset(0, 0)
        stored, _ = manager.catalog.read_dataset_with_cost(name)
        manager.catalog.drop_dataset(name)
        manager.catalog.write_dataset(
            name, [stored[0], "bogus"], "localfs"
        )

        with pytest.warns(RuntimeWarning, match="failed CRC validation"):
            second = ctx.executor.execute(
                execution, RuntimeContext(checkpoint=manager)
            )
        assert second.single == first.single
        assert manager.corrupt_detected >= 1
        assert second.metrics.atoms_executed >= 1  # the recompute

    def test_rediscovery_skips_unreadable_blob(self, catalog, tmp_path):
        """A blob that bit-rotted into unpicklability is ignored by
        rediscovery (fresh-process path) instead of aborting it."""
        manager = CheckpointManager(catalog, "localfs", plan_key="rot")
        manager.save(0, 0, [1, 2])
        store = catalog.store("localfs")
        path = manager._dataset(0, 0) + "/part-00000"
        blob, _ = store.get_blob(path)
        store.put_blob(path, b"\x80" + blob[:4])

        fresh_catalog = Catalog()
        fresh_catalog.register_store(LocalFsStore(root=str(tmp_path)))
        fresh = CheckpointManager(fresh_catalog, "localfs", plan_key="rot")
        assert fresh.load(0, 0) is None  # not adopted, not trusted
