"""Tests for cardinality estimation."""

import pytest

from repro.core.logical.operators import (
    CollectionSource,
    CollectSink,
    CostHints,
    Count,
    CrossProduct,
    Distinct,
    Filter,
    FlatMap,
    GroupBy,
    Join,
    Map,
    TextFileSource,
    Union,
)
from repro.core.logical.plan import LogicalPlan
from repro.core.optimizer.application import ApplicationOptimizer
from repro.core.optimizer.cardinality import CardinalityEstimator


def estimates_for(plan):
    physical = ApplicationOptimizer().optimize(plan)
    estimator = CardinalityEstimator()
    return physical, estimator.estimate_plan(physical)


def est_of(physical, estimates, kind):
    for op in physical.graph:
        if op.kind == kind:
            return estimates[op.id]
    raise AssertionError(f"no operator of kind {kind}")


def chain_plan(*ops):
    plan = LogicalPlan()
    prev = None
    for op in ops:
        inputs = [prev] if prev is not None else []
        plan.add(op, inputs)
        prev = op
    return plan


class TestSourceEstimates:
    def test_collection_source_exact(self):
        plan = chain_plan(CollectionSource(range(123)), CollectSink())
        physical, estimates = estimates_for(plan)
        assert est_of(physical, estimates, "source.collection") == 123

    def test_textfile_estimate_from_size(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("x" * 800)
        plan = chain_plan(TextFileSource(str(path)), CollectSink())
        physical, estimates = estimates_for(plan)
        assert est_of(physical, estimates, "source.textfile") == pytest.approx(10)

    def test_missing_textfile_default(self):
        plan = chain_plan(TextFileSource("/does/not/exist"), CollectSink())
        physical, estimates = estimates_for(plan)
        assert est_of(physical, estimates, "source.textfile") == 10_000


class TestOperatorEstimates:
    def test_map_preserves(self):
        plan = chain_plan(
            CollectionSource(range(100)), Map(lambda x: x), CollectSink()
        )
        physical, estimates = estimates_for(plan)
        assert est_of(physical, estimates, "map") == 100

    def test_filter_default_selectivity(self):
        plan = chain_plan(
            CollectionSource(range(100)), Filter(lambda x: True), CollectSink()
        )
        physical, estimates = estimates_for(plan)
        assert est_of(physical, estimates, "filter") == pytest.approx(25)

    def test_filter_hint_selectivity(self):
        plan = chain_plan(
            CollectionSource(range(100)),
            Filter(lambda x: True, hints=CostHints(selectivity=0.01)),
            CollectSink(),
        )
        physical, estimates = estimates_for(plan)
        assert est_of(physical, estimates, "filter") == pytest.approx(1)

    def test_flatmap_hint_output_factor(self):
        plan = chain_plan(
            CollectionSource(range(10)),
            FlatMap(lambda x: [x], hints=CostHints(output_factor=7)),
            CollectSink(),
        )
        physical, estimates = estimates_for(plan)
        assert est_of(physical, estimates, "flatmap") == pytest.approx(70)

    def test_groupby_fanout(self):
        plan = chain_plan(
            CollectionSource(range(1000)),
            GroupBy(lambda x: x, hints=CostHints(key_fanout=0.5)),
            CollectSink(),
        )
        physical, estimates = estimates_for(plan)
        assert est_of(physical, estimates, "groupby.hash") == pytest.approx(500)

    def test_count_is_one(self):
        plan = chain_plan(CollectionSource(range(10)), Count(), CollectSink())
        physical, estimates = estimates_for(plan)
        assert est_of(physical, estimates, "count") == 1

    def test_distinct_default(self):
        plan = chain_plan(CollectionSource(range(10)), Distinct(), CollectSink())
        physical, estimates = estimates_for(plan)
        assert est_of(physical, estimates, "distinct.hash") == pytest.approx(5)


class TestBinaryEstimates:
    def build_binary(self, op):
        plan = LogicalPlan()
        a = plan.add(CollectionSource(range(100)))
        b = plan.add(CollectionSource(range(50)))
        node = plan.add(op, [a, b])
        plan.add(CollectSink(), [node])
        return plan

    def test_cross_product(self):
        physical, estimates = estimates_for(self.build_binary(CrossProduct()))
        assert est_of(physical, estimates, "cross") == pytest.approx(5000)

    def test_union(self):
        physical, estimates = estimates_for(self.build_binary(Union()))
        assert est_of(physical, estimates, "union") == pytest.approx(150)

    def test_join_default_fk_style(self):
        physical, estimates = estimates_for(
            self.build_binary(Join(lambda x: x, lambda x: x))
        )
        assert est_of(physical, estimates, "join.hash") == pytest.approx(100)

    def test_join_hint_fanout(self):
        physical, estimates = estimates_for(
            self.build_binary(
                Join(lambda x: x, lambda x: x, hints=CostHints(key_fanout=0.001))
            )
        )
        assert est_of(physical, estimates, "join.hash") == pytest.approx(5)


def test_seeds_pin_estimates():
    plan = chain_plan(
        CollectionSource(range(100)), Map(lambda x: x), CollectSink()
    )
    physical = ApplicationOptimizer().optimize(plan)
    source = next(op for op in physical.graph if op.kind == "source.collection")
    estimates = CardinalityEstimator().estimate_plan(
        physical, seeds={source.id: 5.0}
    )
    map_op = next(op for op in physical.graph if op.kind == "map")
    assert estimates[map_op.id] == pytest.approx(5.0)
