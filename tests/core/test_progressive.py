"""Tests for progressive (adaptive) re-optimization."""

import pytest

from repro import CostHints
from repro.core.logical.operators import CollectSink
from repro.core.progressive import ProgressiveExecutor, _remainder_plan


def misestimated_loop_plan(ctx, rows=20_000, iterations=15):
    """A filter hinted as ultra-selective (but keeping everything) feeding
    an iterative tail: the initial platform choice for the loop is based
    on a cardinality that is wrong by four orders of magnitude."""
    dq = (
        ctx.collection(range(rows))
        .filter(lambda x: True, hints=CostHints(selectivity=0.0001))
        .repeat(
            iterations,
            lambda s: s.map(lambda x: x + 1, hints=CostHints(udf_load=10.0)),
        )
    )
    dq.plan.add(CollectSink(), [dq.operator])
    return ctx.app_optimizer.optimize(dq.plan)


class TestProgressiveExecution:
    def test_replans_on_gross_misestimate(self, ctx):
        progressive = ProgressiveExecutor(ctx.task_optimizer)
        result, replans = progressive.execute_progressively(
            misestimated_loop_plan(ctx)
        )
        assert replans >= 1
        assert len(result.single) == 20_000

    def test_results_match_non_adaptive(self, ctx):
        execution = ctx.task_optimizer.optimize(misestimated_loop_plan(ctx))
        plain = ctx.executor.execute(execution)
        progressive = ProgressiveExecutor(ctx.task_optimizer)
        adaptive, _ = progressive.execute_progressively(
            misestimated_loop_plan(ctx)
        )
        assert sorted(adaptive.single) == sorted(plain.single)

    def test_adaptive_cheaper_when_misplacement_is_costly(self, ctx):
        """At a scale where the iterative tail belongs on the cluster,
        placing it by the (wrong) estimate is expensive; the replan moves
        it and wins despite the replan charge."""
        big = lambda: misestimated_loop_plan(ctx, rows=40_000, iterations=25)  # noqa: E731
        execution = ctx.task_optimizer.optimize(big())
        plain = ctx.executor.execute(execution)
        progressive = ProgressiveExecutor(ctx.task_optimizer)
        adaptive, replans = progressive.execute_progressively(big())
        assert replans >= 1
        assert adaptive.metrics.virtual_ms < plain.metrics.virtual_ms
        # the replanned tail landed on a different platform
        assert set(adaptive.metrics.by_platform()) != set(
            plain.metrics.by_platform()
        )

    def test_accurate_estimates_no_replans(self, ctx):
        dq = ctx.collection(range(100)).map(lambda x: x + 1)
        dq.plan.add(CollectSink(), [dq.operator])
        physical = ctx.app_optimizer.optimize(dq.plan)
        progressive = ProgressiveExecutor(ctx.task_optimizer)
        result, replans = progressive.execute_progressively(physical)
        assert replans == 0
        assert result.single == list(range(1, 101))

    def test_max_replans_bounds_rounds(self, ctx):
        progressive = ProgressiveExecutor(ctx.task_optimizer, max_replans=0)
        result, replans = progressive.execute_progressively(
            misestimated_loop_plan(ctx)
        )
        assert replans == 0
        assert len(result.single) == 20_000

    def test_startup_charged_once_across_rounds(self, ctx):
        progressive = ProgressiveExecutor(ctx.task_optimizer)
        result, replans = progressive.execute_progressively(
            misestimated_loop_plan(ctx)
        )
        assert replans >= 1
        startups = [
            e for e in result.metrics.ledger.entries if e.label == "startup"
        ]
        platforms = [e.platform for e in startups]
        assert len(platforms) == len(set(platforms))

    def test_forced_platform_respected_across_replans(self, ctx):
        progressive = ProgressiveExecutor(ctx.task_optimizer)
        result, _ = progressive.execute_progressively(
            misestimated_loop_plan(ctx), forced_platform="java"
        )
        assert set(result.metrics.by_platform()) == {"java"}

    def test_context_convenience_api(self, ctx):
        dq = (
            ctx.collection(range(5_000))
            .filter(lambda x: True, hints=CostHints(selectivity=0.0001))
            .repeat(5, lambda s: s.map(lambda x: x + 1))
        )
        sink = CollectSink()
        dq.plan.add(sink, [dq.operator])
        result, replans = ctx.execute_adaptive(dq.plan)
        assert len(result.single) == 5_000
        assert replans >= 0


class TestRemainderPlan:
    def test_executed_producers_become_sources(self, ctx):
        dq = ctx.collection(range(10)).map(lambda x: x + 1).map(lambda x: -x)
        dq.plan.add(CollectSink(), [dq.operator])
        physical = ctx.app_optimizer.optimize(dq.plan)
        ops = physical.graph.topological_order()
        # pretend the source and the first map already ran
        executed = {ops[0].id, ops[1].id}
        from repro.core.channels import CollectionChannel

        channels = {ops[1].id: CollectionChannel(list(range(1, 11)), "java")}
        remainder = _remainder_plan(physical, executed, channels)
        kinds = [op.kind for op in remainder.graph.topological_order()]
        assert kinds[0] == "source.collection"
        assert len(remainder.graph) == len(ops) - 2 + 1
        remainder.validate()

    def test_missing_channel_raises(self, ctx):
        from repro.errors import ExecutionError

        dq = ctx.collection(range(3)).map(lambda x: x)
        dq.plan.add(CollectSink(), [dq.operator])
        physical = ctx.app_optimizer.optimize(dq.plan)
        ops = physical.graph.topological_order()
        with pytest.raises(ExecutionError, match="no channel"):
            _remainder_plan(physical, {ops[0].id}, {})
