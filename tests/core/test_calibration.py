"""CalibrationStore + CalibratedCardinalityEstimator unit suite.

The statistical-feedback harness's foundation layer: priors fold
correctly (counts, log-means, factor histograms), corrections come from
*raw* ratios (applied corrections divided back out, so learning is
stable run over run), snapshot/restore round-trips exactly, and the
``REPRO_NO_CALIBRATION`` kill switch silences every path.
"""

from __future__ import annotations

import json
import math

import pytest

from repro import CostHints, RheemContext
from repro.core.logical.operators import CollectSink
from repro.core.metrics import (
    MISESTIMATE_BUCKETS,
    CalibrationObservation,
    ExecutionMetrics,
)
from repro.core.observability.registry import MetricsRegistry
from repro.core.optimizer.calibration import (
    KILL_SWITCH,
    CalibrationStore,
    calibration_enabled,
)
from repro.core.optimizer.cardinality import (
    CalibratedCardinalityEstimator,
    CardinalityEstimator,
)


class TestKillSwitch:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv(KILL_SWITCH, raising=False)
        assert calibration_enabled()

    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_values_disable(self, monkeypatch, value):
        monkeypatch.setenv(KILL_SWITCH, value)
        assert not calibration_enabled()

    @pytest.mark.parametrize("value", ["", "0", "false", "off"])
    def test_falsy_values_keep_enabled(self, monkeypatch, value):
        monkeypatch.setenv(KILL_SWITCH, value)
        assert calibration_enabled()

    def test_read_per_call(self, monkeypatch):
        store = CalibrationStore()
        store.observe("filter", "java", estimated=10.0, observed=1000)
        monkeypatch.setenv(KILL_SWITCH, "1")
        assert store.correction("filter") == 1.0
        monkeypatch.delenv(KILL_SWITCH)
        assert store.correction("filter") == pytest.approx(100.0)


class TestStoreObservations:
    def test_observe_counts_and_correction(self):
        store = CalibrationStore()
        assert store.observe("filter", "java", estimated=10.0, observed=40)
        assert store.sample_count() == 1
        assert store.correction("filter") == pytest.approx(4.0)

    def test_correction_is_geometric_mean(self):
        store = CalibrationStore()
        store.observe("filter", "java", estimated=1.0, observed=4)
        store.observe("filter", "java", estimated=1.0, observed=16)
        # geo-mean of 4 and 16 is 8
        assert store.correction("filter") == pytest.approx(8.0)

    def test_under_estimates_pull_correction_down(self):
        store = CalibrationStore()
        store.observe("filter", "java", estimated=100.0, observed=25)
        assert store.correction("filter") == pytest.approx(0.25)

    def test_correction_pools_across_platforms(self):
        store = CalibrationStore()
        store.observe("filter", "java", estimated=1.0, observed=4)
        store.observe("filter", "spark", estimated=1.0, observed=16)
        assert store.correction("filter") == pytest.approx(8.0)
        assert store.correction("filter", "java") == pytest.approx(4.0)
        assert store.correction("filter", "spark") == pytest.approx(16.0)

    def test_unknown_kind_cold_start(self):
        store = CalibrationStore()
        assert store.correction("join.hash") == 1.0

    def test_min_samples_gate(self):
        store = CalibrationStore(min_samples=3)
        store.observe("filter", "java", estimated=1.0, observed=100)
        store.observe("filter", "java", estimated=1.0, observed=100)
        assert store.correction("filter") == 1.0  # 2 < 3: still cold
        store.observe("filter", "java", estimated=1.0, observed=100)
        assert store.correction("filter") == pytest.approx(100.0)

    def test_correction_clamped(self):
        store = CalibrationStore(max_correction=10.0)
        store.observe("filter", "java", estimated=1.0, observed=10_000)
        assert store.correction("filter") == pytest.approx(10.0)
        store2 = CalibrationStore(max_correction=10.0)
        store2.observe("filter", "java", estimated=10_000.0, observed=1)
        assert store2.correction("filter") == pytest.approx(0.1)

    def test_zero_sides_skipped(self):
        store = CalibrationStore()
        assert not store.observe("filter", "java", estimated=0.0, observed=5)
        assert not store.observe("filter", "java", estimated=5.0, observed=0)
        assert store.sample_count() == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="min_samples"):
            CalibrationStore(min_samples=0)
        with pytest.raises(ValueError, match="max_correction"):
            CalibrationStore(max_correction=0.5)

    def test_applied_correction_divided_back_out(self):
        """The anti-dilution property: feeding back a *corrected*
        estimate with its correction recorded must reproduce the raw
        bias, not wash it toward 1."""
        store = CalibrationStore()
        # run 1: raw estimate 2, observed 20000 -> raw ratio 1e4
        store.observe("filter", "java", estimated=2.0, observed=20_000)
        first = store.correction("filter")
        assert first == pytest.approx(10_000.0)
        # run 2: corrected estimate (2 * 1e4), observed 20000, residual 1
        store.observe(
            "filter", "java",
            estimated=2.0 * first, observed=20_000, correction=first,
        )
        # the learned correction is *stable*, not diluted to ~100
        assert store.correction("filter") == pytest.approx(10_000.0)

    def test_residual_factor_feeds_histogram(self):
        store = CalibrationStore()
        store.observe(
            "filter", "java", estimated=20_000.0, observed=20_000,
            correction=10_000.0,
        )
        # raw ratio is 1e4 (learning) but the residual factor is 1.0
        assert store.p90("filter", "java") == pytest.approx(1.0)
        assert store.correction("filter") == pytest.approx(10_000.0)

    def test_ingest_from_metrics(self):
        metrics = ExecutionMetrics()
        metrics.record_calibration_observation(
            CalibrationObservation(1, "filter", "java", 10.0, 100)
        )
        metrics.record_calibration_observation(
            CalibrationObservation(2, "map", "java", 50.0, 50)
        )
        store = CalibrationStore()
        assert store.ingest(metrics) == 2
        assert store.sample_count() == 2
        assert store.correction("filter") == pytest.approx(10.0)
        assert store.correction("map") == pytest.approx(1.0)

    def test_ingest_noop_under_kill_switch(self, monkeypatch):
        metrics = ExecutionMetrics()
        metrics.record_calibration_observation(
            CalibrationObservation(1, "filter", "java", 10.0, 100)
        )
        monkeypatch.setenv(KILL_SWITCH, "1")
        store = CalibrationStore()
        assert store.ingest(metrics) == 0
        assert store.sample_count() == 0

    def test_priors_summary(self):
        store = CalibrationStore()
        store.observe("filter", "java", estimated=1.0, observed=8)
        store.observe("filter", "java", estimated=1.0, observed=2)
        (prior,) = store.priors()
        assert prior.kind == "filter"
        assert prior.platform == "java"
        assert prior.count == 2
        assert prior.geo_mean_ratio == pytest.approx(4.0)
        assert prior.log_mean == pytest.approx(math.log(4.0))
        assert prior.p50 == pytest.approx(2.0)
        assert prior.p90 == pytest.approx(8.0)

    def test_reset_drops_everything(self):
        store = CalibrationStore()
        store.observe("filter", "java", estimated=1.0, observed=8)
        store.note_prior_applied("filter")
        store.reset()
        assert store.sample_count() == 0
        assert store.priors_applied == 0
        assert store.correction("filter") == 1.0

    def test_report_renders_priors(self):
        store = CalibrationStore()
        assert "empty" in store.report()
        store.observe("filter", "java", estimated=1.0, observed=8)
        report = store.report()
        assert "filter" in report
        assert "java" in report
        assert "p90" in report

    def test_shared_registry_exports_series(self):
        registry = MetricsRegistry()
        store = CalibrationStore(registry=registry)
        store.observe("filter", "java", estimated=1.0, observed=8)
        assert "calibration_samples" in registry
        assert "calibration_factor" in registry
        snap = registry.snapshot()
        assert snap["calibration_samples"]["series"] == {
            "kind=filter,platform=java": 1.0
        }


class TestSnapshotRestore:
    def make_store(self) -> CalibrationStore:
        store = CalibrationStore(min_samples=2, max_correction=1e3)
        store.observe("filter", "java", estimated=1.0, observed=8)
        store.observe("filter", "java", estimated=4.0, observed=2)
        store.observe("groupby.hash", "spark", estimated=100.0, observed=10)
        return store

    def test_round_trip_exact(self):
        store = self.make_store()
        clone = CalibrationStore(min_samples=2, max_correction=1e3)
        clone.restore(store.snapshot())
        assert clone.snapshot() == store.snapshot()
        for kind in ("filter", "groupby.hash"):
            assert clone.correction(kind) == store.correction(kind)
        assert clone.p90("filter", "java") == store.p90("filter", "java")

    def test_snapshot_json_serialisable(self):
        dump = json.dumps(self.make_store().snapshot())
        assert "filter" in dump

    def test_save_load_json(self, tmp_path):
        store = self.make_store()
        path = str(tmp_path / "cal.json")
        store.save_json(path)
        loaded = CalibrationStore.load_json(path)
        assert loaded.min_samples == store.min_samples
        assert loaded.max_correction == store.max_correction
        assert loaded.snapshot() == store.snapshot()

    def test_restore_is_additive(self):
        store = self.make_store()
        before = store.correction("filter")
        snap = store.snapshot()
        store.restore(snap)  # merge the same evidence again
        assert store.sample_count() == 6
        # doubling identical evidence leaves the geo-mean unchanged
        assert store.correction("filter") == pytest.approx(before)

    def test_restore_rejects_unknown_version(self):
        with pytest.raises(ValueError, match="version"):
            CalibrationStore().restore({"version": 99, "priors": []})

    def test_restore_rejects_mismatched_bounds(self):
        store = self.make_store()
        snap = store.snapshot()
        snap["priors"][0]["factor_histogram"]["bounds"] = [1.0, 2.0]
        with pytest.raises(ValueError, match="bounds"):
            store.restore(snap)


class TestCalibratedEstimator:
    def _filter_plan(self, ctx, rows=1_000, selectivity=0.001):
        dq = ctx.collection(range(rows)).filter(
            lambda x: True, hints=CostHints(selectivity=selectivity)
        )
        dq.plan.add(CollectSink(), [dq.operator])
        return ctx.app_optimizer.optimize(dq.plan)

    def test_cold_store_matches_raw(self, ctx):
        physical = self._filter_plan(ctx)
        raw = CardinalityEstimator().estimate_plan(physical)
        calibrated = CalibratedCardinalityEstimator(CalibrationStore())
        assert calibrated.estimate_plan(physical) == raw
        assert calibrated.last_corrections == {}

    def test_warm_store_scales_correctable_kinds(self, ctx):
        physical = self._filter_plan(ctx)
        store = CalibrationStore()
        store.observe("filter", "java", estimated=1.0, observed=100)
        estimator = CalibratedCardinalityEstimator(store)
        raw = CardinalityEstimator().estimate_plan(physical)
        estimates = estimator.estimate_plan(physical)
        filter_ids = [
            op.id for op in physical.graph.operators if op.kind == "filter"
        ]
        (filter_id,) = filter_ids
        assert estimates[filter_id] == pytest.approx(raw[filter_id] * 100)
        assert estimator.last_corrections == {filter_id: pytest.approx(100.0)}
        assert store.priors_applied >= 1

    def test_collection_sources_never_corrected(self, ctx):
        physical = self._filter_plan(ctx, rows=50)
        store = CalibrationStore()
        store.observe("source.collection", "java", estimated=1.0, observed=100)
        estimator = CalibratedCardinalityEstimator(store)
        estimates = estimator.estimate_plan(physical)
        source_ids = [
            op.id for op in physical.graph.operators
            if op.kind == "source.collection"
        ]
        assert all(estimates[i] == 50.0 for i in source_ids)

    def test_pass_through_kinds_never_corrected(self):
        assert not CalibratedCardinalityEstimator.correctable("map")
        assert not CalibratedCardinalityEstimator.correctable("sink.collect")
        assert not CalibratedCardinalityEstimator.correctable("sort")
        assert CalibratedCardinalityEstimator.correctable("filter")
        assert CalibratedCardinalityEstimator.correctable("groupby.hash")
        assert CalibratedCardinalityEstimator.correctable("join.broadcast")
        assert CalibratedCardinalityEstimator.correctable("source.textfile")

    def test_kill_switch_bypasses_corrections(self, ctx, monkeypatch):
        physical = self._filter_plan(ctx)
        store = CalibrationStore()
        store.observe("filter", "java", estimated=1.0, observed=100)
        estimator = CalibratedCardinalityEstimator(store)
        monkeypatch.setenv(KILL_SWITCH, "1")
        raw = CardinalityEstimator().estimate_plan(physical)
        assert estimator.estimate_plan(physical) == raw
        assert estimator.last_corrections == {}

    def test_wraps_custom_base_estimator(self, ctx):
        class Doubler(CardinalityEstimator):
            def estimate_operator(self, operator, input_cards):
                return 2.0 * super().estimate_operator(operator, input_cards)

        physical = self._filter_plan(ctx)
        estimator = CalibratedCardinalityEstimator(
            CalibrationStore(), base=Doubler()
        )
        doubled = Doubler().estimate_plan(physical)
        assert estimator.estimate_plan(physical) == doubled


class TestContextWiring:
    def test_calibrate_true_attaches_fresh_store(self):
        ctx = RheemContext(calibrate=True)
        assert isinstance(ctx.calibration, CalibrationStore)
        assert isinstance(ctx.estimator, CalibratedCardinalityEstimator)
        assert ctx.executor.calibration is ctx.calibration

    def test_calibrate_accepts_existing_store(self):
        store = CalibrationStore()
        ctx = RheemContext(calibrate=store)
        assert ctx.calibration is store

    def test_default_is_off(self):
        ctx = RheemContext()
        assert ctx.calibration is None
        assert not isinstance(ctx.estimator, CalibratedCardinalityEstimator)

    @staticmethod
    def _skewed_pipeline(ctx: RheemContext):
        # The repeat after the filter forces a task-atom boundary on the
        # filter's output, so its misestimate is actually *observed*.  A
        # bare filter->collect fuses into a single atom whose only
        # boundary is the sink.
        return (
            ctx.collection(range(100))
            .filter(lambda x: True, hints=CostHints(selectivity=0.01))
            .repeat(2, lambda d: d.map(lambda x: x))
        )

    def test_execution_feeds_store(self):
        ctx = RheemContext(calibrate=True)
        self._skewed_pipeline(ctx).collect()
        assert ctx.calibration.sample_count() > 0
        assert ctx.calibration.correction("filter") > 1.0

    def test_fused_filter_is_not_observed(self):
        # Boundary semantics: fused-away operators produce no calibration
        # samples of their own kind — only atom output boundaries do.
        ctx = RheemContext(calibrate=True)
        ctx.collection(range(100)).filter(
            lambda x: True, hints=CostHints(selectivity=0.01)
        ).collect()
        kinds = {p.kind for p in ctx.calibration.priors()}
        assert "filter" not in kinds
        assert "sink.collect" in kinds

    def test_second_run_applies_prior(self):
        ctx = RheemContext(calibrate=True)
        self._skewed_pipeline(ctx).collect()
        assert ctx.calibration.priors_applied == 0
        self._skewed_pipeline(ctx).collect()
        assert ctx.calibration.priors_applied >= 1
