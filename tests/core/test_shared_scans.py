"""Tests for the shared-scan physical optimization (§4.2) and Limit."""

import pytest

from repro import RheemContext
from repro.core.optimizer.application import ApplicationOptimizer
from repro.core.types import Schema
from repro.storage import Catalog, LocalFsStore


@pytest.fixture()
def catalog_ctx(tmp_path):
    catalog = Catalog()
    catalog.register_store(LocalFsStore(root=str(tmp_path)))
    schema = Schema(["id", "v"])
    rows = [schema.record(i, i * 2) for i in range(30)]
    catalog.write_dataset("t", rows, "localfs", schema=schema)
    return RheemContext(catalog=catalog)


def scan_count(physical, kind):
    return sum(1 for op in physical.graph if op.kind == kind)


class TestSharedScans:
    def test_duplicate_table_scans_merged(self, catalog_ctx):
        ctx = catalog_ctx
        joined = ctx.table("t").join(
            ctx.table("t"), lambda r: r["id"], lambda r: r["id"]
        )
        physical = ctx.app_optimizer.optimize(joined.plan)
        assert scan_count(physical, "source.table") == 1

    def test_different_tables_not_merged(self, catalog_ctx):
        ctx = catalog_ctx
        ctx.catalog.write_dataset(
            "u",
            [Schema(["id", "v"]).record(1, 2)],
            "localfs",
            schema=Schema(["id", "v"]),
        )
        joined = ctx.table("t").join(
            ctx.table("u"), lambda r: r["id"], lambda r: r["id"]
        )
        physical = ctx.app_optimizer.optimize(joined.plan)
        assert scan_count(physical, "source.table") == 2

    def test_textfile_scans_merged(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("a\nb\n")
        ctx = RheemContext()
        union = ctx.textfile(str(path)).union(ctx.textfile(str(path)))
        physical = ctx.app_optimizer.optimize(union.plan)
        assert scan_count(physical, "source.textfile") == 1

    def test_results_correct_after_sharing(self, catalog_ctx):
        ctx = catalog_ctx
        joined = ctx.table("t").join(
            ctx.table("t"), lambda r: r["id"], lambda r: r["id"]
        )
        out = joined.map(lambda p: p[0]["id"]).collect()
        assert sorted(out) == list(range(30))

    def test_sharing_can_be_disabled(self, catalog_ctx):
        ctx = catalog_ctx
        optimizer = ApplicationOptimizer(
            ctx.mappings, ctx.rules, share_scans=False
        )
        joined = ctx.table("t").join(
            ctx.table("t"), lambda r: r["id"], lambda r: r["id"]
        )
        physical = optimizer.optimize(joined.plan)
        assert scan_count(physical, "source.table") == 2

    def test_self_cross_both_slots_rewired(self, catalog_ctx):
        """A consumer reading the duplicate scan on both slots survives."""
        ctx = catalog_ctx
        crossed = ctx.table("t").limit(3).cross(ctx.table("t").limit(3))
        out = crossed.collect()
        assert len(out) == 9

    def test_shared_scan_charged_once(self, catalog_ctx):
        ctx = catalog_ctx
        joined = ctx.table("t").join(
            ctx.table("t"), lambda r: r["id"], lambda r: r["id"]
        )
        _, metrics = joined.collect_with_metrics(platform="java")
        scans = [
            e for e in metrics.ledger.entries if e.label == "op.source.table"
        ]
        assert len(scans) == 1


class TestLimit:
    @pytest.mark.parametrize("platform", ["java", "spark", "postgres"])
    def test_limit_on_each_platform(self, platform):
        ctx = RheemContext()
        out = ctx.collection(range(100)).limit(7).collect(platform=platform)
        assert out == list(range(7))

    def test_limit_zero(self, ctx):
        assert ctx.collection(range(5)).limit(0).collect(platform="java") == []

    def test_limit_larger_than_data(self, ctx):
        assert ctx.collection([1, 2]).limit(10).collect(platform="java") == [1, 2]

    def test_negative_limit_rejected(self, ctx):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            ctx.collection([1]).limit(-1)

    def test_limit_after_sort(self, ctx):
        out = (
            ctx.collection([5, 1, 9, 3])
            .sort(lambda x: -x)
            .limit(2)
            .collect(platform="java")
        )
        assert out == [9, 5]
