"""Tests for the application optimizer: rewrite rules, mappings, and
logical→physical translation (variants included)."""

import pytest

from repro.core.logical.operators import (
    CollectionSource,
    CollectSink,
    CostHints,
    Filter,
    GroupBy,
    LoopInput,
    Map,
    Repeat,
    Sort,
    Union,
)
from repro.core.logical.plan import LogicalPlan
from repro.core.mappings import default_mappings
from repro.core.optimizer.application import ApplicationOptimizer
from repro.core.optimizer.rules import (
    FuseAdjacentFilters,
    PushFilterBelowSort,
    PushFilterBelowUnion,
    RuleRegistry,
    default_rules,
)
from repro.core.physical.operators import (
    PFilter,
    PHashGroupBy,
    PMap,
    PRepeat,
    PSortGroupBy,
)
from repro.errors import MappingError


def plan_with(*ops_chain):
    plan = LogicalPlan()
    previous = None
    for op in ops_chain:
        plan.add(op, [previous] if previous is not None else [])
        previous = op
    return plan


class TestRules:
    def test_push_filter_below_sort(self):
        src = CollectionSource(range(10))
        sort = Sort(lambda x: x)
        flt = Filter(lambda x: x > 5)
        sink = CollectSink()
        plan = plan_with(src, sort, flt, sink)
        assert PushFilterBelowSort().apply(plan) is True
        # Now: src -> filter -> sort -> sink
        assert plan.graph.inputs_of(flt) == (src,)
        assert plan.graph.inputs_of(sort) == (flt,)
        assert plan.graph.inputs_of(sink) == (sort,)
        plan.validate()

    def test_push_filter_below_sort_skips_shared_sort(self):
        plan = LogicalPlan()
        src = plan.add(CollectionSource(range(10)))
        sort = plan.add(Sort(lambda x: x), [src])
        flt = plan.add(Filter(lambda x: x > 5), [sort])
        other = plan.add(Map(lambda x: x), [sort])
        plan.add(CollectSink(), [flt])
        plan.add(CollectSink(), [other])
        assert PushFilterBelowSort().apply(plan) is False

    def test_push_filter_below_union(self):
        plan = LogicalPlan()
        a = plan.add(CollectionSource([1, 2]))
        b = plan.add(CollectionSource([3, 4]))
        union = plan.add(Union(), [a, b])
        flt = plan.add(Filter(lambda x: x % 2 == 0), [union])
        plan.add(CollectSink(), [flt])
        assert PushFilterBelowUnion().apply(plan) is True
        plan.validate()
        left, right = plan.graph.inputs_of(union)
        assert isinstance(left, Filter) and isinstance(right, Filter)
        assert flt not in plan.graph

    def test_fuse_adjacent_filters(self):
        src = CollectionSource(range(10))
        f1 = Filter(lambda x: x > 2, hints=CostHints(selectivity=0.5))
        f2 = Filter(lambda x: x < 8, hints=CostHints(selectivity=0.5))
        sink = CollectSink()
        plan = plan_with(src, f1, f2, sink)
        assert FuseAdjacentFilters().apply(plan) is True
        plan.validate()
        (fused,) = plan.graph.consumers_of(src)
        assert isinstance(fused, Filter)
        assert fused.predicate(5) is True
        assert fused.predicate(1) is False
        assert fused.predicate(9) is False
        assert fused.hints.selectivity == pytest.approx(0.25)

    def test_fixpoint_counts_rewrites(self):
        src = CollectionSource(range(10))
        plan = plan_with(
            src,
            Filter(lambda x: x > 1),
            Filter(lambda x: x > 2),
            Filter(lambda x: x > 3),
            CollectSink(),
        )
        rewrites = RuleRegistry([FuseAdjacentFilters()]).run_to_fixpoint(plan)
        assert rewrites == 2  # three filters fuse pairwise twice

    def test_rules_preserve_semantics_end_to_end(self):
        from repro import RheemContext

        ctx = RheemContext()
        result = (
            ctx.collection(range(100))
            .sort(lambda x: -x)
            .filter(lambda x: x % 3 == 0)
            .filter(lambda x: x > 50)
            .collect(platform="java")
        )
        assert result == [x for x in range(100) if x % 3 == 0 and x > 50][::-1]


class TestTranslation:
    def test_wrappers_and_variants(self):
        plan = plan_with(
            CollectionSource([1, 2, 1]),
            GroupBy(lambda x: x),
            CollectSink(),
        )
        physical = ApplicationOptimizer().optimize(plan)
        ops = {type(op) for op in physical.graph}
        assert PHashGroupBy in ops
        group_op = next(
            op for op in physical.graph if isinstance(op, PHashGroupBy)
        )
        assert any(isinstance(alt, PSortGroupBy) for alt in group_op.alternates)

    def test_hints_travel_to_physical(self):
        flt = Filter(lambda x: True, hints=CostHints(selectivity=0.1))
        plan = plan_with(CollectionSource([1]), flt, CollectSink())
        physical = ApplicationOptimizer().optimize(plan)
        pfilter = next(op for op in physical.graph if isinstance(op, PFilter))
        assert pfilter.hints.selectivity == 0.1

    def test_repeat_translated_recursively(self):
        body = LogicalPlan()
        loop_in = body.add(LoopInput())
        out = body.add(Map(lambda x: x + 1), [loop_in])
        repeat = Repeat(body, loop_in, out, times=3)
        plan = LogicalPlan()
        src = plan.add(CollectionSource([0]))
        rep = plan.add(repeat, [src])
        plan.add(CollectSink(), [rep])
        physical = ApplicationOptimizer().optimize(plan)
        prepeat = next(op for op in physical.graph if isinstance(op, PRepeat))
        assert prepeat.times == 3
        assert any(isinstance(op, PMap) for op in prepeat.body.graph)
        assert prepeat.body_output in prepeat.body.graph

    def test_unmapped_operator_raises(self):
        class Custom(Map):
            pass

        mappings = default_mappings()
        # Custom inherits Map's mapping through the MRO, so it translates.
        plan = plan_with(
            CollectionSource([1]), Custom(lambda x: x), CollectSink()
        )
        ApplicationOptimizer(mappings).optimize(plan)

        class Orphan(CollectionSource.__bases__[0]):  # LogicalOperator
            num_inputs = 1

        plan2 = LogicalPlan()
        src = plan2.add(CollectionSource([1]))
        plan2.add(Orphan(), [src])
        with pytest.raises(MappingError, match="no logical->physical"):
            ApplicationOptimizer(mappings).optimize(plan2)

    def test_mapping_copy_isolated(self):
        base = default_mappings()
        clone = base.copy()

        class Extra(Map):
            pass

        clone.register(Extra, lambda logical: PMap(logical))
        assert clone.has_mapping(Extra)
        assert not base.has_mapping(Extra)


def test_default_rules_registered():
    names = {rule.name for rule in default_rules().rules}
    assert {"fuse-adjacent-filters", "push-filter-below-sort",
            "push-filter-below-union"} <= names
