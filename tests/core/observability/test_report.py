"""Perf-regression observatory tests (``repro report`` and its gating).

* committed-baseline-shaped history passes every gate (the CI happy
  path) and a synthetically slowed run fails with exit != 0;
* the three gate families behave per contract: boolean hard floors at
  any scale, ``X``/``X_floor`` margins against each run's *own* floor,
  and ``*_ms`` tolerance bands (loose for wall, tight for virtual)
  applied only to same-scale runs — medians, so a single outlier run
  inside the window does not trip the gate;
* durable-file hygiene: torn history lines are skipped not fatal,
  corrupt baseline files are ignored, ``write_atomic`` leaves no temp
  droppings, ``append_history`` appends one JSON line per document;
* the ``repro report [--check] [--out] [--markdown]`` CLI wiring.
"""

from __future__ import annotations

import json
import os

import pytest

from benchmarks.harness import HISTORY_NAME, append_history, write_atomic
from repro.cli import main
from repro.core.observability import (
    build_report,
    load_baselines,
    load_history,
    render_report,
)
from repro.core.observability.report import FAIL, OK, SKIP, repo_git_sha


def baseline(exp_id="ABL99", **overrides):
    document = {
        "exp_id": exp_id,
        "scale": "full",
        "git_sha": "f" * 40,
        "recorded_at_utc": "2026-08-08T00:00:00Z",
        "wall_ms": 100.0,
        "virtual_ms": 50.0,
        "speedup": 2.0,
        "speedup_floor": 1.5,
        "identical": True,
    }
    document.update(overrides)
    return document


def run(exp_id="ABL99", **overrides):
    """A history entry shaped like a healthy re-run of :func:`baseline`."""
    return baseline(exp_id, **overrides)


def gates_by_metric(report, exp_id="ABL99"):
    (section,) = [s for s in report.sections if s.exp_id == exp_id]
    return {gate.metric: gate for gate in section.gates}


# ----------------------------------------------------------------------
# gating
# ----------------------------------------------------------------------
class TestGates:
    def test_healthy_window_has_no_regressions(self):
        report = build_report({"ABL99": baseline()}, [run(), run(), run()])
        assert report.regressions == []
        gates = gates_by_metric(report)
        assert gates["identical"].status == OK
        assert gates["speedup"].status == OK
        assert gates["wall_ms"].status == OK
        assert gates["virtual_ms"].status == OK

    def test_no_history_is_a_skip_not_a_failure(self):
        report = build_report({"ABL99": baseline()}, [])
        assert report.regressions == []
        gates = gates_by_metric(report)
        assert gates["(all)"].status == SKIP
        assert "no history runs" in gates["(all)"].detail

    def test_slowed_wall_run_fails_the_band(self):
        # 3x the baseline wall is far beyond the +50% band
        report = build_report(
            {"ABL99": baseline()}, [run(wall_ms=300.0)] * 3
        )
        gates = gates_by_metric(report)
        assert gates["wall_ms"].status == FAIL
        assert report.regressions

    def test_wall_inside_the_loose_band_passes(self):
        report = build_report(
            {"ABL99": baseline()}, [run(wall_ms=140.0)] * 3
        )
        assert gates_by_metric(report)["wall_ms"].status == OK

    def test_virtual_band_is_tight(self):
        # +4% drift on a deterministic bill is a regression...
        report = build_report(
            {"ABL99": baseline()}, [run(virtual_ms=52.0)] * 3
        )
        assert gates_by_metric(report)["virtual_ms"].status == FAIL
        # ...+1% is inside the 2% band
        report = build_report(
            {"ABL99": baseline()}, [run(virtual_ms=50.5)] * 3
        )
        assert gates_by_metric(report)["virtual_ms"].status == OK

    def test_median_shrugs_off_one_outlier(self):
        history = [run(), run(wall_ms=1000.0), run()]
        assert build_report({"ABL99": baseline()}, history).regressions == []

    def test_boolean_flip_is_a_hard_floor_at_any_scale(self):
        history = [run(), run(scale="quick", identical=False), run()]
        report = build_report({"ABL99": baseline()}, history)
        gates = gates_by_metric(report)
        assert gates["identical"].status == FAIL
        assert "hard floor" in gates["identical"].detail

    def test_floor_margin_uses_each_runs_own_floor(self):
        # quick-scale runs record a lower floor; 1.2x against a recorded
        # floor of 1.0 is a healthy margin even though the committed
        # full-scale floor is 1.5
        history = [
            run(scale="quick", speedup=1.2, speedup_floor=1.0)
        ] * 3
        report = build_report({"ABL99": baseline()}, history)
        assert gates_by_metric(report)["speedup"].status == OK

    def test_floor_breach_fails(self):
        history = [run(speedup=1.2)] * 3  # recorded floor stays 1.5
        report = build_report({"ABL99": baseline()}, history)
        gates = gates_by_metric(report)
        assert gates["speedup"].status == FAIL
        assert "margin" in gates["speedup"].detail

    def test_scale_mismatch_skips_bands_but_keeps_floors(self):
        history = [run(scale="quick", wall_ms=5000.0, virtual_ms=1.0)] * 3
        report = build_report({"ABL99": baseline()}, history)
        gates = gates_by_metric(report)
        assert gates["wall_ms"].status == SKIP
        assert gates["virtual_ms"].status == SKIP
        assert gates["identical"].status == OK
        assert gates["speedup"].status == OK
        assert report.regressions == []

    def test_dict_valued_wall_metrics_gate_per_subkey(self):
        base = baseline(wall_ms={"1": 100.0, "4": 30.0})
        healthy = run(wall_ms={"1": 90.0, "4": 31.0})
        slow4 = run(wall_ms={"1": 90.0, "4": 90.0})
        report = build_report({"ABL99": base}, [healthy, slow4, slow4])
        gates = gates_by_metric(report)
        assert gates["wall_ms[1]"].status == OK
        assert gates["wall_ms[4]"].status == FAIL

    def test_window_is_the_last_best_of_runs(self):
        # an ancient slow run falls outside the best-of-3 window
        history = [run(wall_ms=900.0)] + [run()] * 3
        assert build_report(
            {"ABL99": baseline()}, history, best_of=3
        ).regressions == []

    def test_history_only_experiments_are_reported(self):
        report = build_report({"ABL99": baseline()}, [run(exp_id="ABL7")])
        assert report.extra_exp_ids == ["ABL7"]


# ----------------------------------------------------------------------
# durable files
# ----------------------------------------------------------------------
class TestFiles:
    def test_load_history_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / HISTORY_NAME
        path.write_text(
            json.dumps(run()) + "\n" + '{"exp_id": "ABL99", "wall',
            encoding="utf-8",
        )
        entries, skipped = load_history(str(path))
        assert len(entries) == 1
        assert skipped == 1

    def test_load_history_skips_non_dict_lines(self, tmp_path):
        path = tmp_path / HISTORY_NAME
        path.write_text('[1, 2]\n{"no_exp_id": true}\n', encoding="utf-8")
        entries, skipped = load_history(str(path))
        assert entries == []
        assert skipped == 2

    def test_load_history_missing_file(self, tmp_path):
        assert load_history(str(tmp_path / "absent.jsonl")) == ([], 0)

    def test_load_baselines_ignores_corrupt_files(self, tmp_path):
        (tmp_path / "BENCH_ABL99.json").write_text(
            json.dumps(baseline()), encoding="utf-8"
        )
        (tmp_path / "BENCH_BAD.json").write_text("{torn", encoding="utf-8")
        (tmp_path / "notes.txt").write_text("ignored", encoding="utf-8")
        baselines = load_baselines(str(tmp_path))
        assert set(baselines) == {"ABL99"}

    def test_write_atomic_replaces_without_droppings(self, tmp_path):
        path = tmp_path / "latest.txt"
        write_atomic(str(path), "first\n")
        write_atomic(str(path), "second\n")
        assert path.read_text(encoding="utf-8") == "second\n"
        assert os.listdir(tmp_path) == ["latest.txt"]  # no temp files left

    def test_append_history_appends_one_line_per_document(self, tmp_path):
        docs = [run(), run(exp_id="ABL7")]
        path = append_history(str(tmp_path), docs)
        path = append_history(str(tmp_path), [run()])
        assert os.path.basename(path) == HISTORY_NAME
        entries, skipped = load_history(path)
        assert skipped == 0
        assert [e["exp_id"] for e in entries] == ["ABL99", "ABL7", "ABL99"]

    def test_repo_git_sha_in_this_checkout(self):
        sha = repo_git_sha()
        assert sha and len(sha) == 40


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
class TestRendering:
    def test_text_report_shape(self):
        report = build_report(
            {"ABL99": baseline()},
            [run(speedup=1.9), run(speedup=1.2), run(speedup=1.2)],
            skipped_lines=1,
        )
        rendered = render_report(report)
        assert "perf observatory" in rendered
        assert "1 torn line(s) skipped" in rendered
        assert "[FAIL] speedup" in rendered
        assert "trend speedup: 1.90 -> 1.20 -> 1.20" in rendered
        assert "REGRESSIONS: 1" in rendered

    def test_text_report_green_footer(self):
        report = build_report({"ABL99": baseline()}, [run()] * 3)
        assert "no regressions" in render_report(report)

    def test_markdown_report_is_a_table(self):
        report = build_report({"ABL99": baseline()}, [run()] * 3)
        rendered = render_report(report, markdown=True)
        assert "| experiment | metric | status | detail |" in rendered
        assert "**No regressions.**" in rendered
        bad = build_report({"ABL99": baseline()}, [run(identical=False)])
        assert "**1 regression(s).**" in render_report(bad, markdown=True)


# ----------------------------------------------------------------------
# the CLI
# ----------------------------------------------------------------------
@pytest.fixture()
def results_dir(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    (directory / "BENCH_ABL99.json").write_text(
        json.dumps(baseline()), encoding="utf-8"
    )
    append_history(str(directory), [run(), run(), run()])
    return directory


class TestReportCli:
    def test_report_renders_and_passes(self, results_dir, capsys):
        assert main(["report", "--results", str(results_dir)]) == 0
        out = capsys.readouterr().out
        assert "perf observatory" in out
        assert "no regressions" in out

    def test_check_passes_on_healthy_history(self, results_dir, capsys):
        assert (
            main(["report", "--results", str(results_dir), "--check"]) == 0
        )
        assert "perf check passed" in capsys.readouterr().err

    def test_check_fails_on_synthetically_slowed_run(
        self, results_dir, capsys
    ):
        # the committed baseline says 100ms wall; the last 3 runs say 300
        append_history(str(results_dir), [run(wall_ms=300.0)] * 3)
        assert (
            main(["report", "--results", str(results_dir), "--check"]) == 1
        )
        captured = capsys.readouterr()
        assert "perf check FAILED" in captured.err
        assert "[FAIL] wall_ms" in captured.out

    def test_out_writes_the_artifact(self, results_dir, tmp_path):
        artifact = tmp_path / "report.md"
        assert (
            main(
                [
                    "report",
                    "--results",
                    str(results_dir),
                    "--markdown",
                    "--out",
                    str(artifact),
                ]
            )
            == 0
        )
        assert "| experiment |" in artifact.read_text(encoding="utf-8")

    def test_separate_baselines_dir(self, results_dir, tmp_path, capsys):
        # CI copies the committed baselines aside before benches
        # overwrite them in the working tree
        saved = tmp_path / "saved"
        saved.mkdir()
        (saved / "BENCH_ABL99.json").write_text(
            json.dumps(baseline(wall_ms=10.0)), encoding="utf-8"
        )
        assert (
            main(
                [
                    "report",
                    "--results",
                    str(results_dir),
                    "--baselines",
                    str(saved),
                    "--check",
                ]
            )
            == 1
        )  # history medians (100ms) regress the saved 10ms baseline

    def test_no_baselines_is_a_loud_error(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SystemExit, match="no BENCH_"):
            main(["report", "--results", str(empty)])

    def test_profile_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["demo", "--profile"])
        assert args.profile is True
        args = build_parser().parse_args(["demo"])
        assert args.profile is None


# ----------------------------------------------------------------------
# the committed repository state (the CI happy path)
# ----------------------------------------------------------------------
class TestCommittedBaselines:
    RESULTS = os.path.join(
        os.path.dirname(
            os.path.dirname(
                os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
            )
        ),
        "benchmarks",
        "results",
    )

    def test_committed_history_passes_the_check(self, capsys):
        """The seeded history must be green against the committed
        baselines — otherwise ``repro report --check`` (and the CI
        perf-watch job) would fail straight off a fresh clone."""
        if not os.path.isdir(self.RESULTS):  # pragma: no cover
            pytest.skip("no committed results directory")
        assert main(["report", "--results", self.RESULTS, "--check"]) == 0
        assert "perf check passed" in capsys.readouterr().err
