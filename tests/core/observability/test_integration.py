"""End-to-end tracing integration tests (the PR's acceptance criteria).

* the span tree of a traced run nests
  task -> optimize.application / optimize.enumerate -> execute ->
  atom -> operator (-> movement on cross-platform plans);
* per-subtree virtual durations reconcile with ``CostLedger`` totals;
* with no tracer attached the instrumented paths allocate **zero**
  spans (the no-op fast path).
"""

import pytest

import repro.core.observability.spans as spans_module
from repro import RheemContext, Tracer
from repro.core.observability import (
    KIND_EXECUTOR,
    KIND_MOVEMENT,
    KIND_OPTIMIZER,
    KIND_PLATFORM,
    KIND_TASK,
)
from repro.core.optimizer.cost import MovementCostModel
from repro.platforms import JavaPlatform, PostgresPlatform
from repro.platforms.java.platform import JavaCostModel
from repro.platforms.postgres.platform import PostgresCostModel


def wordcount(ctx):
    return (
        ctx.collection(["a b a", "b a", "c"])
        .flat_map(str.split)
        .map(lambda w: (w, 1))
        .reduce_by(lambda kv: kv[0], lambda a, b: (a[0], a[1] + b[1]))
        .sort(lambda kv: kv[0])
    )


@pytest.fixture()
def traced_run():
    tracer = Tracer()
    ctx = RheemContext(tracer=tracer)
    results, metrics = wordcount(ctx).collect_with_metrics()
    return tracer, results, metrics


class TestSpanTreeShape:
    def test_layers_all_present(self, traced_run):
        tracer, _, _ = traced_run
        names = {span.name for span in tracer.spans}
        assert "task" in names
        assert "optimize.application" in names
        assert "optimize.enumerate" in names
        assert "optimize.cut_atoms" in names
        assert "execute" in names
        assert any(name.startswith("atom#") for name in names)
        assert any(name.startswith("op.") for name in names)

    def test_nesting_matches_the_paper_layers(self, traced_run):
        tracer, _, _ = traced_run
        (task,) = tracer.roots()
        assert task.kind == KIND_TASK
        child_names = [s.name for s in tracer.children(task)]
        assert "optimize.application" in child_names
        assert "optimize.enumerate" in child_names
        assert "execute" in child_names
        (execute,) = tracer.find("execute")
        atoms = tracer.children(execute)
        assert atoms and all(a.kind == KIND_EXECUTOR for a in atoms)
        operators = tracer.children(atoms[0])
        assert operators
        assert all(op.kind == KIND_PLATFORM for op in operators)
        assert all(op.name.startswith("op.") for op in operators)

    def test_all_spans_complete(self, traced_run):
        tracer, _, _ = traced_run
        assert all(span.complete for span in tracer.spans)

    def test_results_unaffected_by_tracing(self, traced_run):
        _, results, _ = traced_run
        untraced = wordcount(RheemContext()).collect()
        assert results == untraced

    def test_enumerator_spans_record_the_decision(self, traced_run):
        tracer, _, _ = traced_run
        (enum_span,) = tracer.find("optimize.enumerate")
        assert enum_span.kind == KIND_OPTIMIZER
        attrs = enum_span.attributes
        assert attrs["candidates"] >= 1
        assert attrs["winner"]
        assert "cheapest" in attrs["reason"] or "pinned" in attrs["reason"]
        candidates = [
            s for s in tracer.children(enum_span) if s.name == "candidate"
        ]
        assert len(candidates) == attrs["candidates"]
        feasible = [c for c in candidates if c.attributes.get("feasible")]
        assert feasible
        assert all(
            "estimated_cost_ms" in c.attributes for c in feasible
        )

    def test_operator_spans_attribute_kernels_and_fusion(self, traced_run):
        tracer, _, _ = traced_run
        op_spans = [s for s in tracer.spans if s.name.startswith("op.")]
        reduce_span = next(
            s for s in op_spans
            if s.attributes.get("kind", "").startswith("reduceby")
        )
        assert reduce_span.attributes["kernel"] == "hash"
        fused = [s for s in op_spans if "fused_stages" in s.attributes]
        assert fused, "flat_map+map should fuse into a pipeline"
        assert len(fused[0].attributes["fused_stages"]) >= 2


class TestVirtualTimeReconciliation:
    def test_total_equals_metrics_virtual_ms(self, traced_run):
        tracer, _, metrics = traced_run
        assert tracer.total_virtual_ms() == pytest.approx(metrics.virtual_ms)

    def test_root_subtree_covers_the_whole_clock(self, traced_run):
        tracer, _, metrics = traced_run
        (task,) = tracer.roots()
        assert task.virtual_ms == pytest.approx(metrics.virtual_ms)

    def test_children_virtual_time_nests_within_parents(self, traced_run):
        tracer, _, _ = traced_run
        for span in tracer.spans:
            children = tracer.children(span)
            child_sum = sum(c.virtual_ms for c in children)
            assert child_sum <= span.virtual_ms + 1e-9

    def test_self_plus_children_equals_subtree(self, traced_run):
        tracer, _, _ = traced_run
        for span in tracer.spans:
            children = tracer.children(span)
            total = span.v_self + sum(c.virtual_ms for c in children)
            assert total == pytest.approx(span.virtual_ms)

    def test_atom_span_matches_ledger_atom_charges(self, traced_run):
        tracer, _, metrics = traced_run
        for atom_span in tracer.spans:
            if not atom_span.name.startswith("atom#"):
                continue
            atom_id = atom_span.attributes["atom"]
            ledger_ms = sum(
                entry.ms for entry in metrics.ledger.entries
                if entry.atom_id == atom_id
            )
            assert atom_span.virtual_ms == pytest.approx(ledger_ms)


class TestMovementSpans:
    def test_cross_platform_run_has_movement_spans(self):
        """Force a postgres->java->postgres split (flat_map has no
        postgres implementation) and check the movement layer."""
        from repro.core.types import Schema

        postgres = PostgresPlatform(cost_model=PostgresCostModel(
            startup=0.0, relational_unit_ms=0.000001))
        java = JavaPlatform(cost_model=JavaCostModel(
            startup=0.0, per_unit_ms=0.01))
        tracer = Tracer()
        ctx = RheemContext(
            platforms=[java, postgres],
            movement=MovementCostModel(
                per_transfer_ms=0.001, per_quantum_ms=0.0),
            tracer=tracer,
        )
        schema = Schema(["well", "pressure"])
        rows = [schema.record(i % 20, float(i)) for i in range(500)]
        handle = (
            ctx.collection(rows)
            .filter(lambda r: r["pressure"] > 50.0)
            .flat_map(lambda r: [r["well"]])
            .map(lambda w: (w, 1))
            .reduce_by(lambda kv: kv[0], lambda a, b: (a[0], a[1] + b[1]))
        )
        _, metrics = handle.collect_with_metrics()
        assert len(set(metrics.by_platform())) > 1
        moves = [s for s in tracer.spans if s.name.startswith("move.")]
        assert moves
        assert all(m.kind == KIND_MOVEMENT for m in moves)
        assert sum(m.virtual_ms for m in moves) == pytest.approx(
            metrics.movement_ms
        )
        # movement spans nest under the execute subtree
        (execute,) = tracer.find("execute")
        parents = {m.parent_id for m in moves}
        valid = {execute.span_id} | {
            s.span_id for s in tracer.children(execute)
        }
        assert parents <= valid


class TestNoopFastPath:
    def test_untraced_run_allocates_no_spans(self, monkeypatch):
        """The zero-behaviour-change guarantee: with no tracer attached
        a run must never construct a Span."""

        def exploding_init(self, *args, **kwargs):  # pragma: no cover
            raise AssertionError("Span allocated on an untraced run")

        monkeypatch.setattr(spans_module.Span, "__init__", exploding_init)
        ctx = RheemContext()
        out = wordcount(ctx).collect()
        assert out == [("a", 3), ("b", 2), ("c", 1)]

    def test_untraced_metrics_unchanged(self):
        ctx = RheemContext()
        _, metrics = wordcount(ctx).collect_with_metrics()
        assert metrics.virtual_ms > 0
        assert metrics.atoms_executed >= 1


class TestTracerReuse:
    def test_two_runs_one_tracer_two_roots(self):
        tracer = Tracer()
        ctx = RheemContext(tracer=tracer)
        wordcount(ctx).collect()
        wordcount(ctx).collect()
        roots = tracer.roots()
        assert len(roots) == 2
        assert all(root.name == "task" for root in roots)

    def test_attach_detach(self):
        tracer = Tracer()
        ctx = RheemContext()
        ctx.attach_tracer(tracer)
        wordcount(ctx).collect()
        spans_after_first = len(tracer.spans)
        assert spans_after_first > 0
        ctx.attach_tracer(None)
        wordcount(ctx).collect()
        assert len(tracer.spans) == spans_after_first
