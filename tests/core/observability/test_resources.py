"""Per-atom resource profiling tests (the PR's acceptance criteria).

* with ``profile=True`` (or ``REPRO_PROFILE=1``) every executed task
  atom's span carries ``cpu_ms`` / ``queue_wait_ms`` /
  ``peak_alloc_bytes`` / ``gc_pause_ms`` / ``gc_collections`` /
  ``channel_bytes``, and the figures reconcile exactly with the registry
  histograms — at parallelism 1 and 4 (shard registries merge in plan
  order);
* with profiling off the run is byte-identical to the pre-profiler
  behaviour: outputs, ``virtual_ms``, ledger sequence and span shape are
  unchanged, and the no-op fast path allocates no probe, starts no
  tracemalloc and installs no GC callback (enforced with exploding
  monkeypatches, exactly like the tracer's no-op test);
* channel ``payload_bytes()`` is exact for columnar buffers and a
  sampled estimate for row channels;
* the registry histogram ``quantile()`` / ``merge_from()`` contracts
  hold under the byte-scale resource buckets.
"""

from __future__ import annotations

import gc
import re
import tracemalloc
from array import array
from contextlib import contextmanager
from sys import getsizeof

import pytest

from repro import RheemContext, Tracer
from repro.core.channels import CollectionChannel, ColumnarChannel
from repro.core.observability import (
    BYTE_BUCKETS,
    MetricsRegistry,
    ResourceProfiler,
    diff_traces,
    render_diff,
    render_flamegraph,
    resource_summary,
)
from repro.core.observability.resources import (
    PROFILE_ENV,
    REAL_MS_BUCKETS,
    AtomProbe,
    profiling_enabled,
)

#: span attributes the profiler promises on every task-atom span
PROFILE_ATTRS = (
    "cpu_ms",
    "queue_wait_ms",
    "peak_alloc_bytes",
    "gc_pause_ms",
    "gc_collections",
    "channel_bytes",
)


def wordcount(ctx):
    return (
        ctx.collection(["a b a", "b a", "c"] * 40)
        .flat_map(str.split)
        .map(lambda w: (w, 1))
        .reduce_by(lambda kv: kv[0], lambda a, b: (a[0], a[1] + b[1]))
        .sort(lambda kv: kv[0])
    )


@contextmanager
def profiled_context(**kwargs):
    """A profiling context whose process-wide hooks are detached after."""
    ctx = RheemContext(profile=True, **kwargs)
    try:
        yield ctx
    finally:
        ctx.executor._profiler.close()


class _FakeSpan:
    def __init__(self):
        self.attributes = {}

    def set(self, **attrs):
        self.attributes.update(attrs)


# ----------------------------------------------------------------------
# the env flag
# ----------------------------------------------------------------------
class TestProfilingEnabled:
    @pytest.mark.parametrize("raw", ["1", "true", "YES", " on "])
    def test_truthy(self, monkeypatch, raw):
        monkeypatch.setenv(PROFILE_ENV, raw)
        assert profiling_enabled() is True

    @pytest.mark.parametrize("raw", ["0", "false", "off", ""])
    def test_falsy(self, monkeypatch, raw):
        monkeypatch.setenv(PROFILE_ENV, raw)
        assert profiling_enabled() is False

    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        assert profiling_enabled() is False
        assert profiling_enabled(default=True) is True


# ----------------------------------------------------------------------
# channel payload sizing
# ----------------------------------------------------------------------
class TestPayloadBytes:
    def test_released_collection_reports_zero(self):
        chan = CollectionChannel([(1, 2)] * 10, "java")
        chan.release()
        assert chan.payload_bytes() == 0

    def test_empty_collection_is_just_the_list(self):
        chan = CollectionChannel([], "java")
        assert chan.payload_bytes() == getsizeof([])

    def test_estimate_scales_with_cardinality(self):
        small = CollectionChannel([(i, i * 2) for i in range(100)], "java")
        big = CollectionChannel([(i, i * 2) for i in range(1000)], "java")
        b_small, b_big = small.payload_bytes(), big.payload_bytes()
        assert b_small > getsizeof([])
        # homogeneous rows: the sampled per-row cost scales ~linearly
        assert 8.0 < b_big / b_small < 12.0

    def test_columnar_is_exact_buffer_bytes(self):
        chan = ColumnarChannel.from_rows(list(range(100)), "java")
        assert chan is not None
        expected = 100 * array(chan.column(0).typecode).itemsize
        assert chan.payload_bytes() == expected

    def test_columnar_tuple_rows_sum_columns(self):
        chan = ColumnarChannel.from_rows([(i, float(i)) for i in range(50)], "java")
        assert chan is not None
        expected = sum(50 * col.itemsize for col in chan.columns)
        assert chan.payload_bytes() == expected

    def test_released_columnar_reports_zero(self):
        chan = ColumnarChannel.from_rows(list(range(10)), "java")
        chan.release()
        assert chan.payload_bytes() == 0


# ----------------------------------------------------------------------
# the profiler itself
# ----------------------------------------------------------------------
class TestResourceProfilerUnit:
    def test_probe_charges_span_and_registry(self):
        profiler = ResourceProfiler()
        try:
            registry = MetricsRegistry()
            span = _FakeSpan()
            probe = profiler.start_atom(queue_wait_ms=1.25)
            blob = bytearray(512 * 1024)  # visible allocation
            gc.collect()  # at least one attributable collection
            profiler.finish_atom(probe, span, registry, "java")
            del blob
        finally:
            profiler.close()

        attrs = span.attributes
        assert set(PROFILE_ATTRS) <= set(attrs)
        assert attrs["queue_wait_ms"] == 1.25
        assert attrs["cpu_ms"] >= 0.0
        assert attrs["peak_alloc_bytes"] >= 512 * 1024
        assert attrs["gc_collections"] >= 1
        assert attrs["gc_pause_ms"] >= 0.0
        assert attrs["channel_bytes"] == 0

        for name in ("atom_cpu_ms", "atom_queue_wait_ms",
                     "atom_rss_peak_bytes", "gc_pause_ms"):
            assert name in registry
            assert registry.histogram(name).count(platform="java") == 1
        assert registry.histogram("atom_rss_peak_bytes").sum(
            platform="java"
        ) == float(attrs["peak_alloc_bytes"])

    def test_record_channel_accumulates(self):
        profiler = ResourceProfiler()
        try:
            registry = MetricsRegistry()
            probe = profiler.start_atom()
            profiler.record_channel(probe, 1000, registry, "java")
            profiler.record_channel(probe, 234, registry, "java")
        finally:
            profiler.close()
        assert probe.channel_bytes == 1234
        hist = registry.histogram("channel_bytes")
        assert hist.count(platform="java") == 2
        assert hist.sum(platform="java") == 1234.0

    def test_resource_summary_totals(self):
        profiler = ResourceProfiler()
        try:
            registry = MetricsRegistry()
            for platform in ("java", "postgres"):
                probe = profiler.start_atom()
                profiler.record_channel(probe, 100, registry, platform)
                profiler.finish_atom(probe, None, registry, platform)
        finally:
            profiler.close()
        summary = resource_summary(registry)
        assert set(summary) == {
            "atom_cpu_ms",
            "atom_queue_wait_ms",
            "atom_rss_peak_bytes",
            "gc_pause_ms",
            "channel_bytes",
        }
        # summed across label sets
        assert summary["channel_bytes"] == {"n": 2, "total": 200.0, "max": 100.0}
        assert summary["atom_cpu_ms"]["n"] == 2

    def test_resource_summary_empty_when_unprofiled(self):
        assert resource_summary(MetricsRegistry()) == {}

    def test_close_detaches_process_hooks(self):
        callbacks_before = len(gc.callbacks)
        was_tracing = tracemalloc.is_tracing()
        profiler = ResourceProfiler()
        assert len(gc.callbacks) == callbacks_before + 1
        assert tracemalloc.is_tracing()
        profiler.close()
        assert len(gc.callbacks) == callbacks_before
        assert tracemalloc.is_tracing() == was_tracing


# ----------------------------------------------------------------------
# the no-op fast path (the zero-behaviour-change guarantee)
# ----------------------------------------------------------------------
class TestNoopFastPath:
    def test_unprofiled_run_allocates_no_probe(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)

        def exploding_probe(self, *args, **kwargs):  # pragma: no cover
            raise AssertionError("AtomProbe allocated on an unprofiled run")

        def exploding_profiler(self, *args, **kwargs):  # pragma: no cover
            raise AssertionError("ResourceProfiler built on an unprofiled run")

        monkeypatch.setattr(AtomProbe, "__init__", exploding_probe)
        monkeypatch.setattr(ResourceProfiler, "__init__", exploding_profiler)
        callbacks_before = len(gc.callbacks)
        ctx = RheemContext()
        out = wordcount(ctx).collect()
        assert out == [("a", 120), ("b", 80), ("c", 40)]
        assert len(gc.callbacks) == callbacks_before

    def test_unprofiled_spans_carry_no_resource_attrs(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        tracer = Tracer()
        ctx = RheemContext(tracer=tracer)
        wordcount(ctx).collect()
        atoms = [s for s in tracer.spans if s.name.startswith("atom#")]
        assert atoms
        for span in atoms:
            assert not (set(PROFILE_ATTRS) & set(span.attributes))

    def test_env_flag_reaches_the_executor(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "1")
        ctx = RheemContext()
        try:
            assert ctx.executor.profile is True
            assert ctx.executor._profiler is not None
        finally:
            ctx.executor._profiler.close()
        monkeypatch.setenv(PROFILE_ENV, "0")
        assert RheemContext().executor._profiler is None
        # the explicit kwarg wins over the environment
        assert RheemContext(profile=False).executor._profiler is None


# ----------------------------------------------------------------------
# end-to-end attribution + registry reconciliation
# ----------------------------------------------------------------------
class TestProfiledRun:
    @pytest.mark.parametrize("parallelism", [None, 4])
    def test_span_attrs_reconcile_with_histograms(self, parallelism):
        tracer = Tracer()
        with profiled_context(
            tracer=tracer, parallelism=parallelism
        ) as ctx:
            _, metrics = wordcount(ctx).collect_with_metrics()

        atoms = [s for s in tracer.spans if s.name.startswith("atom#")]
        assert atoms
        for span in atoms:
            assert set(PROFILE_ATTRS) <= set(span.attributes), span.name
            assert span.attributes["queue_wait_ms"] >= 0.0
            if parallelism is None:
                assert span.attributes["queue_wait_ms"] == 0.0

        registry = metrics.registry
        checks = {
            "atom_cpu_ms": "cpu_ms",
            "atom_queue_wait_ms": "queue_wait_ms",
            "atom_rss_peak_bytes": "peak_alloc_bytes",
            "gc_pause_ms": "gc_pause_ms",
        }
        for hist_name, attr in checks.items():
            hist = registry.histogram(hist_name)
            n = sum(series.n for series in hist.series.values())
            total = sum(series.total for series in hist.series.values())
            assert n == len(atoms), hist_name
            assert total == pytest.approx(
                sum(float(s.attributes[attr]) for s in atoms)
            ), hist_name

        hist = registry.histogram("channel_bytes")
        assert sum(series.total for series in hist.series.values()) == (
            sum(s.attributes["channel_bytes"] for s in atoms)
        )
        # at least one atom produced a non-trivial output payload
        assert any(s.attributes["channel_bytes"] > 0 for s in atoms)

        summary = resource_summary(registry)
        assert summary["atom_cpu_ms"]["n"] == len(atoms)

    def test_parallel_run_records_queue_wait(self):
        tracer = Tracer()
        with profiled_context(tracer=tracer, parallelism=4) as ctx:
            _, metrics = wordcount(ctx).collect_with_metrics()
        hist = metrics.registry.histogram("atom_queue_wait_ms")
        # the scheduler stamps a real dispatch-to-start latency
        assert sum(series.n for series in hist.series.values()) > 0
        assert sum(series.total for series in hist.series.values()) >= 0.0

    def test_flamegraph_gains_self_wait_column(self):
        tracer = Tracer()
        with profiled_context(tracer=tracer) as ctx:
            wordcount(ctx).collect()
        rendered = render_flamegraph(tracer)
        assert "self=" in rendered and "wait=" in rendered

        plain = Tracer()
        wordcount(RheemContext(tracer=plain)).collect()
        unprofiled = render_flamegraph(plain)
        assert "self=" not in unprofiled and "wait=" not in unprofiled


# ----------------------------------------------------------------------
# profile on/off equivalence (everything but the extra attrs)
# ----------------------------------------------------------------------
class TestEquivalence:
    @staticmethod
    def _run(profile, parallelism):
        tracer = Tracer()
        ctx = RheemContext(
            tracer=tracer, profile=profile, parallelism=parallelism
        )
        try:
            out, metrics = wordcount(ctx).collect_with_metrics()
        finally:
            if profile:
                ctx.executor._profiler.close()
        # atom ids draw from a process-global counter, so two separate
        # runs shift them uniformly; the comparable bill is the rest
        ledger = [
            (e.label, e.ms, e.platform) for e in metrics.ledger.entries
        ]
        # ``atom#N`` ids also shift uniformly between runs — normalise
        # the counter away, exactly like trace diffing does
        names = [re.sub(r"#\d+", "#", s.name) for s in tracer.spans]
        return out, metrics.virtual_ms, ledger, names

    @pytest.mark.parametrize("parallelism", [None, 4])
    def test_profiling_never_changes_the_run(self, parallelism):
        off = self._run(False, parallelism)
        on = self._run(True, parallelism)
        assert on[0] == off[0]  # outputs
        assert on[1] == off[1]  # virtual_ms
        assert on[2] == off[2]  # full ledger sequence
        assert on[3] == off[3]  # span names, in order


# ----------------------------------------------------------------------
# registry histograms under the byte-scale buckets
# ----------------------------------------------------------------------
class TestResourceHistograms:
    def test_quantile_contract_under_byte_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "atom_rss_peak_bytes", "test", buckets=BYTE_BUCKETS
        )
        assert hist.quantile(0.5, platform="java") == 0.0  # empty series
        hist.observe(100.0, platform="java")
        assert hist.quantile(0.5, platform="java") == 100.0  # single obs
        for value in (2000.0, 1_000_000.0, 1e9):
            hist.observe(value, platform="java")
        # 1e9 overflows every bucket: the top quantile clamps to vmax
        assert hist.quantile(1.0, platform="java") == 1e9
        # the median lands inside a finite bucket bound
        median = hist.quantile(0.5, platform="java")
        assert 100.0 <= median <= BYTE_BUCKETS[-1]

    def test_merge_from_adds_resource_series(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for registry, values in ((a, (500.0, 2000.0)), (b, (8000.0,))):
            hist = registry.histogram(
                "channel_bytes", "test", buckets=BYTE_BUCKETS
            )
            for value in values:
                hist.observe(value, platform="java")
        a.merge_from(b)
        hist = a.histogram("channel_bytes")
        assert hist.count(platform="java") == 3
        assert hist.sum(platform="java") == 10500.0
        (series,) = hist.series.values()
        assert series.vmin == 500.0
        assert series.vmax == 8000.0
        assert hist.quantile(1.0, platform="java") == 8000.0

    def test_merge_preserves_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.histogram("gc_pause_ms", "t", buckets=REAL_MS_BUCKETS).observe(
            0.02, platform="java"
        )
        a.merge_from(b)
        hist = a.histogram("gc_pause_ms")
        assert hist.count(platform="java") == 1
        # sub-ms resolution survived the merge (first real-ms bucket)
        assert hist.quantile(0.5, platform="java") <= REAL_MS_BUCKETS[1]


# ----------------------------------------------------------------------
# trace-diff surfaces per-layer resource deltas
# ----------------------------------------------------------------------
class TestDiffResourceDeltas:
    @staticmethod
    def _span(name, kind="task", **attributes):
        return {
            "name": name,
            "kind": kind,
            "v_ms": 1.0,
            "v_self_ms": 1.0,
            "attributes": attributes,
        }

    def test_profiled_traces_render_resource_section(self):
        a = [self._span("atom#1", cpu_ms=2.0, channel_bytes=100)]
        b = [self._span("atom#1", cpu_ms=5.0, channel_bytes=100)]
        diff = diff_traces(a, b)
        assert diff.resource_totals_a["cpu_ms"]["task"] == 2.0
        assert diff.resource_totals_b["cpu_ms"]["task"] == 5.0
        rendered = render_diff(diff)
        assert "per-layer resources" in rendered
        assert "cpu_ms" in rendered

    def test_unprofiled_traces_render_no_resource_section(self):
        a = [self._span("atom#1")]
        b = [self._span("atom#1")]
        rendered = render_diff(diff_traces(a, b))
        assert "per-layer resources" not in rendered
