"""ExecutionMetrics as a registry view + the summary()/by_label()
satellites."""

import pytest

from repro.core.metrics import (
    CardinalityMisestimate,
    CostLedger,
    ExecutionMetrics,
)
from repro.core.observability import MetricsRegistry


class TestRegistryView:
    def test_counters_are_registry_backed(self):
        registry = MetricsRegistry()
        metrics = ExecutionMetrics(registry=registry)
        metrics.atoms_executed += 3
        metrics.retries += 1
        assert registry.counter("atoms_executed").value() == 3.0
        assert registry.counter("retries").value() == 1.0
        assert metrics.atoms_executed == 3
        assert isinstance(metrics.atoms_executed, int)

    def test_backoff_ms_stays_float(self):
        metrics = ExecutionMetrics()
        metrics.backoff_ms += 1.5
        assert metrics.backoff_ms == pytest.approx(1.5)

    def test_shared_registry_aggregates_across_runs(self):
        registry = MetricsRegistry()
        first = ExecutionMetrics(registry=registry)
        second = ExecutionMetrics(registry=registry)
        first.atoms_executed += 2
        second.atoms_executed += 3
        assert registry.counter("atoms_executed").value() == 5.0

    def test_default_registry_is_private(self):
        a = ExecutionMetrics()
        b = ExecutionMetrics()
        a.atoms_executed += 1
        assert b.atoms_executed == 0


class TestByLabel:
    def _metrics(self):
        ledger = CostLedger()
        ledger.charge("op.map", 3.0, "java", 1)
        ledger.charge("op.map", 2.0, "java", 2)
        ledger.charge("move.java->spark", 1.5, "spark", 2)
        ledger.charge("startup", 5.0, "java")
        return ExecutionMetrics(ledger=ledger)

    def test_full_breakdown(self):
        assert self._metrics().by_label() == {
            "op.map": 5.0,
            "move.java->spark": 1.5,
            "startup": 5.0,
        }

    def test_consistent_with_prefix_sums(self):
        metrics = self._metrics()
        for label, total in metrics.by_label().items():
            assert metrics.by_label_prefix(label) >= total
        assert sum(metrics.by_label().values()) == pytest.approx(
            metrics.virtual_ms
        )


class TestSummarySatellite:
    def test_quiet_run_has_no_extras(self):
        text = ExecutionMetrics().summary()
        assert "backoff=" not in text
        assert "atoms_skipped=" not in text
        assert "loop_iterations=" not in text
        assert "failovers=" not in text

    def test_backoff_reported_when_nonzero(self):
        metrics = ExecutionMetrics()
        metrics.backoff_ms += 12.5
        assert "backoff=12.5ms" in metrics.summary()

    def test_atoms_skipped_and_loop_iterations_reported(self):
        metrics = ExecutionMetrics()
        metrics.atoms_skipped += 2
        metrics.loop_iterations += 7
        text = metrics.summary()
        assert "atoms_skipped=2" in text
        assert "loop_iterations=7" in text

    def test_failovers_and_quarantines_reported_together(self):
        metrics = ExecutionMetrics()
        metrics.failovers += 1
        text = metrics.summary()
        assert "failovers=1" in text and "quarantines=0" in text


class TestMisestimateHistogram:
    def test_every_finite_factor_observed(self):
        metrics = ExecutionMetrics()
        metrics.record_misestimate(
            CardinalityMisestimate(1, 100.0, 110), contradicted=False
        )
        metrics.record_misestimate(
            CardinalityMisestimate(2, 10.0, 80), contradicted=True
        )
        hist = metrics.registry.histogram("misestimate_factor")
        assert hist.count() == 2
        assert len(metrics.misestimates) == 1

    def test_infinite_factor_skips_histogram(self):
        metrics = ExecutionMetrics()
        metrics.record_misestimate(
            CardinalityMisestimate(1, 0.0, 5), contradicted=True
        )
        assert metrics.registry.histogram("misestimate_factor").count() == 0
        assert len(metrics.misestimates) == 1

    def test_movement_histogram_labeled_by_pair(self):
        metrics = ExecutionMetrics()
        metrics.observe_movement("java->spark", 2.0)
        metrics.observe_movement("java->spark", 3.0)
        hist = metrics.registry.histogram("movement_ms")
        assert hist.count(pair="java->spark") == 2
        assert hist.sum(pair="java->spark") == pytest.approx(5.0)
