"""Exporter tests: Chrome trace, JSONL, Prometheus text, flamegraph."""

import json

import pytest

from repro.core.metrics import CostLedger
from repro.core.observability import (
    KIND_PLATFORM,
    MetricsRegistry,
    Tracer,
    prometheus_text,
    render_flamegraph,
    span_records,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)


@pytest.fixture()
def traced():
    """A small hand-built trace: root -> (op, movement event)."""
    tracer = Tracer()
    ledger = CostLedger(tracer=tracer)
    with tracer.span("execute"):
        with tracer.span("atom#1", platform="java"):
            with tracer.span("op.map", KIND_PLATFORM, platform="java"):
                ledger.charge("op.map", 4.0, "java")
            tracer.event("retry", attempt=1)
            ledger.charge("overhead", 1.0, "java")
    return tracer


class TestChromeTrace:
    def test_document_shape(self, traced):
        doc = to_chrome_trace(traced)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["trace_id"] == traced.trace_id
        assert doc["otherData"]["virtual_total_ms"] == pytest.approx(5.0)
        phases = {event["ph"] for event in doc["traceEvents"]}
        assert phases == {"M", "X", "i"}

    def test_complete_events_on_virtual_timeline(self, traced):
        doc = to_chrome_trace(traced)
        by_name = {
            e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"
        }
        # 1 virtual ms = 1000 trace microseconds
        assert by_name["op.map"]["dur"] == pytest.approx(4000.0)
        assert by_name["execute"]["dur"] == pytest.approx(5000.0)
        # children fit inside parents on the timeline
        op = by_name["op.map"]
        parent = by_name["atom#1"]
        assert parent["ts"] <= op["ts"]
        assert op["ts"] + op["dur"] <= parent["ts"] + parent["dur"] + 1e-6

    def test_span_events_become_instants(self, traced):
        doc = to_chrome_trace(traced)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "retry"
        assert instants[0]["args"] == {"attempt": 1}

    def test_incomplete_spans_skipped(self):
        tracer = Tracer()
        tracer.start_span("open")
        doc = to_chrome_trace(tracer)
        assert not [e for e in doc["traceEvents"] if e["ph"] == "X"]

    def test_write_round_trips_through_json(self, traced, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(traced, str(path))
        doc = json.loads(path.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_non_json_attributes_are_stringified(self):
        tracer = Tracer()
        with tracer.span("s", obj=object(), seq=(1, 2)):
            pass
        doc = json.dumps(to_chrome_trace(tracer))
        assert "seq" in doc  # tuples become lists, objects become repr


class TestJsonl:
    def test_one_line_per_span(self, traced):
        text = to_jsonl(traced)
        lines = text.strip().split("\n")
        assert len(lines) == len(traced.spans) == 3
        rows = [json.loads(line) for line in lines]
        assert {row["name"] for row in rows} == {
            "execute", "atom#1", "op.map",
        }

    def test_records_carry_tree_and_clock_fields(self, traced):
        rows = span_records(traced)
        root = next(r for r in rows if r["parent_id"] is None)
        assert root["name"] == "execute"
        assert root["v_ms"] == pytest.approx(5.0)
        assert root["complete"] is True
        op = next(r for r in rows if r["name"] == "op.map")
        assert op["v_self_ms"] == pytest.approx(4.0)

    def test_write_jsonl(self, traced, tmp_path):
        path = tmp_path / "spans.jsonl"
        write_jsonl(traced, str(path))
        assert len(path.read_text().strip().split("\n")) == 3


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("atoms_executed", "atoms run").inc(3)
        registry.counter("atoms_by_platform").inc(2, platform="java")
        registry.gauge("inflight").inc(1)
        text = prometheus_text(registry)
        assert "# HELP repro_atoms_executed atoms run" in text
        assert "# TYPE repro_atoms_executed counter" in text
        assert "repro_atoms_executed 3.0" in text
        assert 'repro_atoms_by_platform{platform="java"} 2.0' in text
        assert "# TYPE repro_inflight gauge" in text

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        hist = registry.histogram("ms", buckets=(1.0, 10.0))
        hist.observe(0.5, pair="a->b")
        hist.observe(1.0, pair="a->b")   # le="1.0" (closed upper bound)
        hist.observe(99.0, pair="a->b")
        text = prometheus_text(registry)
        assert 'repro_ms_bucket{pair="a->b",le="1.0"} 2' in text
        assert 'repro_ms_bucket{pair="a->b",le="10.0"} 2' in text
        assert 'repro_ms_bucket{pair="a->b",le="+Inf"} 3' in text
        assert 'repro_ms_sum{pair="a->b"} 100.5' in text
        assert 'repro_ms_count{pair="a->b"} 3' in text

    def test_metric_names_sanitised(self):
        registry = MetricsRegistry()
        registry.counter("enumerator.candidates").inc()
        text = prometheus_text(registry)
        assert "repro_enumerator_candidates 1.0" in text

    def test_write_prometheus(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        path = tmp_path / "metrics.prom"
        write_prometheus(registry, str(path))
        assert "repro_x 1.0" in path.read_text()


class TestFlamegraph:
    def test_empty_trace(self):
        assert render_flamegraph(Tracer()) == "(empty trace)"

    def test_tree_structure_and_percentages(self, traced):
        text = render_flamegraph(traced)
        lines = text.split("\n")
        assert lines[0].startswith("execute")
        assert "100.0%" in lines[0]
        assert any(
            line.strip().startswith("atom#1 [java]") for line in lines
        )
        op_line = next(line for line in lines if "op.map" in line)
        assert "80.0%" in op_line  # 4 of 5 virtual ms

    def test_min_virtual_ms_prunes_subtrees(self, traced):
        text = render_flamegraph(traced, min_virtual_ms=4.5)
        assert "op.map" not in text
        assert "execute" in text  # roots always render

    def test_bars_scale_with_fraction(self, traced):
        text = render_flamegraph(traced, width=10)
        root_line = text.split("\n")[0]
        assert "██████████" in root_line  # 100% -> full bar


class TestWorkerLanes:
    """Concurrent-scheduler spans (stamped with ``worker``) get their own
    Chrome-trace thread rows so parallel atoms render as parallel."""

    @pytest.fixture()
    def parallel_trace(self):
        tracer = Tracer()
        ledger = CostLedger(tracer=tracer)
        with tracer.span("execute"):
            with tracer.span("atom#1", platform="java", worker=0, slot=0):
                ledger.charge("op.map", 2.0, "java")
            with tracer.span("atom#2", platform="java", worker=1, slot=1):
                ledger.charge("op.map", 3.0, "java")
        return tracer

    def test_worker_spans_on_dedicated_tids(self, parallel_trace):
        doc = to_chrome_trace(parallel_trace)
        by_name = {
            e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"
        }
        assert by_name["atom#1"]["tid"] == 100
        assert by_name["atom#2"]["tid"] == 101
        assert by_name["execute"]["tid"] == 2  # executor layer row

    def test_worker_thread_name_metadata(self, parallel_trace):
        doc = to_chrome_trace(parallel_trace)
        names = {
            e["tid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names[100] == "worker-0"
        assert names[101] == "worker-1"
        assert names[2] == "executor"

    def test_flamegraph_column_adapts_to_long_labels(self):
        tracer = Tracer()
        ledger = CostLedger(tracer=tracer)
        long_name = "atom#1." + "x" * 70
        with tracer.span("execute"):
            with tracer.span(long_name, platform="java", worker=3):
                ledger.charge("op.map", 1.0, "java")
        text = render_flamegraph(tracer)
        lines = text.split("\n")
        # the long label is not truncated, and every row still aligns
        label_line = next(line for line in lines if long_name in line)
        assert f"{long_name} [java] w3" in label_line
        columns = {line.rindex("%") for line in lines}
        assert len(columns) == 1
