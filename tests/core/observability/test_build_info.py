"""Regression tests for info-gauge (re-)registration.

``repro serve-metrics`` restarted within one process used to call
``gauge("run_info").set(1, **labels)`` directly; because every label set
keys its own series, a restart under a new git sha or config epoch
accreted a second, stale ``repro_run_info`` series in the exposition.
:func:`set_build_info` makes registration idempotent — these tests pin
that exactly one series survives any number of re-registrations.
"""

from __future__ import annotations

from repro.core.observability import (
    MetricsRegistry,
    prometheus_text,
    set_build_info,
)
from repro.core.serving import ServingDaemon


def _run_info_lines(registry: MetricsRegistry) -> list[str]:
    return [
        line
        for line in prometheus_text(registry, "repro_").splitlines()
        if line.startswith("repro_run_info{")
    ]


class TestSetBuildInfo:
    def test_restart_with_new_labels_keeps_one_series(self):
        registry = MetricsRegistry()
        set_build_info(registry, git_sha="a" * 40, config_epoch="epoch-1")
        # Restart in the same process, under new build identity.
        set_build_info(registry, git_sha="b" * 40, config_epoch="epoch-2")
        gauge = registry.gauge("run_info")
        assert len(gauge.series) == 1
        lines = _run_info_lines(registry)
        assert len(lines) == 1
        assert "b" * 40 in lines[0] and "epoch-2" in lines[0]
        assert "a" * 40 not in lines[0]

    def test_same_labels_are_stable(self):
        registry = MetricsRegistry()
        for _ in range(3):
            set_build_info(registry, git_sha="c" * 40, config_epoch="e")
        assert len(registry.gauge("run_info").series) == 1
        assert registry.gauge("run_info").value(
            git_sha="c" * 40, config_epoch="e"
        ) == 1

    def test_custom_gauge_name(self):
        registry = MetricsRegistry()
        set_build_info(registry, name="build_info", version="1")
        set_build_info(registry, name="build_info", version="2")
        assert len(registry.gauge("build_info").series) == 1

    def test_serving_daemon_restamp_keeps_one_series(self):
        daemon = ServingDaemon(port=0)
        # Re-stamping (what a restart of the daemon's identity does)
        # must not accrete series either.
        daemon._stamp_build_info()
        daemon._stamp_build_info()
        assert len(_run_info_lines(daemon.registry)) == 1
