"""The stdlib Prometheus scrape endpoint (``repro serve-metrics``)."""

import urllib.error
import urllib.request

import pytest

from repro.core.observability import MetricsHTTPServer, MetricsRegistry


@pytest.fixture()
def registry():
    reg = MetricsRegistry()
    reg.counter("atoms_executed", "task atoms executed").inc(5)
    reg.gauge("queue_depth", "pending atoms").set(2)
    return reg


def _get(server, path):
    url = f"http://{server.host}:{server.port}{path}"
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read().decode()


class TestMetricsHTTPServer:
    def test_metrics_endpoint_serves_prometheus_text(self, registry):
        with MetricsHTTPServer(registry, port=0) as server:
            status, headers, body = _get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "# TYPE repro_atoms_executed counter" in body
        assert "repro_atoms_executed 5.0" in body
        assert "repro_queue_depth 2.0" in body

    def test_metrics_render_live_counters(self, registry):
        """The exposition is rendered per request, not cached at bind."""
        with MetricsHTTPServer(registry, port=0) as server:
            _, _, before = _get(server, "/metrics")
            registry.counter("atoms_executed", "").inc(3)
            _, _, after = _get(server, "/metrics")
        assert "repro_atoms_executed 5.0" in before
        assert "repro_atoms_executed 8.0" in after

    def test_healthz_and_index(self, registry):
        with MetricsHTTPServer(registry, port=0) as server:
            health_status, _, health = _get(server, "/healthz")
            index_status, _, index = _get(server, "/")
        assert (health_status, health) == (200, "ok\n")
        assert index_status == 200
        assert "/metrics" in index

    def test_unknown_path_is_404(self, registry):
        with MetricsHTTPServer(registry, port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server, "/nope")
            assert excinfo.value.code == 404

    def test_port_zero_picks_free_port_and_url(self, registry):
        server = MetricsHTTPServer(registry, port=0)
        assert server.port == 0
        with server:
            assert server.port > 0
            assert server.url.endswith(f":{server.port}/metrics")
        # stop() is idempotent and releases the port state
        server.stop()

    def test_custom_prefix(self, registry):
        with MetricsHTTPServer(registry, port=0, prefix="acme_") as server:
            _, _, body = _get(server, "/metrics")
        assert "acme_atoms_executed 5.0" in body
        assert "repro_" not in body
