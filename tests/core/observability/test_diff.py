"""Trace diffing: structural alignment of two span logs.

Covers the alignment rules (``#<digits>`` normalisation, identity-attr
whitelist, occurrence indexing), the reported deltas (per-layer totals,
span moves, movement hops, candidate flips), the renderer, and the
``repro trace-diff`` CLI wiring — both on synthetic records and on real
traces exported from two runs of the same workload.
"""

from __future__ import annotations

import json
from operator import itemgetter

import pytest

from repro import RheemContext
from repro.cli import main
from repro.core.observability import (
    diff_files,
    diff_traces,
    load_records,
    render_diff,
)
from repro.core.observability.diff import span_identity
from repro.errors import ValidationError


def _span(name, kind="executor", v_ms=1.0, v_self_ms=None, **attributes):
    return {
        "name": name,
        "kind": kind,
        "v_ms": v_ms,
        "v_self_ms": v_ms if v_self_ms is None else v_self_ms,
        "attributes": attributes,
    }


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
class TestLoadRecords:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        records = [_span("atom#3"), _span("atom#4")]
        path.write_text(
            "\n".join(json.dumps(r) for r in records) + "\n\n",
            encoding="utf-8",
        )
        assert load_records(str(path)) == records

    def test_bad_json_is_a_validation_error(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "x"}\nnot json\n', encoding="utf-8")
        with pytest.raises(ValidationError, match=":2:"):
            load_records(str(path))

    def test_missing_name_is_a_validation_error(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind": "executor"}\n', encoding="utf-8")
        with pytest.raises(ValidationError, match="missing 'name'"):
            load_records(str(path))


# ----------------------------------------------------------------------
# identity + alignment
# ----------------------------------------------------------------------
class TestAlignment:
    def test_numeric_ids_are_normalised(self):
        assert span_identity(_span("atom#12")) == span_identity(
            _span("atom#97")
        )

    def test_identity_attrs_distinguish(self):
        a = _span("atom#1", platform="java")
        b = _span("atom#1", platform="spark")
        assert span_identity(a) != span_identity(b)

    def test_outcome_attrs_do_not_distinguish(self):
        """``batch_kernel`` is what a run *did* — a compiled and an
        interpreted trace of the same plan must still align."""
        a = _span("atom#1", platform="java", batch_kernel="fused.compiled")
        b = _span("atom#1", platform="java")
        assert span_identity(a) == span_identity(b)

    def test_repeated_spans_pair_by_occurrence(self):
        diff = diff_traces(
            [_span("atom#1", v_ms=1.0), _span("atom#2", v_ms=2.0)],
            [_span("atom#8", v_ms=1.0), _span("atom#9", v_ms=5.0)],
        )
        assert not diff.only_in_a and not diff.only_in_b
        assert [m.delta for m in diff.matched] == [3.0, 0.0]

    def test_unmatched_spans_are_reported(self):
        diff = diff_traces(
            [_span("atom#1"), _span("spill", kind="storage")],
            [_span("atom#1")],
        )
        assert [r["name"] for r in diff.only_in_a] == ["spill"]
        assert diff.only_in_b == []


# ----------------------------------------------------------------------
# deltas
# ----------------------------------------------------------------------
class TestDeltas:
    def test_layer_totals_sum_self_time(self):
        diff = diff_traces(
            [
                _span("a", kind="executor", v_self_ms=1.0),
                _span("b", kind="executor", v_self_ms=2.0),
                _span("c", kind="optimizer", v_self_ms=4.0),
            ],
            [_span("a", kind="executor", v_self_ms=8.0)],
        )
        assert diff.layer_totals_a == {"executor": 3.0, "optimizer": 4.0}
        assert diff.layer_totals_b == {"executor": 8.0}
        assert diff.total_a == 7.0
        assert diff.total_b == 8.0

    def test_matched_sorted_by_absolute_delta(self):
        diff = diff_traces(
            [_span("a", v_ms=1.0), _span("b", v_ms=10.0)],
            [_span("a", v_ms=2.0), _span("b", v_ms=4.0)],
        )
        assert [m.delta for m in diff.matched] == [-6.0, 1.0]

    def test_candidate_flip_and_winner_change(self):
        def candidates(java, spark):
            return [
                _span(
                    "candidate",
                    kind="optimizer",
                    platforms=["java"],
                    feasible=True,
                    estimated_cost_ms=java,
                ),
                _span(
                    "candidate",
                    kind="optimizer",
                    platforms=["spark"],
                    feasible=True,
                    estimated_cost_ms=spark,
                ),
            ]

        diff = diff_traces(candidates(1.0, 2.0), candidates(5.0, 2.0))
        assert len(diff.candidate_flips) == 1
        flip = diff.candidate_flips[0]
        assert {flip.first, flip.second} == {"java", "spark"}
        assert diff.winner_a == "java"
        assert diff.winner_b == "spark"

    def test_infeasible_candidates_are_ignored(self):
        records = [
            _span(
                "candidate",
                kind="optimizer",
                platforms=["java"],
                feasible=False,
                estimated_cost_ms=1.0,
            )
        ]
        diff = diff_traces(records, records)
        assert diff.winner_a is None and diff.winner_b is None


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
class TestRender:
    def test_identical_traces_render_no_differences(self):
        records = [_span("atom#1", platform="java")]
        text = render_diff(diff_traces(records, records))
        assert "no virtual-time differences" in text
        assert "<-- changed" not in text

    def test_changed_layers_and_moves_are_marked(self):
        diff = diff_traces(
            [_span("atom#1", v_ms=1.0)], [_span("atom#1", v_ms=3.0)]
        )
        text = render_diff(diff, label_a="before", label_b="after")
        assert "<-- changed" in text
        assert "biggest span moves" in text
        assert "+2.0000ms" in text

    def test_movement_hops_are_called_out(self):
        diff = diff_traces(
            [_span("atom#1")],
            [_span("atom#1"), _span("move.java->spark", kind="movement")],
        )
        text = render_diff(diff)
        assert "movement hops changed:" in text
        assert "+ added   movement/move.java->spark" in text

    def test_winner_change_is_rendered(self):
        a = [
            _span(
                "candidate",
                kind="optimizer",
                platforms=["java"],
                feasible=True,
                estimated_cost_ms=1.0,
            )
        ]
        b = [
            _span(
                "candidate",
                kind="optimizer",
                platforms=["spark"],
                feasible=True,
                estimated_cost_ms=1.0,
            )
        ]
        text = render_diff(diff_traces(a, b))
        assert "{java} -> {spark}" in text


# ----------------------------------------------------------------------
# end to end: real traces + CLI
# ----------------------------------------------------------------------
def _write_trace(path):
    from repro import Tracer
    from repro.core.observability import write_jsonl

    tracer = Tracer()
    ctx = RheemContext(tracer=tracer)
    (
        ctx.collection([(i % 3, i) for i in range(30)])
        .map(itemgetter(1, 0))
        .reduce_by(itemgetter(0), lambda x, y: (x[0], x[1] + y[1]))
        .sort(itemgetter(0))
        .collect_with_metrics(platform="java")
    )
    write_jsonl(tracer, str(path))


class TestEndToEnd:
    def test_two_runs_of_the_same_plan_align(self, tmp_path):
        path_a = tmp_path / "a.jsonl"
        path_b = tmp_path / "b.jsonl"
        _write_trace(path_a)
        _write_trace(path_b)
        diff = diff_traces(
            load_records(str(path_a)), load_records(str(path_b))
        )
        assert not diff.only_in_a and not diff.only_in_b
        assert all(m.delta == 0.0 for m in diff.matched)
        text = diff_files(str(path_a), str(path_b))
        assert "no virtual-time differences" in text

    def test_cli_trace_diff(self, tmp_path, capsys):
        path_a = tmp_path / "a.jsonl"
        path_b = tmp_path / "b.jsonl"
        _write_trace(path_a)
        _write_trace(path_b)
        assert main(["trace-diff", str(path_a), str(path_b)]) == 0
        out = capsys.readouterr().out
        assert "virtual time:" in out
        assert str(path_a) in out
