"""Unit tests for the metrics registry."""

import json

import pytest

from repro.core.observability import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("atoms")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3.0

    def test_negative_inc_rejected(self):
        with pytest.raises(ValueError):
            Counter("atoms").inc(-1)

    def test_labeled_series_are_independent(self):
        counter = Counter("atoms")
        counter.inc(platform="java")
        counter.inc(3, platform="spark")
        assert counter.value(platform="java") == 1.0
        assert counter.value(platform="spark") == 3.0
        assert counter.value(platform="postgres") == 0.0
        assert counter.total() == 4.0

    def test_label_order_does_not_matter(self):
        counter = Counter("x")
        counter.inc(a="1", b="2")
        counter.inc(b="2", a="1")
        assert counter.value(a="1", b="2") == 2.0


class TestGauge:
    def test_dec_allowed(self):
        gauge = Gauge("inflight")
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value() == 3.0


class TestHistogram:
    def test_observe_count_sum(self):
        histogram = Histogram("ms")
        for value in (0.2, 3.0, 700.0):
            histogram.observe(value)
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(703.2)

    def test_bucket_boundaries(self):
        histogram = Histogram("f", buckets=(1.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(1.0)   # le=1.0 bucket (closed upper bound)
        histogram.observe(5.0)
        histogram.observe(100.0)  # overflow bucket
        series = histogram.series[()]
        assert series.counts == [2, 1, 1]
        assert series.mean == pytest.approx(26.625)

    def test_labeled_series(self):
        histogram = Histogram("movement_ms")
        histogram.observe(1.0, pair="java->spark")
        histogram.observe(2.0, pair="java->spark")
        histogram.observe(9.0, pair="spark->postgres")
        assert histogram.count(pair="java->spark") == 2
        assert histogram.sum(pair="spark->postgres") == 9.0


class TestRegistry:
    def test_create_on_first_use_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert "a" in registry
        assert "b" not in registry

    def test_type_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.histogram("x")
        registry.gauge("g")
        with pytest.raises(TypeError):
            registry.counter("g")

    def test_help_backfilled_once(self):
        registry = MetricsRegistry()
        registry.counter("a")
        assert registry.counter("a", "first help").help == "first help"
        assert registry.counter("a", "second").help == "first help"

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("atoms").inc(platform="java")
        registry.histogram("ms").observe(4.2, pair="a->b")
        snapshot = registry.snapshot()
        parsed = json.loads(json.dumps(snapshot))
        assert parsed["atoms"]["type"] == "counter"
        assert parsed["atoms"]["series"]["platform=java"] == 1.0
        hist = parsed["ms"]["series"]["pair=a->b"]
        assert hist["count"] == 1
        assert hist["sum"] == pytest.approx(4.2)

    def test_instruments_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zz")
        registry.counter("aa")
        assert [i.name for i in registry.instruments()] == ["aa", "zz"]
