"""Unit tests for the metrics registry."""

import json

import pytest

from repro.core.observability import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("atoms")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3.0

    def test_negative_inc_rejected(self):
        with pytest.raises(ValueError):
            Counter("atoms").inc(-1)

    def test_labeled_series_are_independent(self):
        counter = Counter("atoms")
        counter.inc(platform="java")
        counter.inc(3, platform="spark")
        assert counter.value(platform="java") == 1.0
        assert counter.value(platform="spark") == 3.0
        assert counter.value(platform="postgres") == 0.0
        assert counter.total() == 4.0

    def test_label_order_does_not_matter(self):
        counter = Counter("x")
        counter.inc(a="1", b="2")
        counter.inc(b="2", a="1")
        assert counter.value(a="1", b="2") == 2.0


class TestGauge:
    def test_dec_allowed(self):
        gauge = Gauge("inflight")
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value() == 3.0


class TestHistogram:
    def test_observe_count_sum(self):
        histogram = Histogram("ms")
        for value in (0.2, 3.0, 700.0):
            histogram.observe(value)
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(703.2)

    def test_bucket_boundaries(self):
        histogram = Histogram("f", buckets=(1.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(1.0)   # le=1.0 bucket (closed upper bound)
        histogram.observe(5.0)
        histogram.observe(100.0)  # overflow bucket
        series = histogram.series[()]
        assert series.counts == [2, 1, 1]
        assert series.mean == pytest.approx(26.625)

    def test_labeled_series(self):
        histogram = Histogram("movement_ms")
        histogram.observe(1.0, pair="java->spark")
        histogram.observe(2.0, pair="java->spark")
        histogram.observe(9.0, pair="spark->postgres")
        assert histogram.count(pair="java->spark") == 2
        assert histogram.sum(pair="spark->postgres") == 9.0


class TestQuantileEdgeCases:
    """The adaptive drift trigger leans on these exact semantics."""

    def test_empty_series_is_zero(self):
        histogram = Histogram("f", buckets=(1.0, 4.0))
        assert histogram.quantile(0.9) == 0.0
        assert histogram.quantile(0.0) == 0.0
        assert histogram.quantile(1.0) == 0.0

    def test_single_sample_is_exact_at_any_q(self):
        # bucket bound for 2.5 is 4.0; vmin/vmax clamping must return
        # the sample itself, not the bucket's upper bound
        histogram = Histogram("f", buckets=(1.0, 4.0, 16.0))
        histogram.observe(2.5)
        for q in (0.0, 0.5, 0.9, 1.0):
            assert histogram.quantile(q) == 2.5

    def test_all_equal_samples_are_exact(self):
        histogram = Histogram("f", buckets=(1.0, 4.0, 16.0))
        for _ in range(10):
            histogram.observe(3.0)
        for q in (0.1, 0.5, 0.9, 1.0):
            assert histogram.quantile(q) == 3.0

    def test_overflow_bucket_reports_exact_max(self):
        histogram = Histogram("f", buckets=(1.0, 4.0))
        histogram.observe(1000.0)  # beyond the last bound
        assert histogram.quantile(0.9) == 1000.0

    def test_clamped_to_observed_range(self):
        # p90 of {0.5, 0.6}: bucket upper bound is 1.0 but nothing that
        # large was observed — clamp to vmax
        histogram = Histogram("f", buckets=(1.0, 4.0))
        histogram.observe(0.5)
        histogram.observe(0.6)
        assert histogram.quantile(0.9) == 0.6
        # any q stays inside the exact observed range
        assert 0.5 <= histogram.quantile(0.0) <= 0.6

    def test_bucket_resolution_between_bounds(self):
        histogram = Histogram("f", buckets=(1.0, 2.0, 4.0, 8.0))
        for value in (1.5, 1.5, 1.5, 7.0):
            histogram.observe(value)
        # p50 lands in the (1, 2] bucket -> its upper bound
        assert histogram.quantile(0.5) == 2.0
        # p100 lands in the (4, 8] bucket, clamped to exact max 7.0
        assert histogram.quantile(1.0) == 7.0

    def test_fraction_out_of_range_rejected(self):
        histogram = Histogram("f", buckets=(1.0,))
        histogram.observe(0.5)
        series = histogram.series[()]
        with pytest.raises(ValueError):
            series.quantile(-0.1)
        with pytest.raises(ValueError):
            series.quantile(1.1)

    def test_per_label_quantiles_are_independent(self):
        histogram = Histogram("f", buckets=(1.0, 4.0))
        histogram.observe(0.5, kind="filter")
        histogram.observe(100.0, kind="flatmap")
        assert histogram.quantile(0.9, kind="filter") == 0.5
        assert histogram.quantile(0.9, kind="flatmap") == 100.0
        assert histogram.quantile(0.9, kind="join") == 0.0

    def test_merge_preserves_quantile_clamping(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("f", buckets=(1.0, 4.0)).observe(0.5)
        b.histogram("f", buckets=(1.0, 4.0)).observe(0.7)
        a.merge_from(b)
        merged = a.histogram("f")
        assert merged.count() == 2
        assert merged.quantile(1.0) == 0.7  # vmax travelled with the merge
        assert 0.5 <= merged.quantile(0.0) <= 0.7  # vmin bounds the floor


class TestRegistry:
    def test_create_on_first_use_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert "a" in registry
        assert "b" not in registry

    def test_type_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.histogram("x")
        registry.gauge("g")
        with pytest.raises(TypeError):
            registry.counter("g")

    def test_help_backfilled_once(self):
        registry = MetricsRegistry()
        registry.counter("a")
        assert registry.counter("a", "first help").help == "first help"
        assert registry.counter("a", "second").help == "first help"

    def test_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("atoms").inc(platform="java")
        registry.histogram("ms").observe(4.2, pair="a->b")
        snapshot = registry.snapshot()
        parsed = json.loads(json.dumps(snapshot))
        assert parsed["atoms"]["type"] == "counter"
        assert parsed["atoms"]["series"]["platform=java"] == 1.0
        hist = parsed["ms"]["series"]["pair=a->b"]
        assert hist["count"] == 1
        assert hist["sum"] == pytest.approx(4.2)

    def test_instruments_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zz")
        registry.counter("aa")
        assert [i.name for i in registry.instruments()] == ["aa", "zz"]
