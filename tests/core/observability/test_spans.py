"""Unit tests for the span/tracer core."""

import pytest

from repro.core.metrics import CostLedger
from repro.core.observability import (
    KIND_OPTIMIZER,
    KIND_PLATFORM,
    NULL_SPAN,
    Tracer,
    maybe_span,
)


class TestSpanTree:
    def test_nesting_assigns_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert tracer.roots() == [outer]
        assert tracer.children(outer) == [inner]

    def test_span_ids_unique_and_ordered(self):
        tracer = Tracer()
        spans = []
        for name in ("a", "b", "c"):
            with tracer.span(name) as span:
                spans.append(span)
        ids = [span.span_id for span in spans]
        assert ids == sorted(ids)
        assert len(set(ids)) == 3

    def test_trace_ids_differ_between_tracers(self):
        assert Tracer().trace_id != Tracer().trace_id

    def test_find_by_name(self):
        tracer = Tracer()
        with tracer.span("atom"):
            pass
        with tracer.span("atom"):
            pass
        assert len(tracer.find("atom")) == 2
        assert tracer.find("missing") == []

    def test_attributes_and_set_chaining(self):
        tracer = Tracer()
        with tracer.span("s", KIND_OPTIMIZER, alpha=1) as span:
            span.set(beta=2).set(gamma=3)
        assert span.kind == KIND_OPTIMIZER
        assert span.attributes == {"alpha": 1, "beta": 2, "gamma": 3}

    def test_kind_named_attribute_does_not_collide(self):
        # "kind" is positional-only on the tracer API, so an attribute
        # called kind= must pass through untouched.
        tracer = Tracer()
        with tracer.span("op", KIND_PLATFORM, kind="groupby.hash") as span:
            pass
        assert span.kind == KIND_PLATFORM
        assert span.attributes["kind"] == "groupby.hash"

    def test_end_span_closes_abandoned_children(self):
        tracer = Tracer()
        outer = tracer.start_span("outer")
        inner = tracer.start_span("inner")
        tracer.end_span(outer)
        assert inner.complete and outer.complete
        assert tracer.current is None

    def test_end_unopened_span_raises(self):
        tracer = Tracer()
        with tracer.span("a") as span:
            pass
        with pytest.raises(ValueError):
            tracer.end_span(span)

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom") as span:
                raise RuntimeError("x")
        assert span.complete
        assert tracer.current is None

    def test_events_attach_to_current_span(self):
        tracer = Tracer()
        with tracer.span("atom") as span:
            tracer.event("retry", attempt=2)
        assert span.events[0].name == "retry"
        assert span.events[0].attributes == {"attempt": 2}

    def test_event_outside_span_is_dropped(self):
        tracer = Tracer()
        tracer.event("orphan")
        assert tracer.spans == []


class TestVirtualClock:
    def test_ledger_charge_advances_clock(self):
        tracer = Tracer()
        ledger = CostLedger(tracer=tracer)
        with tracer.span("outer") as outer:
            ledger.charge("op.map", 5.0, "java")
            with tracer.span("inner") as inner:
                ledger.charge("op.sort", 7.0, "java")
        assert tracer.total_virtual_ms() == pytest.approx(12.0)
        assert outer.virtual_ms == pytest.approx(12.0)
        assert inner.virtual_ms == pytest.approx(7.0)
        # self time: 5 on outer, 7 on inner
        assert outer.v_self == pytest.approx(5.0)
        assert inner.v_self == pytest.approx(7.0)

    def test_sibling_subtrees_partition_the_clock(self):
        tracer = Tracer()
        ledger = CostLedger(tracer=tracer)
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                ledger.charge("x", 3.0, "java")
            with tracer.span("b") as b:
                ledger.charge("y", 4.0, "java")
        assert a.virtual_ms + b.virtual_ms == pytest.approx(root.virtual_ms)

    def test_merge_does_not_double_count(self):
        tracer = Tracer()
        outer_ledger = CostLedger(tracer=tracer)
        local = CostLedger(tracer=tracer)
        with tracer.span("run"):
            local.charge("op", 2.0, "java")
            outer_ledger.merge(local)
        assert tracer.total_virtual_ms() == pytest.approx(2.0)
        assert outer_ledger.total_ms == pytest.approx(2.0)

    def test_open_span_reports_zero_durations(self):
        tracer = Tracer()
        span = tracer.start_span("open")
        assert span.virtual_ms == 0.0
        assert span.wall_ms == 0.0
        assert not span.complete


class TestMaybeSpan:
    def test_none_tracer_returns_shared_null_context(self):
        assert maybe_span(None, "anything") is NULL_SPAN
        with maybe_span(None, "anything") as span:
            assert span is None

    def test_tracer_returns_real_span(self):
        tracer = Tracer()
        with maybe_span(tracer, "real", KIND_PLATFORM, op="x") as span:
            assert span is not None
        assert span.name == "real"
        assert span.attributes == {"op": "x"}
