"""Schema validation for the machine-readable benchmark payloads.

``benchmarks/conftest.py`` serialises every ``record_bench`` payload to
``benchmarks/results/BENCH_<exp_id>.json`` with run provenance merged
in.  CI and dashboards assert on these files, so their shape is a
contract: this suite validates every committed/produced payload against
a hand-rolled schema (no external jsonschema dependency) and pins the
provenance fields the conftest hook promises.
"""

from __future__ import annotations

import json
import os
import re
import string

import pytest

RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "benchmarks",
    "results",
)

#: provenance keys the conftest hook always merges in
PROVENANCE_KEYS = ("exp_id", "scale", "git_sha", "recorded_at_utc")
EXP_ID_RE = re.compile(r"^(FIG|ABL)[0-9]+[a-zA-Z]?$")
TIMESTAMP_RE = re.compile(
    r"^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}(\.\d+)?(\+\d{2}:\d{2}|Z)$"
)


def bench_files():
    if not os.path.isdir(RESULTS_DIR):
        return []
    return sorted(
        name
        for name in os.listdir(RESULTS_DIR)
        if name.startswith("BENCH_") and name.endswith(".json")
    )


def validate_value(value, path):
    """Payload values must stay JSON-plain: scalars, lists, flat-ish
    string-keyed objects — no NaN/Infinity (invalid JSON), no nulls
    hiding failed measurements except where a key opts in."""
    if isinstance(value, float):
        assert value == value, f"{path}: NaN is not valid JSON"
        assert value not in (float("inf"), float("-inf")), (
            f"{path}: Infinity is not valid JSON"
        )
    elif isinstance(value, dict):
        for key, item in value.items():
            assert isinstance(key, str), f"{path}: non-string key {key!r}"
            validate_value(item, f"{path}.{key}")
    elif isinstance(value, list):
        for index, item in enumerate(value):
            validate_value(item, f"{path}[{index}]")
    else:
        assert value is None or isinstance(value, (str, int, bool)), (
            f"{path}: unexpected type {type(value).__name__}"
        )


def validate_payload(name, document):
    assert isinstance(document, dict), f"{name}: top level must be an object"
    for key in PROVENANCE_KEYS:
        assert key in document, f"{name}: missing provenance key {key!r}"
    exp_id = document["exp_id"]
    assert EXP_ID_RE.match(exp_id), f"{name}: malformed exp_id {exp_id!r}"
    assert name == f"BENCH_{exp_id}.json", (
        f"{name}: filename does not match exp_id {exp_id!r}"
    )
    assert document["scale"] in ("full", "quick"), (
        f"{name}: scale must be full|quick, got {document['scale']!r}"
    )
    sha = document["git_sha"]
    assert sha is None or (
        isinstance(sha, str)
        and len(sha) == 40
        and all(c in string.hexdigits for c in sha)
    ), f"{name}: git_sha must be a 40-hex sha or null"
    assert TIMESTAMP_RE.match(document["recorded_at_utc"]), (
        f"{name}: recorded_at_utc must be ISO-8601 UTC"
    )
    # beyond provenance, a payload must actually carry results
    results = {
        k: v for k, v in document.items() if k not in PROVENANCE_KEYS
    }
    assert results, f"{name}: payload has no experiment data"
    for key, value in results.items():
        validate_value(value, f"{name}:{key}")


def test_results_dir_has_payloads():
    """The repo ships at least one recorded payload (ABL11 baseline)."""
    assert bench_files(), f"no BENCH_*.json under {RESULTS_DIR}"


@pytest.mark.parametrize("name", bench_files() or ["<none>"])
def test_bench_payload_schema(name):
    if name == "<none>":  # pragma: no cover - covered by the test above
        pytest.skip("no payloads recorded")
    with open(os.path.join(RESULTS_DIR, name), encoding="utf-8") as fh:
        document = json.load(fh)  # strict JSON: rejects NaN-bearing files
    validate_payload(name, document)


def test_validator_rejects_bad_documents():
    good = {
        "exp_id": "ABL1",
        "scale": "quick",
        "git_sha": "a" * 40,
        "recorded_at_utc": "2026-08-06T00:00:00+00:00",
        "speedup": 2.0,
    }
    validate_payload("BENCH_ABL1.json", good)
    with pytest.raises(AssertionError, match="provenance"):
        validate_payload("BENCH_ABL1.json", {"exp_id": "ABL1"})
    with pytest.raises(AssertionError, match="filename"):
        validate_payload("BENCH_ABL2.json", good)
    with pytest.raises(AssertionError, match="scale"):
        validate_payload(
            "BENCH_ABL1.json", {**good, "scale": "medium"}
        )
    with pytest.raises(AssertionError, match="git_sha"):
        validate_payload("BENCH_ABL1.json", {**good, "git_sha": "tip"})
    with pytest.raises(AssertionError, match="NaN"):
        validate_payload(
            "BENCH_ABL1.json", {**good, "speedup": float("nan")}
        )
    with pytest.raises(AssertionError, match="no experiment data"):
        validate_payload(
            "BENCH_ABL1.json",
            {k: good[k] for k in PROVENANCE_KEYS},
        )
