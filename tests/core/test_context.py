"""Tests for the fluent DataQuanta API and RheemContext facade."""

import pytest

from repro import RheemContext
from repro.core.logical.operators import Map
from repro.errors import ValidationError


class TestContextConfiguration:
    def test_default_platforms_registered(self, ctx):
        assert {p.name for p in ctx.platforms} == {"java", "spark", "postgres"}

    def test_platform_lookup(self, ctx):
        assert ctx.platform("java").name == "java"
        with pytest.raises(ValidationError):
            ctx.platform("flink")

    def test_set_default_platform_validates(self, ctx):
        ctx.set_default_platform("java")
        with pytest.raises(ValidationError):
            ctx.set_default_platform("nope")
        ctx.set_default_platform(None)

    def test_default_platform_applied(self, ctx):
        ctx.set_default_platform("java")
        _, metrics = ctx.collection([1, 2]).collect_with_metrics()
        assert set(metrics.by_platform()) == {"java"}


class TestTransformations:
    def test_map(self, ctx):
        assert ctx.collection([1, 2]).map(lambda x: -x).collect() == [-1, -2]

    def test_filter(self, ctx):
        assert ctx.collection(range(6)).filter(lambda x: x % 2).collect() == [1, 3, 5]

    def test_flat_map(self, ctx):
        out = ctx.collection(["ab", "c"]).flat_map(list).collect()
        assert out == ["a", "b", "c"]

    def test_zip_with_id_dense_unique(self, ctx):
        out = ctx.collection(["x", "y", "z"]).zip_with_id().collect()
        assert sorted(i for i, _ in out) == [0, 1, 2]
        assert {v for _, v in out} == {"x", "y", "z"}

    def test_group_by(self, ctx):
        out = dict(ctx.collection(range(6)).group_by(lambda x: x % 2).collect())
        assert sorted(out[0]) == [0, 2, 4]
        assert sorted(out[1]) == [1, 3, 5]

    def test_reduce_by(self, ctx):
        data = [("a", 2), ("b", 3), ("a", 5)]
        out = ctx.collection(data).reduce_by(
            lambda kv: kv[0], lambda x, y: (x[0], x[1] + y[1])
        ).collect()
        assert sorted(out) == [("a", 7), ("b", 3)]

    def test_reduce(self, ctx):
        assert ctx.collection([1, 2, 3, 4]).reduce(lambda a, b: a + b).collect() == [10]

    def test_reduce_empty(self, ctx):
        assert ctx.collection([]).reduce(lambda a, b: a + b).collect() == []

    def test_sort(self, ctx):
        assert ctx.collection([3, 1, 2]).sort(lambda x: x).collect() == [1, 2, 3]

    def test_sort_reverse(self, ctx):
        out = ctx.collection([3, 1, 2]).sort(lambda x: x, reverse=True).collect()
        assert out == [3, 2, 1]

    def test_distinct(self, ctx):
        assert sorted(ctx.collection([1, 2, 1, 3, 2]).distinct().collect()) == [1, 2, 3]

    def test_sample(self, ctx):
        out = ctx.collection(range(100)).sample(10, seed=1).collect()
        assert len(out) == 10
        assert set(out) <= set(range(100))

    def test_count(self, ctx):
        assert ctx.collection(["a"] * 42).count().collect() == [42]

    def test_join(self, ctx):
        left = ctx.collection([(1, "l1"), (2, "l2")])
        right = ctx.collection([(2, "r2"), (3, "r3")])
        out = left.join(right, lambda t: t[0], lambda t: t[0]).collect()
        assert out == [((2, "l2"), (2, "r2"))]

    def test_cross(self, ctx):
        out = ctx.collection([1, 2]).cross(ctx.collection(["a"])).collect()
        assert sorted(out) == [(1, "a"), (2, "a")]

    def test_union(self, ctx):
        out = ctx.collection([1]).union(ctx.collection([2, 3])).collect()
        assert sorted(out) == [1, 2, 3]

    def test_self_binary(self, ctx):
        dq = ctx.collection([1, 2])
        assert len(dq.cross(dq).collect()) == 4

    def test_chained_pipeline(self, ctx):
        out = (
            ctx.collection(range(20))
            .filter(lambda x: x % 2 == 0)
            .map(lambda x: x * x)
            .sort(lambda x: -x)
            .collect()
        )
        assert out[0] == 324

    def test_handle_reusable_after_collect(self, ctx):
        dq = ctx.collection([1, 2, 3]).map(lambda x: x + 1)
        first = dq.collect()
        second = dq.collect()
        assert first == second == [2, 3, 4]
        extended = dq.filter(lambda x: x > 2).collect()
        assert extended == [3, 4]

    def test_wordcount_example(self, ctx):
        lines = ["the quick fox", "the lazy dog", "the fox"]
        counts = dict(
            ctx.collection(lines)
            .flat_map(str.split)
            .map(lambda w: (w, 1))
            .reduce_by(lambda kv: kv[0], lambda a, b: (a[0], a[1] + b[1]))
            .collect()
        )
        assert counts["the"] == 3
        assert counts["fox"] == 2
        assert counts["dog"] == 1


class TestTextFile:
    def test_textfile_source(self, ctx, tmp_path):
        path = tmp_path / "lines.txt"
        path.write_text("alpha\nbeta\ngamma\n")
        out = ctx.textfile(str(path)).filter(lambda l: "a" in l).collect()
        assert out == ["alpha", "beta", "gamma"]

    def test_textfile_strips_newlines(self, ctx, tmp_path):
        path = tmp_path / "lines.txt"
        path.write_text("one\ntwo\n")
        assert ctx.textfile(str(path)).collect() == ["one", "two"]


class TestRepeatBuilder:
    def test_body_must_use_state_handle(self, ctx):
        other = ctx.collection([1])
        with pytest.raises(ValidationError, match="state handle"):
            ctx.collection([0]).repeat(2, lambda dq: other.map(lambda x: x))

    def test_apply_operator_extension_point(self, ctx):
        out = (
            ctx.collection([1, 2])
            .apply_operator(Map(lambda x: x * 3, name="custom"))
            .collect()
        )
        assert out == [3, 6]

    def test_explain_shows_plan(self, ctx):
        dq = ctx.collection([1]).map(lambda x: x)
        assert "CollectionSource" in dq.explain()
        assert "Map" in dq.explain()
