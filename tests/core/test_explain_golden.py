"""Golden-file regression tests for ``repro explain``.

The explain output is the user-facing contract of the decision trace:
candidate enumeration, winner + reason, operator assignment, atom cuts,
compiled data path, and the calibration report.  These tests freeze its
*shape* against goldens under ``tests/core/goldens/``.

Volatile tokens are scrubbed before comparison:

* operator/atom ids (``op#12`` / ``atom#3``) are process-global counters;
* timings (``120.052ms`` / ``2.6s`` / ``1.2min``) depend on cost-model
  constants that other PRs legitimately tune;
* 40-hex git shas and filesystem paths (provenance, store locations).

To regenerate after an intentional output change::

    REPRO_UPDATE_GOLDENS=1 python -m pytest tests/core/test_explain_golden.py
"""

from __future__ import annotations

import os
import re

import pytest

from repro.cli import main

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "goldens")

_SCRUBBERS = [
    (re.compile(r"\b[0-9a-f]{40}\b"), "<SHA>"),
    (re.compile(r"\bop#\d+\b"), "op#N"),
    (re.compile(r"\batom#\d+\b"), "atom#N"),
    (re.compile(r"\b\d+(\.\d+)?(ms|min)\b"), "<T>"),
    (re.compile(r"\b\d+(\.\d+)?s\b"), "<T>"),
    (re.compile(r"(->|from|store:) /[^ ]+"), r"\1 <PATH>"),
]


def scrub(text: str) -> str:
    """Normalise volatile tokens (ids, timings, shas, paths)."""
    for pattern, replacement in _SCRUBBERS:
        text = pattern.sub(replacement, text)
    return text


def assert_matches_golden(name: str, output: str) -> None:
    scrubbed = scrub(output)
    path = os.path.join(GOLDEN_DIR, name)
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(scrubbed)
        pytest.skip(f"golden {name} regenerated")
    assert os.path.exists(path), (
        f"golden {name} missing; regenerate with REPRO_UPDATE_GOLDENS=1"
    )
    with open(path, encoding="utf-8") as fh:
        expected = fh.read()
    assert scrubbed == expected, (
        f"explain output drifted from goldens/{name}; if intentional, "
        "regenerate with REPRO_UPDATE_GOLDENS=1"
    )


class TestScrubber:
    def test_ids_timings_shas_paths(self):
        raw = (
            "op#42 flatmap est=120.052ms atom#7 took 2.5s or 1.2min\n"
            "sha " + "a" * 40 + " store: /tmp/x/store.json\n"
        )
        cleaned = scrub(raw)
        assert "op#N" in cleaned and "atom#N" in cleaned
        assert "120.052" not in cleaned and "<T>" in cleaned
        assert "<SHA>" in cleaned and "a" * 40 not in cleaned
        assert "/tmp/x/store.json" not in cleaned

    def test_scrub_is_idempotent(self):
        raw = "op#1 est=3.0ms -> /var/data/f.json"
        assert scrub(scrub(raw)) == scrub(raw)

    def test_stable_tokens_survive(self):
        raw = "winner: {java} — 7 candidates, est_card=9"
        assert "{java}" in scrub(raw)
        assert "est_card=9" in scrub(raw)


class TestExplainGoldens:
    def test_explain_demo(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CALIBRATION", raising=False)
        assert main(["explain", "demo"]) == 0
        assert_matches_golden(
            "explain_demo.txt", capsys.readouterr().out
        )

    def test_explain_demo_cold_calibration(self, capsys, monkeypatch, tmp_path):
        """A cold store adds the calibration section but must not move a
        single candidate estimate or assignment line."""
        monkeypatch.delenv("REPRO_NO_CALIBRATION", raising=False)
        store = tmp_path / "store.json"
        assert main(["explain", "demo", "--calibrate", str(store)]) == 0
        out = capsys.readouterr().out
        assert_matches_golden("explain_demo_calibrated.txt", out)

    def test_cold_calibrated_prefix_matches_plain(self, capsys, monkeypatch,
                                                  tmp_path):
        """The calibrated explain is the plain explain plus a trailing
        calibration section — cold priors change nothing upstream."""
        monkeypatch.delenv("REPRO_NO_CALIBRATION", raising=False)
        assert main(["explain", "demo"]) == 0
        plain = scrub(capsys.readouterr().out)
        store = tmp_path / "store.json"
        assert main(["explain", "demo", "--calibrate", str(store)]) == 0
        calibrated = scrub(capsys.readouterr().out)
        assert calibrated.startswith(plain.rstrip("\n"))
        assert "calibration:" in calibrated

    def test_explain_sql(self, capsys, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_NO_CALIBRATION", raising=False)
        csv = tmp_path / "people.csv"
        csv.write_text(
            "name,city,salary\n"
            "ada,berlin,120\n"
            "bob,paris,90\n"
            "cyn,berlin,140\n"
        )
        code = main(
            [
                "explain",
                "SELECT city FROM people WHERE salary > 100",
                "--table",
                f"people={csv}",
            ]
        )
        assert code == 0
        assert_matches_golden("explain_sql.txt", capsys.readouterr().out)
