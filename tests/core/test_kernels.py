"""Unit + property tests for the shared algorithm kernels.

The hash and sort variants of each operation must agree (as sets / bags),
and every join variant must agree with the brute-force reference — these
are the invariants that make the optimizer's variant substitution safe.
"""

from collections import Counter

from hypothesis import given
from hypothesis import strategies as st

from repro.core.physical import kernels

ints = st.lists(st.integers(min_value=-50, max_value=50), max_size=60)
pairs = st.lists(
    st.tuples(st.integers(0, 9), st.integers(-100, 100)), max_size=50
)


class TestGroupBy:
    def test_hash_group_by_groups_all_items(self):
        groups = dict(kernels.hash_group_by([1, 2, 3, 4, 5], lambda x: x % 2))
        assert groups == {1: [1, 3, 5], 0: [2, 4]}

    def test_hash_group_by_first_appearance_order(self):
        groups = kernels.hash_group_by([3, 1, 2, 1], lambda x: x)
        assert [key for key, _ in groups] == [3, 1, 2]

    def test_sort_group_by_ascending_keys(self):
        groups = kernels.sort_group_by([3, 1, 2, 1], lambda x: x)
        assert [key for key, _ in groups] == [1, 2, 3]

    def test_empty_input(self):
        assert kernels.hash_group_by([], lambda x: x) == []
        assert kernels.sort_group_by([], lambda x: x) == []

    @given(pairs)
    def test_variants_agree(self, items):
        key = lambda kv: kv[0]  # noqa: E731
        hash_groups = {
            k: Counter(v) for k, v in kernels.hash_group_by(items, key)
        }
        sort_groups = {
            k: Counter(v) for k, v in kernels.sort_group_by(items, key)
        }
        assert hash_groups == sort_groups


class TestReduce:
    def test_hash_reduce_by_combines_per_key(self):
        items = [("a", 1), ("b", 2), ("a", 3)]
        reduced = kernels.hash_reduce_by(
            items, lambda kv: kv[0], lambda x, y: (x[0], x[1] + y[1])
        )
        assert sorted(reduced) == [("a", 4), ("b", 2)]

    def test_global_reduce(self):
        assert kernels.global_reduce([1, 2, 3], lambda a, b: a + b) == [6]

    def test_global_reduce_empty(self):
        assert kernels.global_reduce([], lambda a, b: a + b) == []

    def test_global_reduce_single(self):
        assert kernels.global_reduce([7], lambda a, b: a + b) == [7]

    @given(ints)
    def test_global_reduce_equals_sum(self, items):
        result = kernels.global_reduce(items, lambda a, b: a + b)
        assert result == ([sum(items)] if items else [])

    @given(pairs)
    def test_reduce_by_matches_group_then_fold(self, items):
        key = lambda kv: kv[0]  # noqa: E731
        reducer = lambda a, b: (a[0], a[1] + b[1])  # noqa: E731
        reduced = dict(
            (key(v), v[1]) for v in kernels.hash_reduce_by(items, key, reducer)
        )
        grouped = {
            k: sum(v[1] for v in group)
            for k, group in kernels.hash_group_by(items, key)
        }
        assert reduced == grouped


def reference_join(left, right, lk, rk):
    return sorted(
        (l, r) for l in left for r in right if lk(l) == rk(r)
    )


class TestJoins:
    def test_hash_join_example(self):
        left = [(1, "a"), (2, "b")]
        right = [(1, "x"), (1, "y"), (3, "z")]
        result = sorted(
            kernels.hash_join(left, right, lambda t: t[0], lambda t: t[0])
        )
        assert result == [((1, "a"), (1, "x")), ((1, "a"), (1, "y"))]

    def test_hash_join_builds_on_smaller_side_same_result(self):
        left = [(1, i) for i in range(10)]
        right = [(1, "only")]
        a = sorted(kernels.hash_join(left, right, lambda t: t[0], lambda t: t[0]))
        b = sorted(kernels.hash_join(right, left, lambda t: t[0], lambda t: t[0]))
        assert len(a) == len(b) == 10

    @given(pairs, pairs)
    def test_hash_join_matches_reference(self, left, right):
        lk = rk = lambda kv: kv[0]  # noqa: E731
        assert sorted(kernels.hash_join(left, right, lk, rk)) == reference_join(
            left, right, lk, rk
        )

    @given(pairs, pairs)
    def test_sort_merge_join_matches_reference(self, left, right):
        lk = rk = lambda kv: kv[0]  # noqa: E731
        assert sorted(
            kernels.sort_merge_join(left, right, lk, rk)
        ) == reference_join(left, right, lk, rk)

    def test_nested_loop_join_arbitrary_predicate(self):
        result = list(
            kernels.nested_loop_join([1, 5], [2, 4], lambda l, r: l < r)
        )
        assert result == [(1, 2), (1, 4)]

    def test_cross_product_cardinality(self):
        result = list(kernels.cross_product([1, 2], ["a", "b", "c"]))
        assert len(result) == 6

    def test_cross_product_empty_side(self):
        assert list(kernels.cross_product([], [1])) == []


class TestDistinct:
    def test_hash_distinct_preserves_first_order(self):
        assert kernels.hash_distinct([3, 1, 3, 2, 1]) == [3, 1, 2]

    def test_sort_distinct_sorted_output(self):
        assert kernels.sort_distinct([3, 1, 3, 2, 1]) == [1, 2, 3]

    @given(ints)
    def test_variants_agree_as_sets(self, items):
        assert set(kernels.hash_distinct(items)) == set(
            kernels.sort_distinct(items)
        )
        assert len(kernels.hash_distinct(items)) == len(set(items))


class TestSample:
    def test_sample_smaller_than_size_returns_all(self):
        assert kernels.uniform_sample([1, 2], 5, seed=0) == [1, 2]

    def test_sample_deterministic_per_seed(self):
        data = list(range(100))
        assert kernels.uniform_sample(data, 10, 42) == kernels.uniform_sample(
            data, 10, 42
        )

    def test_sample_without_replacement(self):
        picked = kernels.uniform_sample(list(range(50)), 20, 7)
        assert len(picked) == len(set(picked)) == 20

    @given(ints, st.integers(0, 10), st.integers(0, 5))
    def test_sample_subset_of_input(self, items, size, seed):
        picked = kernels.uniform_sample(items, size, seed)
        assert len(picked) == min(size, len(items))
        assert all(p in items for p in picked)
