"""Property-style equivalence: compiled data path vs interpreter.

The compiled data path (fused single-pass closures, batch kernels,
streaming sources) must be a pure wall-clock optimization: for every
seeded plan the outputs, the virtual bill, and the full ledger entry
sequence are identical with ``REPRO_NO_KERNELS`` unset and set.  Atom
ids are process-global so the comparison uses ``(label, ms, platform)``
tuples — the sequence and the amounts must match entry for entry.
"""

from __future__ import annotations

from operator import itemgetter

import pytest

from repro import RheemContext
from repro.apps.graph.datagen import erdos_renyi
from repro.apps.graph.pagerank import PageRank
from repro.apps.ml.datagen import linearly_separable, sample_blobs
from repro.apps.ml.kmeans import KMeans
from repro.apps.ml.svm import SVMClassifier
from repro.apps.sql import SqlSession
from repro.core.physical.compiled import KILL_SWITCH, kernels_enabled

KEY = itemgetter(0)


def _bill(metrics):
    return [
        (entry.label, entry.ms, entry.platform)
        for entry in metrics.ledger.entries
    ]


def run_both_modes(monkeypatch, run):
    """Run ``run()`` with kernels on, then off; return both summaries."""
    monkeypatch.delenv(KILL_SWITCH, raising=False)
    assert kernels_enabled()
    outputs_on, metrics_on = run()
    monkeypatch.setenv(KILL_SWITCH, "1")
    assert not kernels_enabled()
    outputs_off, metrics_off = run()
    monkeypatch.delenv(KILL_SWITCH, raising=False)
    return (outputs_on, metrics_on), (outputs_off, metrics_off)


def assert_equivalent(monkeypatch, run):
    (out_on, m_on), (out_off, m_off) = run_both_modes(monkeypatch, run)
    assert out_on == out_off
    assert m_on.virtual_ms == m_off.virtual_ms
    assert _bill(m_on) == _bill(m_off)


WORDS = [
    "freedom is the recognition of necessity",
    "the road to freedom is long",
    "freedom necessity freedom",
] * 5


def _context(platform):
    """A context whose roster covers ``platform`` (flink is opt-in)."""
    if platform == "flink":
        from repro.platforms import JavaPlatform
        from repro.platforms.flink import FlinkPlatform

        return RheemContext(platforms=[JavaPlatform(), FlinkPlatform()])
    return RheemContext()


def _wordcount(platform):
    def run():
        ctx = _context(platform)
        return (
            ctx.collection(WORDS)
            .flat_map(str.split)
            .map(lambda w: (w, 1))
            .reduce_by(KEY, lambda a, b: (a[0], a[1] + b[1]))
            .sort(lambda kv: (-kv[1], kv[0]))
            .collect_with_metrics(platform=platform)
        )

    return run


@pytest.mark.parametrize("platform", [None, "java", "spark", "flink"])
def test_wordcount_equivalent(monkeypatch, platform):
    assert_equivalent(monkeypatch, _wordcount(platform))


@pytest.mark.parametrize("platform", ["java", "flink", "spark"])
def test_textfile_pipeline_equivalent(monkeypatch, tmp_path, platform):
    """Streaming fused sources (java/flink) vs materialised (spark)."""
    path = tmp_path / "lines.txt"
    path.write_text(
        "\n".join(f"row {i} value {i * i}" for i in range(200)) + "\n",
        encoding="utf-8",
    )

    def run():
        ctx = _context(platform)
        return (
            ctx.textfile(str(path))
            .flat_map(str.split)
            .filter(str.isdigit)
            .map(int)
            .distinct()
            .sort(lambda v: v)
            .collect_with_metrics(platform=platform)
        )

    assert_equivalent(monkeypatch, run)


def test_sql_groupby_equivalent(monkeypatch, people, people_schema):
    def run():
        ctx = RheemContext()
        session = SqlSession(ctx)
        session.register_table("people", people, people_schema)
        return session.execute_with_metrics(
            "SELECT dept, COUNT(*) AS n FROM people GROUP BY dept"
        )

    assert_equivalent(monkeypatch, run)


def test_join_pipeline_equivalent(monkeypatch):
    left = [(i % 7, i) for i in range(60)]
    right = [(i % 7, -i) for i in range(35)]

    def run():
        ctx = RheemContext()
        lhs = ctx.collection(left, name="left")
        rhs = lhs.source(right, name="right")
        return (
            lhs.join(rhs, left_key=KEY, right_key=KEY)
            .map(lambda pair: (pair[0][0], pair[0][1] + pair[1][1]))
            .reduce_by(KEY, lambda a, b: (a[0], a[1] + b[1]))
            .sort(KEY)
            .collect_with_metrics(platform="java")
        )

    assert_equivalent(monkeypatch, run)


def test_kmeans_equivalent(monkeypatch):
    data, _ = sample_blobs(60, k=3, dim=2, seed=11)

    def run():
        model = KMeans(k=3, max_iterations=6, seed=5)
        model.fit(RheemContext(), data, platform="java")
        return model.centroids, model.metrics

    assert_equivalent(monkeypatch, run)


def test_svm_equivalent(monkeypatch):
    data = linearly_separable(40, dim=3, seed=3)

    def run():
        model = SVMClassifier(iterations=5)
        model.fit(RheemContext(), data, platform="java")
        return (model.weights, model.bias), model.metrics

    assert_equivalent(monkeypatch, run)


def test_pagerank_equivalent(monkeypatch):
    edges = erdos_renyi(40, 0.1, seed=9)

    def run():
        pr = PageRank(iterations=4)
        ranks = pr.run(RheemContext(), edges, platform="java")
        return ranks, pr.metrics

    assert_equivalent(monkeypatch, run)


def test_parallel_scheduler_equivalent(monkeypatch):
    """The kill switch commutes with the concurrent scheduler."""

    def run():
        ctx = RheemContext(parallelism=4)
        outputs = {}
        metrics = None
        handle = (
            ctx.collection([(i % 5, i) for i in range(80)])
            .map(itemgetter(1, 0))
            .filter(KEY)
            .map(itemgetter(1, 0))
            .reduce_by(KEY, lambda a, b: (a[0], a[1] + b[1]))
            .sort(KEY)
        )
        outputs, metrics = handle.collect_with_metrics(platform="java")
        return outputs, metrics

    assert_equivalent(monkeypatch, run)
