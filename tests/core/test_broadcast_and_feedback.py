"""Tests for the broadcast-join variant and cardinality feedback."""

import pytest

from repro import CostHints, RheemContext
from repro.core.metrics import CardinalityMisestimate
from repro.core.physical.operators import PBroadcastJoin


def committed_join_kind(ctx, left_data, right_data, platform="spark"):
    handle = ctx.collection(left_data).join(
        ctx.collection(right_data), lambda t: t[0], lambda t: t[0]
    )
    physical = ctx.app_optimizer.optimize(handle.plan)
    execution = ctx.task_optimizer.optimize(physical, forced_platform=platform)
    return next(
        op.kind
        for atom in execution.atoms
        for op in atom.fragment
        if op.kind.startswith("join.")
    )


class TestBroadcastJoin:
    def test_variant_registered_as_join_alternate(self, ctx):
        handle = ctx.collection([(1, 2)]).join(
            ctx.collection([(1, 3)]), lambda t: t[0], lambda t: t[0]
        )
        physical = ctx.app_optimizer.optimize(handle.plan)
        join_op = next(
            op for op in physical.graph if op.kind.startswith("join.")
        )
        kinds = {join_op.kind} | {alt.kind for alt in join_op.alternates}
        assert "join.broadcast" in kinds

    def test_optimizer_broadcasts_small_side_on_spark(self, ctx):
        big = [(i % 997, i) for i in range(30_000)]
        small = [(k, f"d{k}") for k in range(20)]
        assert committed_join_kind(ctx, big, small) == "join.broadcast"

    def test_optimizer_shuffles_balanced_sides_on_spark(self, ctx):
        big = [(i % 997, i) for i in range(30_000)]
        assert committed_join_kind(ctx, big, list(big)) == "join.hash"

    @pytest.mark.parametrize("platform", ["java", "spark", "postgres"])
    def test_results_match_hash_join(self, platform):
        ctx = RheemContext()
        left = [(i % 7, i) for i in range(60)]
        right = [(k, f"r{k}") for k in range(7)]

        def run(force_broadcast):
            from repro.core.logical.operators import CollectSink

            handle = ctx.collection(left).join(
                ctx.collection(right), lambda t: t[0], lambda t: t[0]
            )
            handle.plan.add(CollectSink(), [handle.operator])
            physical = ctx.app_optimizer.optimize(handle.plan)
            join_op = next(
                op for op in physical.graph if op.kind.startswith("join.")
            )
            if force_broadcast and not isinstance(join_op, PBroadcastJoin):
                variant = next(
                    alt for alt in join_op.alternates
                    if isinstance(alt, PBroadcastJoin)
                )
                physical.substitute(join_op, variant)
                variant.alternates = []
            else:
                join_op.alternates = []
            execution = ctx.task_optimizer.optimize(
                physical, forced_platform=platform
            )
            return sorted(ctx.executor.execute(execution).single)

        assert run(True) == run(False)


class TestCardinalityFeedback:
    def test_bad_selectivity_hint_reported(self, ctx):
        _, metrics = (
            ctx.collection(range(1000))
            .filter(lambda x: True, hints=CostHints(selectivity=0.001))
            .collect_with_metrics(platform="java")
        )
        assert metrics.misestimates
        report = metrics.misestimates[0]
        assert report.observed == 1000
        assert report.factor >= 4.0

    def test_accurate_hint_not_reported(self, ctx):
        _, metrics = (
            ctx.collection(range(1000))
            .filter(lambda x: True, hints=CostHints(selectivity=1.0))
            .collect_with_metrics(platform="java")
        )
        assert metrics.misestimates == []

    def test_underestimate_and_overestimate_both_flagged(self, ctx):
        _, over = (
            ctx.collection(range(1000))
            .filter(lambda x: False, hints=CostHints(selectivity=1.0))
            .collect_with_metrics(platform="java")
        )
        assert over.misestimates
        assert over.misestimates[0].observed == 0

    def test_factor_semantics(self):
        assert CardinalityMisestimate(1, 10.0, 100).factor == pytest.approx(10)
        assert CardinalityMisestimate(1, 100.0, 10).factor == pytest.approx(10)
        assert CardinalityMisestimate(1, 0.0, 0).factor == 1.0
        assert CardinalityMisestimate(1, 5.0, 0).factor == float("inf")
