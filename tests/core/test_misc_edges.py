"""Edge-case tests rounding out coverage of small modules."""

import pytest

from repro import RheemContext
from repro.core.channels import CollectionChannel
from repro.core.metrics import CostEntry, CostLedger
from repro.core.types import Record, Schema
from repro.errors import StorageError
from repro.storage import Catalog, LocalFsStore, TransformDataset
from repro.storage.transformation import SortStep, TransformationPlan


class TestCollectionChannel:
    def test_copies_and_counts(self):
        data = [1, 2, 3]
        channel = CollectionChannel(data, "java")
        data.append(4)
        assert channel.cardinality == 3
        assert list(channel) == [1, 2, 3]
        assert len(channel) == 3
        assert "java" in repr(channel)


class TestCostLedger:
    def test_merge_and_total(self):
        a, b = CostLedger(), CostLedger()
        a.charge("x", 1.5, "java")
        b.charge("y", 2.5, "spark", atom_id=3)
        a.merge(b)
        assert a.total_ms == pytest.approx(4.0)
        assert a.entries[1] == CostEntry("y", 2.5, "spark", 3)


class TestRecordOrdering:
    def test_tuple_like_ordering(self):
        schema = Schema(["a", "b"])
        assert schema.record(1, 2) < schema.record(1, 3)
        assert schema.record(1, 2) < schema.record(2, 0)
        assert sorted([schema.record(2, 0), schema.record(1, 9)])[0]["a"] == 1

    def test_cross_type_not_orderable(self):
        schema = Schema(["a"])
        with pytest.raises(TypeError):
            _ = schema.record(1) < 5


class TestStorageAbstractionEdges:
    def test_transform_schemaless_with_plan_rejected(self, tmp_path):
        catalog = Catalog()
        catalog.register_store(LocalFsStore(root=str(tmp_path)))
        catalog.write_dataset("nums", [1, 2, 3], "localfs")
        with pytest.raises(StorageError, match="schema-less"):
            TransformDataset(
                "nums", "localfs", plan=TransformationPlan([SortStep("x")])
            ).apply_op(catalog)

    def test_transform_schemaless_without_plan_ok(self, tmp_path):
        catalog = Catalog()
        catalog.register_store(LocalFsStore(root=str(tmp_path / "a")))
        catalog.write_dataset("nums", [3, 1, 2], "localfs")
        TransformDataset("nums", "localfs").apply_op(catalog)
        assert catalog.read_dataset("nums") == [3, 1, 2]


class TestSqlExpressionEdges:
    def test_modulo_and_unary_minus(self):
        from repro.apps.sql import SqlSession

        session = SqlSession(RheemContext())
        schema = Schema(["x"])
        session.register_table("t", [schema.record(7), schema.record(4)])
        rows = session.execute(
            "SELECT x % 3 AS m, -x AS neg FROM t ORDER BY x"
        )
        assert [(r["m"], r["neg"]) for r in rows] == [(1, -4), (1, -7)]

    def test_not_equal_variants(self):
        from repro.apps.sql import SqlSession

        session = SqlSession(RheemContext())
        schema = Schema(["x"])
        session.register_table("t", [schema.record(i) for i in range(4)])
        a = session.execute("SELECT x FROM t WHERE x != 2 ORDER BY x")
        b = session.execute("SELECT x FROM t WHERE x <> 2 ORDER BY x")
        assert a == b
        assert [r["x"] for r in a] == [0, 1, 3]

    def test_aggregate_outside_group_context_raises(self):
        from repro.apps.sql.ast import FunctionCall, Column, SqlEvalError

        call = FunctionCall("SUM", Column("x"))
        with pytest.raises(SqlEvalError, match="aggregation context"):
            call.evaluate({"x": 1})


class TestFlinkCostEdges:
    def test_blocking_vs_pipelined_overhead(self):
        from repro.core.optimizer.cost import OperatorCostInput
        from repro.platforms.flink import FlinkCostModel

        model = FlinkCostModel()
        narrow = model.operator_ms(
            OperatorCostInput("map", (1000.0,), 1000.0)
        )
        blocking = model.operator_ms(
            OperatorCostInput("sort", (1000.0,), 1000.0)
        )
        assert blocking > narrow

    def test_startup_between_java_and_spark(self):
        from repro.platforms import JavaPlatform, SparkPlatform
        from repro.platforms.flink import FlinkPlatform

        java = JavaPlatform().cost_model.startup_ms()
        flink = FlinkPlatform().cost_model.startup_ms()
        spark = SparkPlatform().cost_model.startup_ms()
        assert java < flink < spark
