"""Property-based tests of the optimizer pipeline over random plans.

Invariants checked for every generated plan:

* the execution plan covers every physical operator exactly once;
* the atom schedule is dependency-consistent (producers before consumers);
* the cost-based plan's results equal the forced-single-platform results;
* the cost-based estimated cost never exceeds the best single platform's.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import RheemContext
from repro.core.execution.plan import LoopAtom, TaskAtom
from repro.core.physical.fusion import PFusedPipeline


@st.composite
def random_plans(draw):
    """A random chain with optional binary tail over small int data."""
    data = draw(st.lists(st.integers(-9, 9), min_size=0, max_size=20))
    chain = draw(
        st.lists(
            st.sampled_from(
                ["map", "filter", "flatmap", "distinct", "sort", "group",
                 "reduceby", "limit", "sample", "count"]
            ),
            max_size=5,
        )
    )
    binary = draw(st.sampled_from([None, "union", "join", "cross"]))
    return data, chain, binary


def build(ctx, spec):
    data, chain, binary = spec
    dq = ctx.collection(data)
    for step in chain:
        if step == "map":
            dq = dq.map(lambda x: _num(x) + 1)
        elif step == "filter":
            dq = dq.filter(lambda x: _num(x) % 2 == 0)
        elif step == "flatmap":
            dq = dq.flat_map(lambda x: [x])
        elif step == "distinct":
            dq = dq.distinct()
        elif step == "sort":
            dq = dq.sort(repr)
        elif step == "group":
            dq = dq.group_by(lambda x: _num(x) % 3).map(
                lambda kv: (kv[0], len(kv[1]))
            )
        elif step == "reduceby":
            dq = dq.map(lambda x: (_num(x) % 3, 1)).reduce_by(
                lambda kv: kv[0], lambda a, b: (a[0], a[1] + b[1])
            )
        elif step == "limit":
            dq = dq.limit(5)
        elif step == "sample":
            dq = dq.sample(4, seed=1)
        elif step == "count":
            dq = dq.count()
    if binary == "union":
        dq = dq.union(ctx.collection(data))
    elif binary == "join":
        dq = dq.map(lambda x: (_num(x) % 4, x)).join(
            ctx.collection(data).map(lambda x: (_num(x) % 4, x)),
            lambda kv: kv[0],
            lambda kv: kv[0],
        )
    elif binary == "cross":
        dq = dq.limit(3).cross(ctx.collection(data[:3]))
    return dq


def _num(x):
    while isinstance(x, tuple):
        x = x[0]
    return int(x)


@settings(max_examples=40, deadline=None)
@given(random_plans())
def test_atoms_cover_every_operator_exactly_once(spec):
    ctx = RheemContext()
    handle = build(ctx, spec)
    physical = ctx.app_optimizer.optimize(handle.plan)
    execution = ctx.task_optimizer.optimize(physical)
    covered: list[int] = []
    for atom in execution.atoms:
        if isinstance(atom, TaskAtom):
            for op in atom.fragment:
                if isinstance(op, PFusedPipeline):
                    covered.extend(stage.id for stage in op.stages)
                else:
                    covered.append(op.id)
        else:
            covered.extend(atom.operator_ids)
    expected = {op.id for op in physical.graph}
    assert sorted(covered) == sorted(expected)
    assert len(covered) == len(set(covered))


@settings(max_examples=40, deadline=None)
@given(random_plans())
def test_atom_schedule_respects_dependencies(spec):
    ctx = RheemContext()
    handle = build(ctx, spec)
    physical = ctx.app_optimizer.optimize(handle.plan)
    execution = ctx.task_optimizer.optimize(physical)
    seen: set[int] = set()
    for atom in execution.atoms:
        if isinstance(atom, TaskAtom):
            for (_, _), producer_id in atom.external_inputs.items():
                assert producer_id in seen, "consumer scheduled before producer"
        elif isinstance(atom, LoopAtom):
            assert atom.state_producer_id in seen
        seen.update(atom.output_ids)
        seen.update(atom.operator_ids)


@settings(max_examples=30, deadline=None)
@given(random_plans())
def test_cost_based_results_match_forced_java(spec):
    auto_ctx = RheemContext()
    forced_ctx = RheemContext()
    auto = build(auto_ctx, spec).collect()
    forced = build(forced_ctx, spec).collect(platform="java")
    assert sorted(map(repr, auto)) == sorted(map(repr, forced))


@settings(max_examples=30, deadline=None)
@given(random_plans())
def test_estimated_cost_at_most_best_single_platform(spec):
    ctx = RheemContext()
    handle = build(ctx, spec)
    physical = ctx.app_optimizer.optimize(handle.plan)
    best_free = ctx.task_optimizer.estimated_plan_cost(physical)
    singles = []
    for platform in ("java", "spark", "postgres"):
        try:
            singles.append(
                ctx.task_optimizer.estimated_plan_cost(physical, platform)
            )
        except Exception:
            continue
    assert singles, "at least java should support every generated plan"
    assert best_free <= min(singles) + 1e-6
