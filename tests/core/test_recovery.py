"""Unit tests for the durable run journal and chaos harness
(repro.core.recovery): record framing, torn-tail truncation, crash
injection modes, config epochs, and the lossless state snapshots resume
replays (registry, health tracker, failure injector)."""

import pytest

from repro.core.observability.registry import MetricsRegistry
from repro.core.recovery import (
    CrashInjector,
    RunJournal,
    SimulatedCrash,
    config_epoch,
    decode_line,
    encode_line,
    export_registry_state,
    import_registry_state,
)
from repro.core.resilience import FailureInjector, HealthTracker
from repro.errors import StorageError


# ----------------------------------------------------------------------
# line framing
# ----------------------------------------------------------------------
class TestLineFraming:
    def test_roundtrip(self):
        record = {"t": "atom", "index": 3, "entries": [["op.map", 1.5]]}
        assert decode_line(encode_line(record).rstrip("\n")) == record

    def test_rejects_short_line(self):
        assert decode_line("abc") is None

    def test_rejects_bad_hex(self):
        assert decode_line('zzzzzzzz {"t":"atom"}') is None

    def test_rejects_crc_mismatch(self):
        line = encode_line({"t": "atom", "index": 1}).rstrip("\n")
        tampered = line[:9] + line[9:].replace('"index":1', '"index":2')
        assert decode_line(tampered) is None

    def test_rejects_truncated_json(self):
        assert decode_line('00000000 {"t":"atom","torn":') is None

    def test_rejects_non_dict_payload(self):
        assert decode_line(encode_line([1, 2, 3]).rstrip("\n")) is None  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# the journal
# ----------------------------------------------------------------------
class TestRunJournal:
    def _journal(self, tmp_path, **kwargs):
        return RunJournal(str(tmp_path / "run.journal"), **kwargs)

    def test_begin_append_load_roundtrip(self, tmp_path):
        journal = self._journal(tmp_path, run_id="r1")
        header = journal.header(fingerprint="fp", epoch="ep", parallelism=2)
        journal.begin(header)
        journal.append({"t": "atom", "index": 0})
        journal.append({"t": "atom", "index": 1})
        journal.close()

        stored_header, records, torn = self._journal(tmp_path).load()
        assert stored_header == header
        assert [r["index"] for r in records] == [0, 1]
        assert torn == 0

    def test_run_id_defaults_to_basename(self, tmp_path):
        assert self._journal(tmp_path).run_id == "run"

    def test_begin_requires_header(self, tmp_path):
        with pytest.raises(StorageError):
            self._journal(tmp_path).begin({"t": "atom"})

    def test_append_before_begin_raises(self, tmp_path):
        with pytest.raises(StorageError):
            self._journal(tmp_path).append({"t": "atom", "index": 0})

    def test_load_missing_file(self, tmp_path):
        assert self._journal(tmp_path).load() == (None, [], 0)

    def test_torn_tail_truncated(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.begin(journal.header(fingerprint="fp", epoch="ep"))
        journal.append({"t": "atom", "index": 0})
        journal.append_raw('00000000 {"t":"atom","torn":')
        journal.close()

        header, records, torn = self._journal(tmp_path).load()
        assert header is not None
        assert [r["index"] for r in records] == [0]
        assert torn == 1

    def test_damage_invalidates_everything_after(self, tmp_path):
        # Records are a causal sequence: bit rot mid-file must not let
        # later (individually valid) records be trusted.
        journal = self._journal(tmp_path)
        journal.begin(journal.header(fingerprint="fp", epoch="ep"))
        journal.append({"t": "atom", "index": 0})
        journal.append({"t": "atom", "index": 1})
        journal.close()
        lines = open(journal.path, encoding="utf-8").read().splitlines()
        lines[1] = "corrupted " + lines[1][10:]
        with open(journal.path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")

        header, records, torn = self._journal(tmp_path).load()
        assert header is not None
        assert records == []
        assert torn == 2

    def test_damaged_header_not_resumable(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.begin(journal.header(fingerprint="fp", epoch="ep"))
        journal.append({"t": "atom", "index": 0})
        journal.close()
        content = open(journal.path, encoding="utf-8").read()
        with open(journal.path, "w", encoding="utf-8") as fh:
            fh.write("garbage header line\n" + content.split("\n", 1)[1])

        assert self._journal(tmp_path).load()[0] is None

    def test_reset_to_rewrites_prefix(self, tmp_path):
        journal = self._journal(tmp_path)
        header = journal.header(fingerprint="fp", epoch="ep")
        journal.begin(header)
        for index in range(3):
            journal.append({"t": "atom", "index": index})
        journal.close()

        resumed = self._journal(tmp_path)
        stored_header, records, _ = resumed.load()
        resumed.reset_to(stored_header, records[:1])
        assert resumed.records_written == 1
        resumed.append({"t": "atom", "index": 1})
        resumed.close()

        _, records, torn = self._journal(tmp_path).load()
        assert [r["index"] for r in records] == [0, 1]
        assert torn == 0

    def test_workload_in_header(self, tmp_path):
        journal = self._journal(tmp_path, workload={"kind": "demo"})
        header = journal.header(fingerprint="fp", epoch="ep")
        assert header["workload"] == {"kind": "demo"}


# ----------------------------------------------------------------------
# config epoch
# ----------------------------------------------------------------------
class TestConfigEpoch:
    def test_deterministic(self):
        assert config_epoch() == config_epoch()

    def test_sensitive_to_columnar(self):
        assert config_epoch(columnar=True) != config_epoch(columnar=False)

    def test_sensitive_to_kernel_kill_switch(self, monkeypatch):
        base = config_epoch()
        monkeypatch.setenv("REPRO_NO_KERNELS", "1")
        assert config_epoch() != base

    def test_sensitive_to_calibration_store(self, monkeypatch):
        base = config_epoch(calibration=True)
        monkeypatch.setenv("REPRO_CALIBRATION_STORE", "/tmp/priors.json")
        assert config_epoch(calibration=True) != base

    def test_calibration_kill_switch_neutralises_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CALIBRATION", "1")
        assert config_epoch(calibration=True) == config_epoch(
            calibration=False
        )


# ----------------------------------------------------------------------
# crash injector
# ----------------------------------------------------------------------
class TestCrashInjector:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            CrashInjector(-1)
        with pytest.raises(ValueError):
            CrashInjector(0, mode="sideways")

    def test_before_mode_fires_before_write(self, tmp_path):
        injector = CrashInjector(1, mode="before")
        injector.before_commit()  # commit 0 passes
        injector.after_commit(None)
        with pytest.raises(SimulatedCrash):
            injector.before_commit()
        assert injector.fired

    def test_after_mode_fires_after_write(self, tmp_path):
        journal = RunJournal(str(tmp_path / "run.journal"))
        journal.begin(journal.header(fingerprint="fp", epoch="ep"))
        injector = CrashInjector(0, mode="after")
        injector.before_commit()
        journal.append({"t": "atom", "index": 0})
        with pytest.raises(SimulatedCrash):
            injector.after_commit(journal)
        journal.close()
        # the record survived the crash
        _, records, torn = journal.load()
        assert len(records) == 1 and torn == 0

    def test_torn_mode_leaves_partial_line(self, tmp_path):
        journal = RunJournal(str(tmp_path / "run.journal"))
        journal.begin(journal.header(fingerprint="fp", epoch="ep"))
        injector = CrashInjector(0, mode="torn")
        journal.append({"t": "atom", "index": 0})
        with pytest.raises(SimulatedCrash):
            injector.after_commit(journal)
        journal.close()
        _, records, torn = journal.load()
        assert len(records) == 1
        assert torn == 1

    def test_fires_once(self):
        injector = CrashInjector(0, mode="after")
        with pytest.raises(SimulatedCrash):
            injector.after_commit(None)
        injector.before_commit()
        injector.after_commit(None)  # already fired: inert

    def test_simulated_crash_is_not_an_exception(self):
        # It must escape `except Exception` retry ladders.
        assert not issubclass(SimulatedCrash, Exception)
        assert issubclass(SimulatedCrash, BaseException)


# ----------------------------------------------------------------------
# state snapshots
# ----------------------------------------------------------------------
class TestRegistrySnapshot:
    def test_lossless_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("atoms_executed", "atoms").inc(7)
        registry.gauge("depth", "queue depth").set(3.5)
        histogram = registry.histogram(
            "lat", "latency", buckets=(1.0, 10.0, 100.0)
        )
        histogram.observe(0.5)
        histogram.observe(42.0, platform="java")
        histogram.observe(1000.0, platform="java")

        state = export_registry_state(registry)
        restored = MetricsRegistry()
        import_registry_state(restored, state)
        assert export_registry_state(restored) == state

    def test_json_serialisable(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c", "").inc()
        registry.histogram("h", "").observe(2.0, kind="map")
        state = export_registry_state(registry)
        assert json.loads(json.dumps(state)) == state

    def test_import_supersedes_existing_series(self):
        source = MetricsRegistry()
        source.counter("retries", "").inc(2)
        state = export_registry_state(source)

        target = MetricsRegistry()
        target.counter("retries", "").inc(99)
        import_registry_state(target, state)
        assert target.counter("retries", "").value() == 2

    def test_import_leaves_unnamed_instruments_alone(self):
        target = MetricsRegistry()
        target.counter("journal_torn_records", "").inc(3)
        import_registry_state(target, {})
        assert target.counter("journal_torn_records", "").value() == 3


class TestHealthSnapshot:
    def test_roundtrip_preserves_breaker_state(self):
        health = HealthTracker(failure_threshold=2)
        health.record_failure("java")
        health.record_failure("java")  # opens the breaker
        health.record_success("spark")
        health.advance(5.0)

        restored = HealthTracker(failure_threshold=2)
        restored.restore_state(health.export_state())
        assert restored.export_state() == health.export_state()
        assert restored.state("java") == health.state("java")
        assert restored.is_available("java") == health.is_available("java")


class TestInjectorSnapshot:
    def test_roundtrip_mid_schedule(self):
        injector = FailureInjector({2: 1, 5: 2})
        for _ in range(3):
            try:
                injector.check(injector.next_atom())
            except Exception:
                pass
        state = injector.export_state()

        restored = FailureInjector({2: 1, 5: 2})
        restored.restore_state(state)
        assert restored.position == injector.position
        # the remaining schedule plays out identically
        for original, resumed in zip(
            _drain(injector, 5), _drain(restored, 5)
        ):
            assert original == resumed

    def test_speculative_future_attempts_not_exported(self):
        injector = FailureInjector({4: 1})
        # Speculative concurrent execution touches a future ordinal...
        try:
            injector.check(4)
        except Exception:
            pass
        # ...but the snapshot only covers ordinals <= committed position.
        assert "4" not in injector.export_state()["attempts"]


def _drain(injector: FailureInjector, n: int) -> list[bool]:
    outcomes = []
    for _ in range(n):
        try:
            injector.check(injector.next_atom())
            outcomes.append(True)
        except Exception:
            outcomes.append(False)
    return outcomes
