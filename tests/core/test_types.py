"""Unit tests for the data-quanta model (Schema / Record)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.types import Record, Schema, records_from_dicts
from repro.errors import ValidationError


class TestSchema:
    def test_fields_in_order(self):
        schema = Schema(["a", "b", "c"])
        assert schema.fields == ("a", "b", "c")
        assert len(schema) == 3
        assert list(schema) == ["a", "b", "c"]

    def test_index_of(self):
        schema = Schema(["a", "b"])
        assert schema.index_of("a") == 0
        assert schema.index_of("b") == 1

    def test_index_of_unknown_field_raises(self):
        with pytest.raises(ValidationError, match="unknown field"):
            Schema(["a"]).index_of("zzz")

    def test_duplicate_fields_rejected(self):
        with pytest.raises(ValidationError, match="duplicate"):
            Schema(["a", "a"])

    def test_empty_schema_rejected(self):
        with pytest.raises(ValidationError):
            Schema([])

    def test_contains(self):
        schema = Schema(["x", "y"])
        assert "x" in schema
        assert "z" not in schema

    def test_project_keeps_order_given(self):
        schema = Schema(["a", "b", "c"])
        assert schema.project(["c", "a"]).fields == ("c", "a")

    def test_project_unknown_field_raises(self):
        with pytest.raises(ValidationError):
            Schema(["a"]).project(["b"])

    def test_equality_and_hash(self):
        assert Schema(["a", "b"]) == Schema(["a", "b"])
        assert Schema(["a", "b"]) != Schema(["b", "a"])
        assert hash(Schema(["a"])) == hash(Schema(["a"]))

    def test_record_constructor_arity_checked(self):
        schema = Schema(["a", "b"])
        with pytest.raises(ValidationError, match="expected 2 values"):
            schema.record(1)

    def test_from_mapping(self):
        schema = Schema(["a", "b"])
        record = schema.from_mapping({"b": 2, "a": 1})
        assert record.values == (1, 2)

    def test_from_mapping_missing_field(self):
        with pytest.raises(ValidationError, match="missing field"):
            Schema(["a", "b"]).from_mapping({"a": 1})


class TestRecord:
    def test_access_by_name_and_index(self):
        record = Schema(["a", "b"]).record(10, 20)
        assert record["a"] == 10
        assert record[1] == 20

    def test_get_with_default(self):
        record = Schema(["a"]).record(1)
        assert record.get("a") == 1
        assert record.get("missing", 42) == 42

    def test_with_value_is_pure(self):
        original = Schema(["a", "b"]).record(1, 2)
        updated = original.with_value("b", 99)
        assert updated["b"] == 99
        assert original["b"] == 2

    def test_project(self):
        record = Schema(["a", "b", "c"]).record(1, 2, 3)
        projected = record.project(["c", "a"])
        assert projected.values == (3, 1)
        assert projected.schema.fields == ("c", "a")

    def test_as_dict_and_tuple(self):
        record = Schema(["a", "b"]).record(1, 2)
        assert record.as_dict() == {"a": 1, "b": 2}
        assert record.as_tuple() == (1, 2)

    def test_equality_and_hash(self):
        schema = Schema(["a"])
        assert schema.record(1) == schema.record(1)
        assert schema.record(1) != schema.record(2)
        assert len({schema.record(1), schema.record(1)}) == 1

    def test_records_of_different_schemas_differ(self):
        assert Schema(["a"]).record(1) != Schema(["b"]).record(1)

    def test_repr_mentions_fields(self):
        assert "a=1" in repr(Schema(["a"]).record(1))


def test_records_from_dicts():
    schema = Schema(["x", "y"])
    records = records_from_dicts(schema, [{"x": 1, "y": 2}, {"x": 3, "y": 4}])
    assert [r.values for r in records] == [(1, 2), (3, 4)]


@given(st.lists(st.integers(), min_size=1, max_size=8, unique=True))
def test_record_roundtrip_via_dict(values):
    fields = [f"f{i}" for i in range(len(values))]
    schema = Schema(fields)
    record = schema.record(*values)
    assert schema.from_mapping(record.as_dict()) == record


@given(
    st.lists(
        st.tuples(st.text(min_size=1, max_size=5), st.integers()),
        min_size=1,
        max_size=6,
    )
)
def test_with_value_then_read_back(pairs):
    fields = []
    for name, _ in pairs:
        if name not in fields:
            fields.append(name)
    schema = Schema(fields)
    record = schema.record(*[0] * len(fields))
    for name, value in pairs:
        record = record.with_value(name, value)
        assert record[name] == value
