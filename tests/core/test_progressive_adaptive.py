"""Statistical-feedback tests for adaptive re-optimization.

The headline loop of this subsystem: run 1 misestimates and replans,
observations fold into the :class:`CalibrationStore`, run 2 starts from
corrected estimates and replans less.  These tests pin that behaviour
down with seeded workloads (ISSUE acceptance criteria b and c):

* after N runs with a deliberately skewed selectivity the per-run p90
  misestimate factor **monotonically shrinks** and the replan count
  drops;
* adaptive replans and the resulting priors are **deterministic under
  parallelism=4** (journal-ordered observation replay);
* the drift-band trigger itself behaves: validation, single-outlier
  breach, infinite factors, dilution by healthy boundaries, and the
  ``replans_adaptive`` counter / ``PLAN_REPLANNED`` span event.
"""

from types import SimpleNamespace

import pytest

from repro import CostHints, RheemContext
from repro.core.channels import CollectionChannel
from repro.core.logical.operators import CollectSink
from repro.core.metrics import MISESTIMATE_BUCKETS
from repro.core.observability import Tracer
from repro.core.observability.registry import HistogramSeries
from repro.core.optimizer.calibration import CalibrationStore
from repro.core.progressive import ProgressiveExecutor

from tests.core.test_progressive import misestimated_loop_plan


def skewed_logical_plan(ctx, rows=20_000, iterations=15):
    """Same shape as ``misestimated_loop_plan`` but kept logical so it
    can go through ``ctx.execute_adaptive`` (which owns the app-level
    optimization and therefore the calibrated estimator)."""
    dq = (
        ctx.collection(range(rows))
        .filter(lambda x: True, hints=CostHints(selectivity=0.0001))
        .repeat(
            iterations,
            lambda s: s.map(lambda x: x + 1, hints=CostHints(udf_load=10.0)),
        )
    )
    dq.plan.add(CollectSink(), [dq.operator])
    return dq.plan


def run_skewed(store, parallelism=1):
    """One seeded adaptive run sharing ``store`` across runs.

    Returns ``(replans, p90, virtual_ms)`` where ``p90`` is the run's
    own boundary misestimate distribution (not the store's cumulative
    one).
    """
    ctx = RheemContext(calibrate=store, parallelism=parallelism)
    result, replans = ctx.execute_adaptive(skewed_logical_plan(ctx))
    window = HistogramSeries(MISESTIMATE_BUCKETS)
    for obs in result.metrics.calibration_observations:
        if obs.estimated > 0 and obs.observed > 0:
            ratio = obs.observed / obs.estimated
            window.observe(max(ratio, 1.0 / ratio))
    return replans, window.quantile(0.9), result.metrics.virtual_ms


class TestStatisticalFeedback:
    def test_p90_shrinks_and_replans_drop_over_runs(self):
        store = CalibrationStore()
        history = [run_skewed(store) for _ in range(3)]
        replans = [h[0] for h in history]
        p90s = [h[1] for h in history]
        # run 1 replans on the 10^4 misestimate; runs 2..N start from
        # corrected estimates and stop replanning
        assert replans[0] >= 1
        assert replans[1] < replans[0]
        assert replans[2] == replans[1]
        # the per-run p90 factor shrinks monotonically as priors converge
        assert p90s[1] < p90s[0]
        assert p90s[2] <= p90s[1]
        # and the warmed-up run is within the healthy band
        assert p90s[-1] < 4.0

    def test_warm_run_bill_not_worse(self):
        store = CalibrationStore()
        _, _, cold_ms = run_skewed(store)
        _, _, warm_ms = run_skewed(store)
        assert warm_ms <= cold_ms

    def test_deterministic_under_parallelism(self):
        """Criterion (c): the same runs at parallelism 1 and 4 yield the
        same replan counts and *identical* learned priors — observation
        order is pinned by journal replay, not thread timing."""
        snaps = {}
        replans_by_par = {}
        for parallelism in (1, 4):
            store = CalibrationStore()
            replans_by_par[parallelism] = [
                run_skewed(store, parallelism=parallelism)[0]
                for _ in range(2)
            ]
            snaps[parallelism] = store.snapshot()
        assert replans_by_par[1] == replans_by_par[4]
        assert snaps[1] == snaps[4]

    def test_replans_adaptive_counter_and_event(self):
        tracer = Tracer()
        ctx = RheemContext(calibrate=True, tracer=tracer)
        result, replans = ctx.execute_adaptive(skewed_logical_plan(ctx))
        assert replans >= 1
        assert (
            result.metrics.registry.counter("replans_adaptive").total()
            == replans
        )
        events = [
            event
            for span in tracer.spans
            for event in span.events
            if event.name == "PLAN_REPLANNED"
        ]
        assert len(events) == replans
        assert events[0].attributes["trigger"] == "p90_drift"
        assert events[0].attributes["p90"] >= 4.0
        assert events[0].attributes["band_high"] == 4.0

    def test_kill_switch_uses_legacy_trigger(self, ctx, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CALIBRATION", "1")
        progressive = ProgressiveExecutor(ctx.task_optimizer)
        result, replans = progressive.execute_progressively(
            misestimated_loop_plan(ctx)
        )
        assert replans >= 1  # gross misestimate still replans
        assert len(result.single) == 20_000
        # ...but through the legacy per-boundary path: no adaptive counter
        assert (
            result.metrics.registry.counter("replans_adaptive").total() == 0
        )


class TestDriftBand:
    def test_band_validation(self, ctx):
        with pytest.raises(ValueError, match="drift_band"):
            ProgressiveExecutor(ctx.task_optimizer, drift_band=(0.5, 4.0))
        with pytest.raises(ValueError, match="drift_band"):
            ProgressiveExecutor(ctx.task_optimizer, drift_band=(8.0, 4.0))

    def test_wide_band_suppresses_replans(self, ctx):
        progressive = ProgressiveExecutor(
            ctx.task_optimizer, drift_band=(1.0, 1e9)
        )
        result, replans = progressive.execute_progressively(
            misestimated_loop_plan(ctx)
        )
        assert replans == 0
        assert len(result.single) == 20_000

    def test_default_band_replans_like_legacy(self, ctx, monkeypatch):
        """On a single-gross-outlier plan the drift trigger and the
        legacy fixed threshold agree (single-sample p90 is exact)."""
        adaptive = ProgressiveExecutor(ctx.task_optimizer)
        _, drift_replans = adaptive.execute_progressively(
            misestimated_loop_plan(ctx)
        )
        monkeypatch.setenv("REPRO_NO_CALIBRATION", "1")
        legacy = ProgressiveExecutor(ctx.task_optimizer)
        _, legacy_replans = legacy.execute_progressively(
            misestimated_loop_plan(ctx)
        )
        assert drift_replans == legacy_replans >= 1

    # -- _drift_exceeded unit tests over stub atoms --------------------

    @staticmethod
    def _drift(ctx, estimates, observed, band=(1.0, 4.0)):
        progressive = ProgressiveExecutor(ctx.task_optimizer, drift_band=band)
        atom = SimpleNamespace(output_ids=sorted(estimates))
        channels = {
            op_id: CollectionChannel(list(range(n)), "java")
            for op_id, n in observed.items()
        }
        execution = SimpleNamespace(estimates=estimates)
        window = HistogramSeries(MISESTIMATE_BUCKETS)
        return progressive._drift_exceeded(atom, channels, execution, window)

    def test_single_outlier_breaches(self, ctx):
        assert self._drift(ctx, {1: 10.0}, {1: 40})
        assert not self._drift(ctx, {1: 10.0}, {1: 39})

    def test_underestimate_folds(self, ctx):
        # 40 estimated vs 10 observed is the same folded factor of 4
        assert self._drift(ctx, {1: 40.0}, {1: 10})

    def test_zero_estimate_is_immediate_breach(self, ctx):
        assert self._drift(ctx, {1: 0.0}, {1: 5})

    def test_healthy_majority_dilutes_one_moderate_outlier(self, ctx):
        estimates = {i: 10.0 for i in range(1, 11)}
        observed = {i: 10 for i in range(1, 11)}
        observed[10] = 45  # one 4.5x miss among nine exact boundaries
        assert not self._drift(ctx, estimates, observed)
        # whereas alone it would breach
        assert self._drift(ctx, {10: 10.0}, {10: 45})

    def test_broad_moderate_drift_breaches(self, ctx):
        # every boundary off by ~6x: p90 lands above the band high
        estimates = {i: 10.0 for i in range(1, 11)}
        observed = {i: 60 for i in range(1, 11)}
        assert self._drift(ctx, estimates, observed)

    def test_missing_estimate_or_channel_is_skipped(self, ctx):
        progressive = ProgressiveExecutor(ctx.task_optimizer)
        atom = SimpleNamespace(output_ids=[1, 2])
        execution = SimpleNamespace(estimates={1: 10.0})
        window = HistogramSeries(MISESTIMATE_BUCKETS)
        assert not progressive._drift_exceeded(atom, {}, execution, window)
        assert window.n == 0
