"""Tests for the Executor: scheduling, retries, loops, metrics."""

import pytest

from repro import FailureInjector, RheemContext
from repro.core.optimizer.application import ApplicationOptimizer
from repro.core.optimizer.enumerator import MultiPlatformOptimizer
from repro.core.executor import ExecutionResult, Executor
from repro.core.logical.operators import CollectionSource, CollectSink, Map
from repro.core.logical.plan import LogicalPlan
from repro.core.metrics import ExecutionMetrics
from repro.core.runtime import RuntimeContext
from repro.errors import ExecutionError
from repro.platforms import JavaPlatform, SparkPlatform


def run_plan(plan, platforms=None, runtime=None, max_retries=2, forced=None):
    physical = ApplicationOptimizer().optimize(plan)
    optimizer = MultiPlatformOptimizer(platforms or [JavaPlatform()])
    execution = optimizer.optimize(physical, forced_platform=forced)
    return Executor(max_retries=max_retries).execute(execution, runtime)


def simple_plan():
    plan = LogicalPlan()
    src = plan.add(CollectionSource([1, 2, 3]))
    mapped = plan.add(Map(lambda x: x * 10), [src])
    plan.add(CollectSink(), [mapped])
    return plan


class TestBasics:
    def test_single_result(self):
        result = run_plan(simple_plan())
        assert result.single == [10, 20, 30]

    def test_metrics_populated(self):
        result = run_plan(simple_plan())
        metrics = result.metrics
        assert metrics.virtual_ms > 0
        assert metrics.atoms_executed == 1
        assert metrics.wall_ms >= 0
        assert "java" in metrics.by_platform()

    def test_startup_charged_once_per_platform(self):
        result = run_plan(simple_plan())
        startups = [
            e for e in result.metrics.ledger.entries if e.label == "startup"
        ]
        assert len(startups) == 1

    def test_single_raises_on_multi_sink(self):
        result = ExecutionResult({1: [], 2: []}, ExecutionMetrics())
        with pytest.raises(ExecutionError, match="2 collect sinks"):
            result.single


class TestFailureHandling:
    def test_injected_failure_retried(self):
        runtime = RuntimeContext(failure_injector=FailureInjector({0: 1}))
        result = run_plan(simple_plan(), runtime=runtime)
        assert result.single == [10, 20, 30]
        assert result.metrics.retries == 1

    def test_exhausted_retries_raise(self):
        runtime = RuntimeContext(failure_injector=FailureInjector({0: 10}))
        with pytest.raises(ExecutionError, match="failed after 3 attempts"):
            run_plan(simple_plan(), runtime=runtime, max_retries=2)

    def test_retry_counter_on_failure(self):
        runtime = RuntimeContext(failure_injector=FailureInjector({0: 2}))
        result = run_plan(simple_plan(), runtime=runtime, max_retries=2)
        assert result.metrics.retries == 2


class TestLoops:
    def test_loop_executes_exact_iterations(self, ctx):
        out, metrics = (
            ctx.collection([0])
            .repeat(4, lambda dq: dq.map(lambda x: x + 1))
            .collect_with_metrics(platform="java")
        )
        assert out == [4]
        assert metrics.loop_iterations == 4

    def test_loop_zero_iterations_passthrough(self, ctx):
        out = (
            ctx.collection([7])
            .repeat(0, lambda dq: dq.map(lambda x: x + 1))
            .collect(platform="java")
        )
        assert out == [7]

    def test_condition_stops_early(self, ctx):
        out, metrics = (
            ctx.collection([0])
            .repeat(
                None,
                lambda dq: dq.map(lambda x: x + 1),
                condition=lambda state: state[0] >= 3,
                max_iterations=100,
            )
            .collect_with_metrics(platform="java")
        )
        assert out == [3]
        assert metrics.loop_iterations == 3

    def test_max_iterations_bounds_condition_loop(self, ctx):
        out, metrics = (
            ctx.collection([0])
            .repeat(
                None,
                lambda dq: dq.map(lambda x: x + 1),
                condition=lambda state: False,
                max_iterations=5,
            )
            .collect_with_metrics(platform="java")
        )
        assert out == [5]
        assert metrics.loop_iterations == 5

    def test_nested_loops(self, ctx):
        out = (
            ctx.collection([0])
            .repeat(
                2,
                lambda outer: outer.repeat(
                    3, lambda inner: inner.map(lambda x: x + 1)
                ),
            )
            .collect(platform="java")
        )
        assert out == [6]

    def test_loop_side_source_cached(self, ctx):
        counter = {"reads": 0}

        class CountingList(list):
            def __iter__(self):
                counter["reads"] += 1
                return super().__iter__()

        data = CountingList([1, 2, 3])

        def body(state):
            side = state.source(data)
            return (
                state.cross(side)
                .map(lambda p: p[0] + p[1])
                .reduce(lambda a, b: a + b)
            )

        out = ctx.collection([0]).repeat(3, body).collect(platform="java")
        # 0 -> 6 -> 24 -> 78
        assert out == [78]
        # The CollectionSource copies once at construction; the loop cache
        # prevents per-iteration re-reads of the source operator.
        assert counter["reads"] <= 2

    def test_loop_sync_charged_per_iteration(self, ctx):
        _, metrics = (
            ctx.collection([0])
            .repeat(5, lambda dq: dq.map(lambda x: x + 1))
            .collect_with_metrics(platform="spark")
        )
        loop_entries = [
            e for e in metrics.ledger.entries if e.label == "loop.sync"
        ]
        assert len(loop_entries) == 5


class TestMovement:
    def test_cross_platform_movement_charged(self):
        ctx = RheemContext(platforms=[JavaPlatform(), SparkPlatform()])
        # Pin a loop on spark with a java-cheap pre-step by forcing spark:
        out, metrics = (
            ctx.collection(list(range(50)))
            .map(lambda x: x + 1)
            .collect_with_metrics(platform="spark")
        )
        assert out == list(range(1, 51))
        # single platform: no movement
        assert metrics.movement_ms == 0.0


class TestMetricsSummary:
    def test_summary_mentions_platforms(self):
        result = run_plan(simple_plan())
        summary = result.metrics.summary()
        assert "java" in summary
        assert "atoms=1" in summary

    def test_by_label_prefix(self):
        result = run_plan(simple_plan())
        assert result.metrics.by_label_prefix("op.") > 0
        assert result.metrics.by_label_prefix("startup") > 0
