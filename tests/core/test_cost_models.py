"""Tests for cost models, work units and the work meter."""

import pytest

from repro.core.optimizer.cost import (
    FreeMovementCostModel,
    MovementCostModel,
    OperatorCostInput,
)
from repro.core.optimizer.workunits import register_work_units, work_units
from repro.core import workmeter
from repro.platforms.java.platform import JavaCostModel
from repro.platforms.postgres.platform import PostgresCostModel
from repro.platforms.spark.cluster import ClusterConfig
from repro.platforms.spark.platform import SparkCostModel


def ci(kind, in_cards, out, load=1.0):
    return OperatorCostInput(kind, tuple(float(c) for c in in_cards), float(out), load)


class TestWorkUnits:
    def test_map_scales_with_load(self):
        light = work_units(ci("map", [1000], 1000, 1.0))
        heavy = work_units(ci("map", [1000], 1000, 10.0))
        assert heavy > light * 5

    def test_sort_superlinear(self):
        small = work_units(ci("sort", [1000], 1000))
        big = work_units(ci("sort", [100000], 100000))
        assert big > 100 * small

    def test_cross_quadratic(self):
        assert work_units(ci("cross", [100, 100], 10000)) >= 10000

    def test_hash_join_linear_in_inputs_and_output(self):
        units = work_units(ci("join.hash", [1000, 2000], 500))
        assert units == pytest.approx(3500)

    def test_unknown_kind_fallback(self):
        assert work_units(ci("custom.thing", [10, 20], 5)) == 35

    def test_registration_overrides(self):
        register_work_units("custom.flat", lambda c: 123.0)
        assert work_units(ci("custom.flat", [1], 1)) == 123.0


class TestPlatformModels:
    def test_spark_startup_dominates_java(self):
        assert SparkCostModel(ClusterConfig()).startup_ms() > 10 * JavaCostModel().startup_ms()

    def test_spark_wide_operator_pays_shuffle(self):
        model = SparkCostModel(ClusterConfig())
        narrow = model.operator_ms(ci("map", [10000], 10000))
        wide = model.operator_ms(ci("groupby.hash", [10000], 1000))
        assert wide > narrow

    def test_spark_parallelism_helps_large_maps(self):
        spark = SparkCostModel(ClusterConfig())
        java = JavaCostModel()
        big = ci("map", [10_000_000], 10_000_000, 5.0)
        assert spark.operator_ms(big) < java.operator_ms(big)

    def test_java_cheaper_on_small_inputs(self):
        spark = SparkCostModel(ClusterConfig())
        java = JavaCostModel()
        small = ci("groupby.hash", [100], 10)
        assert java.operator_ms(small) < spark.operator_ms(small)

    def test_postgres_relational_fast_udf_slow(self):
        model = PostgresCostModel()
        relational = model.operator_ms(ci("join.hash", [1000, 1000], 1000))
        udf = model.operator_ms(ci("map", [1000], 1000, 10.0))
        assert udf > relational

    def test_udf_work_straggler_bound_on_spark(self):
        model = SparkCostModel(ClusterConfig(workers=8, default_parallelism=16))
        balanced = model.udf_work_ms(16000.0, 1000.0)
        skewed = model.udf_work_ms(16000.0, 16000.0)
        assert skewed == pytest.approx(8 * balanced)

    def test_udf_work_java_is_total(self):
        model = JavaCostModel()
        assert model.udf_work_ms(1000.0, 1.0) == pytest.approx(
            model.per_unit_ms * 1000.0
        )

    def test_loop_iteration_overheads_ordered(self):
        assert (
            SparkCostModel(ClusterConfig()).loop_iteration_ms()
            > JavaCostModel().loop_iteration_ms()
        )


class TestMovement:
    def test_same_model_free(self):
        java = JavaCostModel()
        assert MovementCostModel().transfer_ms(java, java, 1e6) == 0.0

    def test_cost_scales_with_cardinality(self):
        model = MovementCostModel()
        java, spark = JavaCostModel(), SparkCostModel(ClusterConfig())
        small = model.transfer_ms(java, spark, 100)
        large = model.transfer_ms(java, spark, 100000)
        assert large > small

    def test_free_model(self):
        model = FreeMovementCostModel()
        java, spark = JavaCostModel(), SparkCostModel(ClusterConfig())
        assert model.transfer_ms(java, spark, 1e9) == 0.0


class TestWorkMeter:
    def test_report_and_drain(self):
        workmeter.drain_work()
        workmeter.report_work(5.0)
        workmeter.report_work(2.5)
        assert workmeter.peek_work() == 7.5
        assert workmeter.drain_work() == 7.5
        assert workmeter.drain_work() == 0.0


class TestClusterConfig:
    def test_validation(self):
        with pytest.raises(Exception):
            ClusterConfig(workers=0)
        with pytest.raises(Exception):
            ClusterConfig(default_parallelism=0)

    def test_effective_parallelism(self):
        assert ClusterConfig(workers=4, default_parallelism=16).effective_parallelism == 4
        assert ClusterConfig(workers=16, default_parallelism=4).effective_parallelism == 4
