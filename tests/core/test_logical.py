"""Unit tests for logical operators, plans and cost hints."""

import pytest

from repro.core.logical.operators import (
    CollectionSource,
    CollectSink,
    CostHints,
    Filter,
    GroupBy,
    LoopInput,
    Map,
    Repeat,
    Sample,
)
from repro.core.logical.plan import LogicalPlan
from repro.errors import ValidationError


class TestCostHints:
    def test_defaults(self):
        hints = CostHints()
        assert hints.selectivity is None
        assert hints.udf_load == 1.0

    def test_selectivity_bounds(self):
        CostHints(selectivity=0.0)
        CostHints(selectivity=1.0)
        with pytest.raises(ValidationError):
            CostHints(selectivity=1.5)
        with pytest.raises(ValidationError):
            CostHints(selectivity=-0.1)

    def test_output_factor_non_negative(self):
        with pytest.raises(ValidationError):
            CostHints(output_factor=-1)

    def test_udf_load_positive(self):
        with pytest.raises(ValidationError):
            CostHints(udf_load=0)


class TestOperators:
    def test_map_apply_op(self):
        assert Map(lambda x: x + 1).apply_op(3) == 4

    def test_filter_apply_op(self):
        assert Filter(lambda x: x > 2).apply_op(3) is True

    def test_structural_operator_apply_op_raises(self):
        with pytest.raises(NotImplementedError):
            GroupBy(lambda x: x).apply_op(1)

    def test_collection_source_copies_data(self):
        data = [1, 2]
        source = CollectionSource(data)
        data.append(3)
        assert source.data == [1, 2]

    def test_sample_negative_size_rejected(self):
        with pytest.raises(ValidationError):
            Sample(-1)

    def test_describe_contains_name(self):
        assert "CollectionSource" in CollectionSource([1]).describe()

    def test_unique_ids(self):
        a, b = Map(lambda x: x), Map(lambda x: x)
        assert a.id != b.id


def build_body():
    body = LogicalPlan()
    loop_in = LoopInput()
    body.add(loop_in)
    out = body.add(Map(lambda x: x + 1), [loop_in])
    return body, loop_in, out


class TestRepeat:
    def test_requires_times_or_condition(self):
        body, loop_in, out = build_body()
        with pytest.raises(ValidationError, match="times"):
            Repeat(body, loop_in, out)

    def test_negative_times_rejected(self):
        body, loop_in, out = build_body()
        with pytest.raises(ValidationError):
            Repeat(body, loop_in, out, times=-1)

    def test_body_membership_checked(self):
        body, loop_in, out = build_body()
        foreign = LoopInput()
        with pytest.raises(ValidationError, match="not part of the body"):
            Repeat(body, foreign, out, times=1)

    def test_iteration_bound(self):
        body, loop_in, out = build_body()
        assert Repeat(body, loop_in, out, times=7).iteration_bound == 7
        bounded = Repeat(
            body, loop_in, out, condition=lambda s: True, max_iterations=9
        )
        assert bounded.iteration_bound == 9

    def test_describe_mentions_iterations(self):
        body, loop_in, out = build_body()
        assert "7" in Repeat(body, loop_in, out, times=7).describe()


class TestLogicalPlan:
    def test_valid_chain(self):
        plan = LogicalPlan()
        src = plan.add(CollectionSource([1]))
        sink = plan.add(CollectSink(), [src])
        plan.validate()
        assert plan.sinks == (sink,)
        assert plan.collect_sinks() == (sink,)

    def test_loop_input_outside_repeat_rejected(self):
        plan = LogicalPlan()
        loop_in = plan.add(LoopInput())
        plan.add(CollectSink(), [loop_in])
        with pytest.raises(ValidationError, match="Repeat body"):
            plan.validate()

    def test_repeat_body_validated(self):
        body = LogicalPlan()
        loop_in = body.add(LoopInput())
        second_in = body.add(LoopInput())
        out = body.add(Map(lambda x: x), [loop_in])
        body.add(CollectSink(), [second_in])
        repeat = Repeat(body, loop_in, out, times=1)
        plan = LogicalPlan()
        src = plan.add(CollectionSource([1]))
        plan.add(repeat, [src])
        with pytest.raises(ValidationError, match="exactly one LoopInput"):
            plan.validate()

    def test_explain_renders(self):
        plan = LogicalPlan()
        src = plan.add(CollectionSource([1]))
        plan.add(CollectSink(), [src])
        assert "CollectionSource" in plan.explain()

    def test_len(self):
        plan = LogicalPlan()
        plan.add(CollectionSource([1]))
        assert len(plan) == 1
