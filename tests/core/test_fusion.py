"""Tests for narrow-chain fusion (the platform-layer optimization)."""

from repro import RheemContext
from repro.core.physical.fusion import (
    PFusedPipeline,
    compose_stages,
    fuse_narrow_chains,
)
from repro.core.logical.operators import Filter, FlatMap, Map
from repro.core.physical.operators import PFilter, PFlatMap, PMap
from repro.platforms import JavaPlatform, SparkPlatform


def build_atom(ctx, handle, platform_name="java"):
    from repro.core.logical.operators import CollectSink

    # mirror collect(): a sink terminates the plan, so the chain's tail is
    # not itself an externally visible output
    handle.plan.add(CollectSink(), [handle.operator])
    physical = ctx.app_optimizer.optimize(handle.plan)
    execution = ctx.task_optimizer.optimize(physical, forced_platform=platform_name)
    return execution


class TestComposeStages:
    def test_map_filter_flatmap_order(self):
        stages = [
            PMap(Map(lambda x: x + 1)),
            PFilter(Filter(lambda x: x % 2 == 0)),
            PFlatMap(FlatMap(lambda x: [x, x])),
        ]
        run = compose_stages(stages)
        assert run([1, 2, 3]) == [2, 2, 4, 4]

    def test_empty_input(self):
        run = compose_stages([PMap(Map(lambda x: x))])
        assert run([]) == []


class TestPFusedPipeline:
    def test_nested_pipelines_flatten(self):
        inner = PFusedPipeline([PMap(Map(lambda x: x))])
        outer = PFusedPipeline([inner, PFilter(Filter(lambda x: True))])
        assert len(outer.stages) == 2

    def test_hints_sum_udf_load(self):
        from repro.core.logical.operators import CostHints

        pipeline = PFusedPipeline(
            [
                PMap(Map(lambda x: x, hints=CostHints(udf_load=3.0))),
                PMap(Map(lambda x: x, hints=CostHints(udf_load=4.0))),
            ]
        )
        assert pipeline.hints.udf_load == 7.0

    def test_describe_lists_kinds(self):
        pipeline = PFusedPipeline([PMap(Map(lambda x: x))])
        assert "map" in pipeline.describe()


class TestFusionRewrite:
    def test_chain_fused_into_single_operator(self):
        ctx = RheemContext(platforms=[JavaPlatform()])
        handle = (
            ctx.collection(range(10))
            .map(lambda x: x + 1)
            .filter(lambda x: x > 3)
            .map(lambda x: x * 2)
        )
        execution = build_atom(ctx, handle)
        kinds = [
            op.kind for atom in execution.atoms for op in atom.fragment
        ]
        assert kinds.count("fused.narrow") == 1
        assert "map" not in kinds and "filter" not in kinds

    def test_results_unchanged_by_fusion(self):
        data = list(range(50))
        fused_ctx = RheemContext(platforms=[JavaPlatform(fuse_narrow=True)])
        plain_ctx = RheemContext(platforms=[JavaPlatform(fuse_narrow=False)])

        def run(ctx):
            return (
                ctx.collection(data)
                .map(lambda x: x * 3)
                .filter(lambda x: x % 2 == 0)
                .flat_map(lambda x: [x, -x])
                .collect()
            )

        assert run(fused_ctx) == run(plain_ctx)

    def test_fusion_reduces_virtual_overhead_on_spark(self):
        data = list(range(1000))

        def run(fuse):
            ctx = RheemContext(platforms=[SparkPlatform(fuse_narrow=fuse)])
            handle = ctx.collection(data)
            for _ in range(6):
                handle = handle.map(lambda x: x + 1)
            return handle.collect_with_metrics()

        out_fused, fused = run(True)
        out_plain, plain = run(False)
        assert out_fused == out_plain
        assert fused.virtual_ms < plain.virtual_ms

    def test_shared_intermediate_not_fused(self):
        """A narrow op feeding two consumers must keep its own result."""
        ctx = RheemContext(platforms=[JavaPlatform()])
        base = ctx.collection(range(10)).map(lambda x: x + 1)
        left = base.map(lambda x: x * 2)
        result = left.union(base.map(lambda x: -x))
        assert sorted(result.collect()) == sorted(
            [(x + 1) * 2 for x in range(10)] + [-(x + 1) for x in range(10)]
        )

    def test_externally_consumed_output_not_fused(self):
        """Operators whose output crosses the atom boundary keep their
        identity (fusion would destroy the channel)."""
        ctx = RheemContext(platforms=[JavaPlatform(), SparkPlatform()])
        out = (
            ctx.collection(range(20))
            .map(lambda x: x + 1)
            .map(lambda x: x * 2)
            .collect()
        )
        assert out == [(x + 1) * 2 for x in range(20)]

    def test_fusion_inside_loop_bodies(self):
        ctx = RheemContext(platforms=[JavaPlatform()])
        out = (
            ctx.collection([1])
            .repeat(
                3,
                lambda dq: dq.map(lambda x: x + 1).map(lambda x: x * 2),
            )
            .collect()
        )
        # per iteration: (x+1)*2
        assert out == [22]  # 1 -> 4 -> 10 -> 22


def test_fuse_narrow_chains_counts_rewrites():
    from repro.core.logical.operators import CollectSink

    ctx = RheemContext(platforms=[JavaPlatform(fuse_narrow=False)])
    handle = (
        ctx.collection(range(5))
        .map(lambda x: x)
        .map(lambda x: x)
        .map(lambda x: x)
    )
    handle.plan.add(CollectSink(), [handle.operator])
    physical = ctx.app_optimizer.optimize(handle.plan)
    execution = ctx.task_optimizer.optimize(physical, forced_platform="java")
    (atom,) = execution.atoms
    assert fuse_narrow_chains(atom) == 2


def test_externally_visible_operators_never_fused():
    """Without a sink, the chain tail is the plan output and must keep
    its identity (channels are keyed by operator id)."""
    ctx = RheemContext(platforms=[JavaPlatform()])
    handle = ctx.collection(range(5)).map(lambda x: x).map(lambda x: x)
    physical = ctx.app_optimizer.optimize(handle.plan)
    execution = ctx.task_optimizer.optimize(physical, forced_platform="java")
    (atom,) = execution.atoms
    tail_ids = {op.id for op in atom.fragment}
    assert atom.output_ids <= tail_ids
