"""Tests for the storage platforms (x-store level)."""

import pytest

from repro.core.types import Schema
from repro.errors import StorageError
from repro.storage.platforms import (
    HdfsStore,
    KeyValueStore,
    LocalFsStore,
    RelationalStore,
)

BLOB_STORES = [LocalFsStore, HdfsStore, KeyValueStore]


@pytest.mark.parametrize("store_class", BLOB_STORES, ids=lambda c: c.__name__)
class TestBlobContract:
    def test_roundtrip(self, store_class, tmp_path):
        store = self._make(store_class, tmp_path)
        cost = store.put_blob("data/x", b"hello world")
        assert cost > 0
        blob, read_cost = store.get_blob("data/x")
        assert blob == b"hello world"
        assert read_cost > 0

    def test_overwrite(self, store_class, tmp_path):
        store = self._make(store_class, tmp_path)
        store.put_blob("k", b"one")
        store.put_blob("k", b"two")
        assert store.get_blob("k")[0] == b"two"

    def test_missing_blob(self, store_class, tmp_path):
        store = self._make(store_class, tmp_path)
        with pytest.raises(StorageError, match="no blob"):
            store.get_blob("ghost")

    def test_delete_idempotent(self, store_class, tmp_path):
        store = self._make(store_class, tmp_path)
        store.put_blob("k", b"x")
        store.delete_blob("k")
        store.delete_blob("k")
        assert not store.exists("k")

    def test_exists_and_list(self, store_class, tmp_path):
        store = self._make(store_class, tmp_path)
        store.put_blob("a", b"1")
        store.put_blob("b", b"2")
        assert store.exists("a")
        assert set(store.list_paths()) >= {"a", "b"}

    def test_empty_blob(self, store_class, tmp_path):
        store = self._make(store_class, tmp_path)
        store.put_blob("empty", b"")
        assert store.get_blob("empty")[0] == b""

    def test_cost_scales_with_size(self, store_class, tmp_path):
        store = self._make(store_class, tmp_path)
        small = store.put_blob("s", b"x" * 100)
        large = store.put_blob("l", b"x" * 1_000_000)
        assert large > small

    @staticmethod
    def _make(store_class, tmp_path):
        if store_class is LocalFsStore:
            return store_class(root=str(tmp_path / "fs"))
        return store_class()


class TestHdfs:
    def test_blocks_created(self):
        store = HdfsStore(block_size=100)
        store.put_blob("big", b"z" * 450)
        assert store.block_count("big") == 5

    def test_replication_bound(self):
        with pytest.raises(StorageError, match="replication"):
            HdfsStore(replication=5, datanodes=3)

    def test_bad_block_size(self):
        with pytest.raises(StorageError):
            HdfsStore(block_size=0)

    def test_read_survives_failures_up_to_replication(self):
        store = HdfsStore(block_size=64, replication=3, datanodes=4)
        payload = b"q" * 500
        store.put_blob("d", payload)
        store.fail_datanode(0)
        store.fail_datanode(1)
        assert store.get_blob("d")[0] == payload

    def test_read_fails_when_all_replicas_down(self):
        store = HdfsStore(block_size=64, replication=2, datanodes=2)
        store.put_blob("d", b"payload")
        store.fail_datanode(0)
        store.fail_datanode(1)
        with pytest.raises(StorageError, match="failed datanodes"):
            store.get_blob("d")

    def test_revive_restores_reads(self):
        store = HdfsStore(replication=2, datanodes=2)
        store.put_blob("d", b"payload")
        store.fail_datanode(0)
        store.fail_datanode(1)
        store.revive_datanode(0)
        assert store.get_blob("d")[0] == b"payload"
        assert store.live_datanodes == 1

    def test_delete_frees_blocks(self):
        store = HdfsStore(block_size=10)
        store.put_blob("d", b"x" * 100)
        store.delete_blob("d")
        assert not store.exists("d")
        assert all(not node for node in store._datanodes)


class TestKeyValue:
    def test_record_api_roundtrip(self):
        store = KeyValueStore()
        store.put_record("ns", "k1", b"v1")
        value, cost = store.get_record("ns", "k1")
        assert value == b"v1"
        assert cost > 0

    def test_missing_key(self):
        with pytest.raises(StorageError, match="no key"):
            KeyValueStore().get_record("ns", "ghost")

    def test_scan_sorted_by_key(self):
        store = KeyValueStore()
        for key in ("b", "a", "c"):
            store.put_record("ns", key, key.encode())
        items, _ = store.scan_records("ns")
        assert [k for k, _ in items] == ["a", "b", "c"]

    def test_record_count(self):
        store = KeyValueStore()
        store.put_record("ns", "a", b"1")
        store.put_record("ns", "a", b"2")
        assert store.record_count("ns") == 1

    def test_large_blob_chunked(self):
        store = KeyValueStore()
        payload = bytes(range(256)) * 300  # > chunk size
        store.put_blob("big", payload)
        assert store.get_blob("big")[0] == payload


class TestRelationalStore:
    def test_records_roundtrip(self):
        schema = Schema(["id", "v"])
        rows = [schema.record(i, i * i) for i in range(10)]
        store = RelationalStore()
        store.put_records("t", schema, rows)
        back, cost = store.get_records("t")
        assert back == rows
        assert cost > 0

    def test_schema_of(self):
        schema = Schema(["id"])
        store = RelationalStore()
        store.put_records("t", schema, [])
        assert store.schema_of("t") == schema

    def test_blob_api_rejected(self):
        store = RelationalStore()
        with pytest.raises(StorageError, match="natively"):
            store.put_blob("x", b"blob")
        with pytest.raises(StorageError, match="natively"):
            store.get_blob("x")

    def test_replace_on_put(self):
        schema = Schema(["id"])
        store = RelationalStore()
        store.put_records("t", schema, [schema.record(1)])
        store.put_records("t", schema, [schema.record(2)])
        rows, _ = store.get_records("t")
        assert [r["id"] for r in rows] == [2]

    def test_missing_table(self):
        with pytest.raises(StorageError):
            RelationalStore().get_records("ghost")
