"""Tests for the WWHow!-style storage optimizer."""

import pytest

from repro.core.types import Schema
from repro.errors import StorageError
from repro.storage import (
    HdfsStore,
    KeyValueStore,
    LocalFsStore,
    RelationalStore,
    StorageOptimizer,
    WorkloadProfile,
)


@pytest.fixture()
def schema():
    return Schema(["id", "a", "b", "c", "d", "e", "f", "g"])


@pytest.fixture()
def optimizer(tmp_path):
    return StorageOptimizer(
        [
            LocalFsStore(root=str(tmp_path)),
            HdfsStore(),
            KeyValueStore(),
            RelationalStore(),
        ]
    )


class TestProfiles:
    def test_projectivity_bounds(self):
        with pytest.raises(StorageError):
            WorkloadProfile(projectivity=0.0)
        with pytest.raises(StorageError):
            WorkloadProfile(projectivity=1.5)

    def test_negative_frequencies(self):
        with pytest.raises(StorageError):
            WorkloadProfile(scans=-1)


class TestPlacement:
    def test_lookup_heavy_chooses_keyed_kv(self, optimizer, schema):
        placement = optimizer.choose(
            schema, 100_000, 80,
            WorkloadProfile(scans=0.01, point_lookups=10_000),
            key_field="id",
        )
        assert placement.store_name == "kvstore"
        assert placement.key_field == "id"

    def test_scan_heavy_avoids_kv(self, optimizer, schema):
        placement = optimizer.choose(
            schema, 100_000, 80, WorkloadProfile(scans=100.0), key_field="id"
        )
        assert placement.store_name != "kvstore"

    def test_projective_scans_prefer_columnar_among_blob_formats(self, tmp_path, schema):
        optimizer = StorageOptimizer([LocalFsStore(root=str(tmp_path))])
        placement = optimizer.choose(
            schema, 100_000, 80, WorkloadProfile(scans=10, projectivity=0.125)
        )
        assert placement.format_name == "columnar"

    def test_estimated_costs_ordered(self, optimizer, schema):
        placements = optimizer.enumerate(
            schema, 10_000, 80, WorkloadProfile(scans=1.0)
        )
        chosen = optimizer.choose(schema, 10_000, 80, WorkloadProfile(scans=1.0))
        assert chosen.estimated_ms == min(p.estimated_ms for p in placements)

    def test_rationale_present(self, optimizer, schema):
        placement = optimizer.choose(schema, 1000, 64, WorkloadProfile())
        assert placement.rationale

    def test_empty_store_list_rejected(self):
        with pytest.raises(StorageError):
            StorageOptimizer([])

    def test_plan_matches_format(self, tmp_path, schema):
        optimizer = StorageOptimizer([LocalFsStore(root=str(tmp_path))])
        placement = optimizer.choose(schema, 1000, 64, WorkloadProfile())
        assert placement.plan is not None
        assert placement.plan.encode.format.name == placement.format_name
