"""Round-trip and error tests for storage formats (property-based)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.types import Schema
from repro.errors import FormatError
from repro.storage.formats import (
    ColumnarFormat,
    CsvFormat,
    JsonLinesFormat,
    PickleFormat,
    format_by_name,
)

FORMATS = [CsvFormat(), JsonLinesFormat(), ColumnarFormat()]

values = st.one_of(
    st.integers(-1000, 1000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=10),
    st.booleans(),
    st.none(),
)


@st.composite
def record_datasets(draw):
    width = draw(st.integers(1, 5))
    schema = Schema([f"f{i}" for i in range(width)])
    rows = draw(
        st.lists(
            st.tuples(*[values for _ in range(width)]).map(
                lambda vs: schema.record(*vs)
            ),
            max_size=20,
        )
    )
    return schema, rows


@pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
class TestRoundTrip:
    def test_simple_roundtrip(self, fmt):
        schema = Schema(["a", "b"])
        rows = [schema.record(1, "x"), schema.record(2, "y,z")]
        blob = fmt.encode(schema, rows)
        assert fmt.decode(schema, blob) == rows

    def test_empty_dataset(self, fmt):
        schema = Schema(["a"])
        blob = fmt.encode(schema, [])
        assert fmt.decode(schema, blob) == []

    def test_schema_mismatch_rejected_on_encode(self, fmt):
        schema = Schema(["a"])
        other = Schema(["b"])
        with pytest.raises(FormatError):
            fmt.encode(schema, [other.record(1)])

    def test_projection_returns_projected_records(self, fmt):
        schema = Schema(["a", "b", "c"])
        rows = [schema.record(i, i * 2, i * 3) for i in range(5)]
        blob = fmt.encode(schema, rows)
        projected = fmt.decode(schema, blob, projection=["c"])
        assert [r.values for r in projected] == [(i * 3,) for i in range(5)]
        assert projected[0].schema.fields == ("c",)


@pytest.mark.parametrize("fmt", FORMATS, ids=lambda f: f.name)
@given(data=record_datasets())
def test_roundtrip_property(fmt, data):
    schema, rows = data
    decoded = fmt.decode(schema, fmt.encode(schema, rows))
    assert decoded == rows


class TestCsvSpecifics:
    def test_values_with_commas_and_quotes(self):
        schema = Schema(["t"])
        rows = [schema.record('he said "a,b", twice')]
        fmt = CsvFormat()
        assert fmt.decode(schema, fmt.encode(schema, rows)) == rows

    def test_header_mismatch_detected(self):
        fmt = CsvFormat()
        blob = fmt.encode(Schema(["a"]), [])
        with pytest.raises(FormatError, match="header"):
            fmt.decode(Schema(["b"]), blob)

    def test_empty_blob_rejected(self):
        with pytest.raises(FormatError, match="header"):
            CsvFormat().decode(Schema(["a"]), b"")


class TestColumnarSpecifics:
    def test_projection_decodes_fewer_values(self):
        fmt = ColumnarFormat()
        schema = Schema(["a", "b", "c", "d"])
        assert fmt.decoded_value_count(schema, 100, ["a"]) == 100
        assert fmt.decoded_value_count(schema, 100, None) == 400

    def test_row_format_projection_decodes_everything(self):
        fmt = CsvFormat()
        schema = Schema(["a", "b", "c", "d"])
        assert fmt.decoded_value_count(schema, 100, ["a"]) == 400

    def test_corrupt_blob(self):
        with pytest.raises(FormatError, match="corrupt"):
            ColumnarFormat().decode(Schema(["a"]), b"garbage")

    def test_field_mismatch(self):
        fmt = ColumnarFormat()
        blob = fmt.encode(Schema(["a"]), [])
        with pytest.raises(FormatError, match="do not match"):
            fmt.decode(Schema(["z"]), blob)


class TestPickleFormat:
    def test_arbitrary_quanta(self):
        fmt = PickleFormat()
        data = [1, (2, 3), "four", None]
        assert fmt.decode(None, fmt.encode(None, data)) == data

    def test_projection_unsupported(self):
        fmt = PickleFormat()
        blob = fmt.encode(None, [1])
        with pytest.raises(FormatError, match="projection"):
            fmt.decode(None, blob, projection=["x"])

    def test_unpicklable_rejected(self):
        with pytest.raises(FormatError, match="picklable"):
            PickleFormat().encode(None, [lambda x: x])


def test_format_by_name():
    assert format_by_name("csv").name == "csv"
    assert format_by_name("columnar").name == "columnar"
    with pytest.raises(FormatError, match="unknown format"):
        format_by_name("parquet")
