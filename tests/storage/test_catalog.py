"""Tests for the catalog, hot buffer, transformation plans and l-store ops."""

import pytest

from repro.core.types import Schema
from repro.errors import CatalogError, StorageError
from repro.storage import (
    Catalog,
    CatalogAwareEstimator,
    HotDataBuffer,
    KeyValueStore,
    LoadDataset,
    LocalFsStore,
    RelationalStore,
    StoreDataset,
    TransformDataset,
    TransformationPlan,
)
from repro.storage.formats import CsvFormat
from repro.storage.transformation import (
    EncodeStep,
    PartitionStep,
    ProjectStep,
    SortStep,
)


@pytest.fixture()
def schema():
    return Schema(["id", "name", "score"])


@pytest.fixture()
def rows(schema):
    return [schema.record(i, f"n{i}", float(i * 3 % 17)) for i in range(40)]


@pytest.fixture()
def catalog(tmp_path):
    catalog = Catalog()
    catalog.register_store(LocalFsStore(root=str(tmp_path / "fs")))
    catalog.register_store(KeyValueStore())
    catalog.register_store(RelationalStore())
    return catalog


class TestCatalogBasics:
    def test_write_read_roundtrip(self, catalog, schema, rows):
        catalog.write_dataset("d", rows, "localfs", schema=schema)
        assert catalog.read_dataset("d") == rows

    def test_duplicate_store_rejected(self, catalog):
        with pytest.raises(CatalogError, match="already registered"):
            catalog.register_store(LocalFsStore())

    def test_unknown_store(self, catalog, schema, rows):
        with pytest.raises(CatalogError, match="unknown store"):
            catalog.write_dataset("d", rows, "s3", schema=schema)

    def test_unknown_dataset(self, catalog):
        with pytest.raises(CatalogError, match="unknown dataset"):
            catalog.read_dataset("ghost")

    def test_entry_statistics(self, catalog, schema, rows):
        catalog.write_dataset("d", rows, "localfs", schema=schema)
        entry = catalog.entry("d")
        assert entry.cardinality == 40
        assert entry.size_bytes > 0
        assert entry.store.name == "localfs"

    def test_drop_dataset_removes_blobs(self, catalog, schema, rows):
        catalog.write_dataset("d", rows, "localfs", schema=schema)
        store = catalog.store("localfs")
        assert store.list_paths()
        catalog.drop_dataset("d")
        assert "d" not in catalog
        assert not store.list_paths()

    def test_rewrite_replaces(self, catalog, schema, rows):
        catalog.write_dataset("d", rows, "localfs", schema=schema)
        catalog.write_dataset("d", rows[:3], "localfs", schema=schema)
        assert len(catalog.read_dataset("d")) == 3

    def test_schemaless_dataset(self, catalog):
        catalog.write_dataset("nums", list(range(10)), "localfs")
        assert catalog.read_dataset("nums") == list(range(10))

    def test_storage_cost_accumulates(self, catalog, schema, rows):
        before = catalog.storage_ms
        catalog.write_dataset("d", rows, "localfs", schema=schema)
        catalog.read_dataset("d")
        assert catalog.storage_ms > before

    def test_projection_read(self, catalog, schema, rows):
        catalog.write_dataset("d", rows, "localfs", schema=schema)
        projected = catalog.read_dataset("d", projection=["score"])
        assert projected[0].schema.fields == ("score",)


class TestKeyedDatasets:
    def test_point_lookup(self, catalog, schema, rows):
        catalog.write_dataset("k", rows, "kvstore", schema=schema, key_field="id")
        found, cost = catalog.point_lookup("k", 7)
        assert found[0]["name"] == "n7"
        assert cost > 0

    def test_keyed_scan(self, catalog, schema, rows):
        catalog.write_dataset("k", rows, "kvstore", schema=schema, key_field="id")
        assert len(catalog.read_dataset("k")) == 40

    def test_point_lookup_on_unkeyed_rejected(self, catalog, schema, rows):
        catalog.write_dataset("d", rows, "localfs", schema=schema)
        with pytest.raises(CatalogError, match="not keyed"):
            catalog.point_lookup("d", 1)

    def test_key_field_requires_kv_store(self, catalog, schema, rows):
        with pytest.raises(CatalogError, match="key-value store"):
            catalog.write_dataset(
                "d", rows, "localfs", schema=schema, key_field="id"
            )


class TestRelationalDatasets:
    def test_native_roundtrip(self, catalog, schema, rows):
        catalog.write_dataset("t", rows, "relstore", schema=schema)
        assert catalog.read_dataset("t") == rows

    def test_schema_required(self, catalog):
        with pytest.raises(CatalogError, match="require a schema"):
            catalog.write_dataset("t", [1, 2], "relstore")


class TestHotBuffer:
    def test_hit_after_first_read(self, tmp_path, schema, rows):
        catalog = Catalog(buffer=HotDataBuffer())
        catalog.register_store(LocalFsStore(root=str(tmp_path)))
        catalog.write_dataset("d", rows, "localfs", schema=schema)
        catalog.read_dataset("d")
        _, cost = catalog.read_dataset_with_cost("d")
        assert cost == 0.0
        assert catalog.buffer.hits == 1

    def test_write_invalidates(self, tmp_path, schema, rows):
        catalog = Catalog(buffer=HotDataBuffer())
        catalog.register_store(LocalFsStore(root=str(tmp_path)))
        catalog.write_dataset("d", rows, "localfs", schema=schema)
        catalog.read_dataset("d")
        catalog.write_dataset("d", rows[:2], "localfs", schema=schema)
        assert len(catalog.read_dataset("d")) == 2

    def test_lru_eviction(self):
        buffer = HotDataBuffer(capacity_bytes=100)
        buffer.put(("a", None), [1], 60)
        buffer.put(("b", None), [2], 60)  # evicts a
        assert buffer.get(("a", None)) is None
        assert buffer.get(("b", None)) == [2]
        assert buffer.used_bytes == 60

    def test_oversized_entry_not_cached(self):
        buffer = HotDataBuffer(capacity_bytes=10)
        buffer.put(("big", None), [1], 100)
        assert len(buffer) == 0

    def test_hit_rate(self):
        buffer = HotDataBuffer()
        buffer.put(("a", None), [1], 1)
        buffer.get(("a", None))
        buffer.get(("miss", None))
        assert buffer.hit_rate == pytest.approx(0.5)

    def test_invalid_capacity(self):
        with pytest.raises(StorageError):
            HotDataBuffer(capacity_bytes=0)


class TestTransformationPlans:
    def test_project_step(self, schema, rows):
        plan = TransformationPlan([ProjectStep(["id"])])
        stored_schema, blobs = plan.apply(schema, rows)
        assert stored_schema.fields == ("id",)
        assert len(blobs) == 1

    def test_sort_step_orders_rows(self, catalog, schema, rows):
        plan = TransformationPlan([SortStep("score")])
        catalog.write_dataset("d", rows, "localfs", schema=schema, plan=plan)
        scores = [r["score"] for r in catalog.read_dataset("d")]
        assert scores == sorted(scores)

    def test_partition_step_multiple_blocks(self, catalog, schema, rows):
        plan = TransformationPlan([PartitionStep(10)])
        catalog.write_dataset("d", rows, "localfs", schema=schema, plan=plan)
        assert len(catalog.entry("d").block_paths) == 4
        assert catalog.read_dataset("d") == rows

    def test_encode_step_format(self, catalog, schema, rows):
        plan = TransformationPlan(encode=EncodeStep(CsvFormat()))
        catalog.write_dataset("d", rows, "localfs", schema=schema, plan=plan)
        assert catalog.entry("d").format.name == "csv"
        assert catalog.read_dataset("d") == rows

    def test_describe(self):
        plan = TransformationPlan(
            [ProjectStep(["a"]), SortStep("a"), PartitionStep(5)]
        )
        text = plan.describe()
        assert "Project" in text and "Sort" in text and "Encode" in text

    def test_bad_partition_size(self):
        with pytest.raises(StorageError):
            PartitionStep(0)


class TestLStoreOperators:
    def test_store_then_load(self, catalog, schema, rows):
        cost = StoreDataset("d", rows, "localfs", schema=schema).apply_op(catalog)
        assert cost > 0
        assert LoadDataset("d").apply_op(catalog) == rows

    def test_load_with_projection(self, catalog, schema, rows):
        StoreDataset("d", rows, "localfs", schema=schema).apply_op(catalog)
        loaded = LoadDataset("d", projection=["id"]).apply_op(catalog)
        assert loaded[0].schema.fields == ("id",)

    def test_transform_migrates_store(self, catalog, schema, rows):
        StoreDataset("d", rows, "localfs", schema=schema).apply_op(catalog)
        cost = TransformDataset("d", "relstore").apply_op(catalog)
        assert cost > 0
        assert catalog.entry("d").store.name == "relstore"
        assert catalog.read_dataset("d") == rows

    def test_describe(self):
        assert "StoreDataset" in StoreDataset("d", [], "localfs").describe()
        assert "LoadDataset" in LoadDataset("d").describe()


class TestCatalogAwareEstimator:
    def test_table_source_uses_catalog_stats(self, catalog, schema, rows):
        from repro.core.logical.operators import TableSource
        from repro.core.physical.operators import PTableSource

        catalog.write_dataset("d", rows, "localfs", schema=schema)
        estimator = CatalogAwareEstimator(catalog)
        op = PTableSource(TableSource("d"))
        assert estimator.estimate_operator(op, []) == 40

    def test_unknown_dataset_falls_back(self, catalog):
        from repro.core.logical.operators import TableSource
        from repro.core.physical.operators import PTableSource

        estimator = CatalogAwareEstimator(catalog)
        op = PTableSource(TableSource("ghost"))
        assert estimator.estimate_operator(op, []) == 10_000
