"""Property tests: random Cartilage transformation plans round-trip.

Any composition of project / sort / partition steps with any encode
format must (a) preserve the multiset of projected rows, (b) respect the
sort order when a sort is the last row-ordering step, and (c) honour the
partitioning granularity.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.types import Schema
from repro.storage import Catalog, LocalFsStore, TransformationPlan
from repro.storage.formats import ColumnarFormat, CsvFormat, JsonLinesFormat
from repro.storage.transformation import (
    EncodeStep,
    PartitionStep,
    ProjectStep,
    SortStep,
)

FIELDS = ("a", "b", "c")


@st.composite
def plans_and_rows(draw):
    schema = Schema(list(FIELDS))
    rows = [
        schema.record(*values)
        for values in draw(
            st.lists(
                st.tuples(
                    st.integers(-50, 50),
                    st.integers(-50, 50),
                    st.text(max_size=4),
                ),
                min_size=1,
                max_size=25,
            )
        )
    ]
    steps = []
    kept = list(FIELDS)
    for kind in draw(
        st.lists(st.sampled_from(["project", "sort", "partition"]), max_size=3)
    ):
        if kind == "project":
            size = draw(st.integers(1, len(kept)))
            kept = kept[:size]
            steps.append(ProjectStep(list(kept)))
        elif kind == "sort":
            steps.append(SortStep(draw(st.sampled_from(kept))))
        else:
            steps.append(PartitionStep(draw(st.integers(1, 10))))
    fmt = draw(
        st.sampled_from([ColumnarFormat(), CsvFormat(), JsonLinesFormat()])
    )
    return schema, rows, TransformationPlan(steps, EncodeStep(fmt)), kept


@settings(max_examples=40, deadline=None)
@given(plans_and_rows())
def test_random_plan_roundtrip(tmp_path_factory, spec):
    schema, rows, plan, kept = spec
    catalog = Catalog()
    catalog.register_store(
        LocalFsStore(root=str(tmp_path_factory.mktemp("fs")))
    )
    catalog.write_dataset("d", rows, "localfs", schema=schema, plan=plan)
    loaded = catalog.read_dataset("d")

    expected = [row.project(list(kept)) for row in rows]
    assert Counter(loaded) == Counter(expected)
    assert all(r.schema.fields == tuple(kept) for r in loaded)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(-100, 100), min_size=1, max_size=30),
    st.integers(1, 7),
)
def test_sort_then_partition_preserves_order(tmp_path_factory, values, block):
    schema = Schema(["v"])
    rows = [schema.record(v) for v in values]
    plan = TransformationPlan([SortStep("v"), PartitionStep(block)])
    catalog = Catalog()
    catalog.register_store(
        LocalFsStore(root=str(tmp_path_factory.mktemp("fs")))
    )
    catalog.write_dataset("d", rows, "localfs", schema=schema, plan=plan)
    loaded = [r["v"] for r in catalog.read_dataset("d")]
    assert loaded == sorted(values)
    expected_blocks = (len(values) + block - 1) // block
    assert len(catalog.entry("d").block_paths) == expected_blocks
