"""Legacy-compatible install shim.

All metadata lives in ``pyproject.toml``; this file only enables
``python setup.py develop`` on minimal offline environments whose pip
lacks the ``wheel`` package required for modern editable installs.
"""

from setuptools import setup

setup()
