"""Simulated cluster configuration.

One place to describe the virtual cluster the Spark simulation "runs on".
The defaults model a small commodity cluster (8 worker cores, 16 default
partitions) comparable in spirit to the setups used by the BigDansing
case study; benchmarks vary these knobs for scalability sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlatformError


@dataclass(frozen=True)
class ClusterConfig:
    """Size and overhead parameters of the simulated cluster.

    Attributes
    ----------
    workers:
        Parallel worker cores; divides data-dependent compute.
    default_parallelism:
        Number of partitions created for new datasets and shuffles.
    job_startup_ms:
        One-off application/driver start-up (JVM spin-up, executor
        registration) — the dominant fixed cost in the paper's Figure 2.
    stage_overhead_ms:
        Scheduling a stage (DAG scheduler round, task serialisation).
    task_launch_ms:
        Launching a single task within a stage.
    shuffle_ms_per_quantum:
        Serialise + transfer + deserialise cost per shuffled quantum.
    loop_sync_ms:
        Driver round-trip per loop iteration (action + decision).
    """

    workers: int = 8
    default_parallelism: int = 16
    job_startup_ms: float = 3000.0
    stage_overhead_ms: float = 12.0
    task_launch_ms: float = 0.4
    shuffle_ms_per_quantum: float = 0.004
    loop_sync_ms: float = 15.0

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise PlatformError(f"workers must be positive, got {self.workers}")
        if self.default_parallelism <= 0:
            raise PlatformError(
                f"default_parallelism must be positive, got {self.default_parallelism}"
            )

    @property
    def effective_parallelism(self) -> int:
        """Compute slots actually usable for a full-width stage."""
        return min(self.workers, self.default_parallelism)
