"""The simulated Spark platform.

Reproduces the execution *structure* of Spark — partitioned datasets,
narrow vs. wide (shuffle) operators, map-side combining, driver actions —
over real in-memory data, with a calibrated virtual-time model standing in
for cluster hardware (see DESIGN.md §2).
"""

from repro.platforms.spark.cluster import ClusterConfig
from repro.platforms.spark.platform import SparkCostModel, SparkPlatform
from repro.platforms.spark.rdd import SimRDD

__all__ = ["ClusterConfig", "SimRDD", "SparkCostModel", "SparkPlatform"]
