"""The simulated RDD: a partitioned in-memory dataset.

Data is *really* partitioned and shuffles *really* move quanta between
partitions (hash partitioning by key), so partition-sensitive semantics —
per-partition operators, co-partitioned joins, map-side combining — behave
exactly as on the engine being simulated.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.core.types import KeyUdf
from repro.util.iterators import split_evenly


class SimRDD:
    """A list of partitions, each a list of data quanta."""

    __slots__ = ("partitions",)

    def __init__(self, partitions: Sequence[Sequence[Any]]):
        self.partitions: list[list[Any]] = [list(p) for p in partitions]

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_collection(cls, data: Sequence[Any], num_partitions: int) -> "SimRDD":
        """Parallelise a collection into contiguous partitions."""
        return cls(split_evenly(list(data), num_partitions))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def count(self) -> int:
        """Total number of quanta across partitions."""
        return sum(len(partition) for partition in self.partitions)

    def collect(self) -> list[Any]:
        """Materialise all quanta in partition order."""
        return [quantum for partition in self.partitions for quantum in partition]

    # ------------------------------------------------------------------
    # narrow transformations (no data movement between partitions)
    # ------------------------------------------------------------------
    def map_partitions(
        self, fn: Callable[[list[Any]], Iterable[Any]]
    ) -> "SimRDD":
        """Apply ``fn`` independently to every partition."""
        return SimRDD([list(fn(partition)) for partition in self.partitions])

    def union(self, other: "SimRDD") -> "SimRDD":
        """Concatenate the partition lists (no movement, like Spark union)."""
        return SimRDD(self.partitions + other.partitions)

    # ------------------------------------------------------------------
    # wide transformations (shuffles)
    # ------------------------------------------------------------------
    def shuffle_by_key(self, key: KeyUdf, num_partitions: int) -> "SimRDD":
        """Hash-partition quanta by ``key`` into ``num_partitions``.

        This is the physical shuffle: every quantum moves to the partition
        owning its key, so downstream per-partition operators see all
        quanta of a key together.
        """
        buckets: list[list[Any]] = [[] for _ in range(num_partitions)]
        for partition in self.partitions:
            for quantum in partition:
                buckets[hash(key(quantum)) % num_partitions].append(quantum)
        return SimRDD(buckets)

    def repartition(self, num_partitions: int) -> "SimRDD":
        """Round-robin rebalance into ``num_partitions`` partitions."""
        buckets: list[list[Any]] = [[] for _ in range(num_partitions)]
        for index, quantum in enumerate(self.collect()):
            buckets[index % num_partitions].append(quantum)
        return SimRDD(buckets)

    def __repr__(self) -> str:
        sizes = [len(p) for p in self.partitions]
        return f"SimRDD(partitions={len(sizes)}, sizes={sizes})"
