"""Execution operators of the simulated Spark platform.

Narrow operators run per partition; wide operators shuffle first (really
moving quanta between partitions) and then run the shared algorithm
kernels per partition — the paper's example mapping of ``Initialize`` /
``Process`` onto ``MapPartitions`` / ``ReduceByKey`` (Example 3) is
exactly this structure.
"""

from __future__ import annotations

import operator as _operator
from typing import Any

from repro.core import workmeter
from repro.core.metrics import CostLedger
from repro.core.physical import kernels
from repro.core.physical.compiled import (
    batch_filter,
    batch_flatmap,
    batch_map,
    kernels_enabled,
)
from repro.core.physical.fusion import compose_stages
from repro.core.physical.operators import (
    PCollectionSource,
    PSample,
    PSort,
    PTableSource,
    PTextFileSource,
)
from repro.core.runtime import RuntimeContext
from repro.errors import ExecutionError
from repro.platforms.base import ExecutionOperator
from repro.platforms.spark.rdd import SimRDD
from repro.util.iterators import split_evenly


class SparkExecutionOperator(ExecutionOperator):
    """Base for Spark execution operators; exposes the cluster config."""

    @property
    def cluster(self):
        return self.platform.cluster

    def parallelize(self, data: list[Any]) -> SimRDD:
        return SimRDD.from_collection(data, self.cluster.default_parallelism)

    def map_partitions_measured(
        self, rdd: SimRDD, fn, ledger: CostLedger
    ) -> SimRDD:
        """Apply ``fn`` per partition, metering reported UDF work per task.

        The stage's virtual latency is charged straggler-aware: a UDF that
        concentrates its (reported) work in one partition is priced as a
        single slow task, not as perfectly parallel work — this is what
        makes the monolithic detection baselines pay for their skew.
        """
        workmeter.drain_work()
        outputs: list[list[Any]] = []
        per_task: list[float] = []
        for partition in rdd.partitions:
            outputs.append(list(fn(partition)))
            per_task.append(workmeter.drain_work())
        total = sum(per_task)
        if total:
            ledger.charge(
                "op.udf_work",
                self.platform.cost_model.udf_work_ms(total, max(per_task)),
                self.platform.name,
            )
        return SimRDD(outputs)


class SCollectionSource(SparkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        op: PCollectionSource = self.physical
        return self.parallelize(list(op.data))


class STextFileSource(SparkExecutionOperator):
    """Text-file scan into partitions.

    Stays a standalone operator on purpose (no source fusion): the
    partitioned representation is what the per-task workmeter pricing of
    downstream narrow stages is keyed on.
    """

    _STRIP = _operator.methodcaller("rstrip", "\n")

    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        op: PTextFileSource = self.physical
        with open(op.path, "r", encoding="utf-8") as handle:
            if kernels_enabled():
                lines = list(map(self._STRIP, handle))
            else:
                lines = [line.rstrip("\n") for line in handle]
        return self.parallelize(lines)


class STableSource(SparkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        op: PTableSource = self.physical
        if runtime.catalog is None:
            raise ExecutionError(
                f"TableSource({op.dataset!r}) requires a storage catalog"
            )
        return self.parallelize(runtime.catalog.read_dataset(op.dataset))


class SMap(SparkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        udf = self.physical.udf
        return self.map_partitions_measured(
            inputs[0], lambda part: batch_map(udf, part), ledger
        )


class SFlatMap(SparkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        udf = self.physical.udf
        return self.map_partitions_measured(
            inputs[0], lambda part: batch_flatmap(udf, part), ledger
        )


class SFilter(SparkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        predicate = self.physical.predicate
        return self.map_partitions_measured(
            inputs[0], lambda part: batch_filter(predicate, part), ledger
        )


class SZipWithId(SparkExecutionOperator):
    """Two-pass global id assignment, like Spark's ``zipWithIndex``."""

    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        rdd: SimRDD = inputs[0]
        offsets: list[int] = []
        total = 0
        for partition in rdd.partitions:
            offsets.append(total)
            total += len(partition)
        return SimRDD(
            [
                [(offset + i, quantum) for i, quantum in enumerate(partition)]
                for offset, partition in zip(offsets, rdd.partitions)
            ]
        )


class SHashGroupBy(SparkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        key = self.physical.key
        shuffled = inputs[0].shuffle_by_key(key, self.cluster.default_parallelism)
        return shuffled.map_partitions(lambda part: kernels.hash_group_by(part, key))


class SSortGroupBy(SparkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        key = self.physical.key
        shuffled = inputs[0].shuffle_by_key(key, self.cluster.default_parallelism)
        return shuffled.map_partitions(lambda part: kernels.sort_group_by(part, key))


class SReduceBy(SparkExecutionOperator):
    """Map-side combine, shuffle the combined pairs, final reduce."""

    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        op = self.physical
        combined = inputs[0].map_partitions(
            lambda part: kernels.hash_reduce_by(part, op.key, op.reducer)
        )
        shuffled = combined.shuffle_by_key(op.key, self.cluster.default_parallelism)
        return shuffled.map_partitions(
            lambda part: kernels.hash_reduce_by(part, op.key, op.reducer)
        )


class SGlobalReduce(SparkExecutionOperator):
    """Per-partition fold then a driver-side final fold."""

    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        reducer = self.physical.reducer
        partials = [
            kernels.global_reduce(partition, reducer)
            for partition in inputs[0].partitions
        ]
        flat = [value for partial in partials for value in partial]
        return SimRDD([kernels.global_reduce(flat, reducer)])


class SHashJoin(SparkExecutionOperator):
    """Co-partition both sides by key hash, then join per partition."""

    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        op = self.physical
        parallelism = self.cluster.default_parallelism
        left = inputs[0].shuffle_by_key(op.left_key, parallelism)
        right = inputs[1].shuffle_by_key(op.right_key, parallelism)
        joined = [
            list(kernels.hash_join(lp, rp, op.left_key, op.right_key))
            for lp, rp in zip(left.partitions, right.partitions)
        ]
        return SimRDD(joined)


class SBroadcastJoin(SparkExecutionOperator):
    """Map-side join: collect the right side to the driver, hash it, and
    probe per left partition — the left side is never shuffled."""

    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        op = self.physical
        broadcast = inputs[1].collect()
        return inputs[0].map_partitions(
            lambda part: list(
                kernels.hash_join(part, broadcast, op.left_key, op.right_key)
            )
        )


class SSortMergeJoin(SparkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        op = self.physical
        parallelism = self.cluster.default_parallelism
        left = inputs[0].shuffle_by_key(op.left_key, parallelism)
        right = inputs[1].shuffle_by_key(op.right_key, parallelism)
        joined = [
            list(kernels.sort_merge_join(lp, rp, op.left_key, op.right_key))
            for lp, rp in zip(left.partitions, right.partitions)
        ]
        return SimRDD(joined)


class SNestedLoopJoin(SparkExecutionOperator):
    """Broadcast the (whole) right side and theta-join per left partition."""

    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        op = self.physical
        broadcast_right = inputs[1].collect()
        return inputs[0].map_partitions(
            lambda part: list(
                kernels.nested_loop_join(part, broadcast_right, op.pair_predicate)
            )
        )


class SCrossProduct(SparkExecutionOperator):
    """Broadcast the right side; emit pairs per left partition."""

    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        broadcast_right = inputs[1].collect()
        return inputs[0].map_partitions(
            lambda part: list(kernels.cross_product(part, broadcast_right))
        )


class SUnion(SparkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        return inputs[0].union(inputs[1])


class SSort(SparkExecutionOperator):
    """Global sort: gather, sort, range-split (a simplified TeraSort)."""

    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        op: PSort = self.physical
        ordered = sorted(inputs[0].collect(), key=op.key, reverse=op.reverse)
        return SimRDD(split_evenly(ordered, self.cluster.default_parallelism))


class SHashDistinct(SparkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        shuffled = inputs[0].shuffle_by_key(
            lambda q: q, self.cluster.default_parallelism
        )
        return shuffled.map_partitions(kernels.hash_distinct)


class SSortDistinct(SparkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        shuffled = inputs[0].shuffle_by_key(
            lambda q: q, self.cluster.default_parallelism
        )
        return shuffled.map_partitions(kernels.sort_distinct)


class SSample(SparkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        op: PSample = self.physical
        sampled = kernels.uniform_sample(inputs[0].collect(), op.size, op.seed)
        return self.parallelize(sampled)


class SLimit(SparkExecutionOperator):
    """Take the first n quanta in partition order (Spark's take())."""

    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        n = self.physical.n
        taken: list[Any] = []
        for partition in inputs[0].partitions:
            if len(taken) >= n:
                break
            taken.extend(partition[: n - len(taken)])
        return SimRDD([taken])


class SCount(SparkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        return SimRDD([[inputs[0].count()]])


class SFusedPipeline(SparkExecutionOperator):
    """Fused narrow chain applied per partition in a single pass — the
    simulation of Spark's own stage pipelining (compiled to one
    iterator stack per partition, no per-stage intermediates)."""

    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        fn = compose_stages(self.physical.narrow_stages)
        return self.map_partitions_measured(inputs[0], fn, ledger)


class SCollectSink(SparkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> SimRDD:
        return inputs[0]


def register_all(platform) -> None:
    """Register the full execution-operator mapping for the platform."""
    table = {
        "source.collection": SCollectionSource,
        "source.textfile": STextFileSource,
        "source.table": STableSource,
        "map": SMap,
        "flatmap": SFlatMap,
        "filter": SFilter,
        "zipwithid": SZipWithId,
        "groupby.hash": SHashGroupBy,
        "groupby.sort": SSortGroupBy,
        "reduceby.hash": SReduceBy,
        "reduce.global": SGlobalReduce,
        "join.hash": SHashJoin,
        "join.broadcast": SBroadcastJoin,
        "join.sortmerge": SSortMergeJoin,
        "join.nestedloop": SNestedLoopJoin,
        "cross": SCrossProduct,
        "union": SUnion,
        "sort": SSort,
        "distinct.hash": SHashDistinct,
        "distinct.sort": SSortDistinct,
        "sample": SSample,
        "count": SCount,
        "limit": SLimit,
        "fused.narrow": SFusedPipeline,
        "sink.collect": SCollectSink,
    }
    for kind, klass in table.items():
        platform.register_execution_operator(kind, klass)
