"""The simulated Spark platform and its calibrated cost model."""

from __future__ import annotations

from typing import Any

from repro.core.execution.plan import TaskAtom
from repro.core.optimizer.cost import OperatorCostInput, PlatformCostModel
from repro.core.optimizer.workunits import work_units
from repro.core.physical.fusion import fuse_narrow_chains
from repro.platforms.base import Platform
from repro.platforms.spark import operators
from repro.platforms.spark.cluster import ClusterConfig
from repro.platforms.spark.rdd import SimRDD

#: Physical-operator kinds that trigger a shuffle / new stage.
WIDE_KINDS = frozenset(
    {
        "groupby.hash",
        "groupby.sort",
        "reduceby.hash",
        "reduce.global",
        "join.hash",
        "join.sortmerge",
        "join.nestedloop",
        "join.iejoin",
        "cross",
        "sort",
        "distinct.hash",
        "distinct.sort",
        "zipwithid",
        "sample",
        "count",
    }
)


class SparkCostModel(PlatformCostModel):
    """Virtual-time model of the simulated cluster.

    The structure mirrors what dominates real Spark latency:

    * a large one-off **job start-up** (Figure 2's fixed cost),
    * per-**stage** scheduling plus per-**task** launch for wide operators,
    * per-quantum **shuffle** cost on wide operators' inputs,
    * data-dependent compute divided by the **effective parallelism**,
    * a driver round-trip per loop iteration for iterative jobs.
    """

    platform_name = "spark"

    def __init__(
        self,
        cluster: ClusterConfig,
        per_unit_ms: float = 0.0012,
        narrow_overhead_ms: float = 0.6,
    ):
        self.cluster = cluster
        self.per_unit_ms = per_unit_ms
        self.narrow_overhead_ms = narrow_overhead_ms

    def startup_ms(self) -> float:
        return self.cluster.job_startup_ms

    def operator_ms(self, cost_input: OperatorCostInput) -> float:
        compute = (
            self.per_unit_ms
            * work_units(cost_input)
            / self.cluster.effective_parallelism
        )
        if cost_input.kind == "join.broadcast":
            # No shuffle of the (big) left side; the right side is
            # collected and shipped to every worker instead.
            right = cost_input.input_cards[1] if len(cost_input.input_cards) > 1 else 0.0
            broadcast = (
                0.004 * right * min(self.cluster.workers, 8)
                + self.cluster.stage_overhead_ms
            )
            return broadcast + compute
        if cost_input.kind in WIDE_KINDS:
            scheduling = (
                self.cluster.stage_overhead_ms
                + self.cluster.task_launch_ms * self.cluster.default_parallelism
            )
            shuffle = self.cluster.shuffle_ms_per_quantum * sum(
                cost_input.input_cards
            )
            return scheduling + shuffle + compute
        return self.narrow_overhead_ms + compute

    def udf_work_ms(self, total_units: float, peak_task_units: float) -> float:
        # A stage finishes when its slowest task does: latency is bounded
        # below by the straggler, above by perfect parallel speed-up.
        ideal = total_units / self.cluster.effective_parallelism
        return self.per_unit_ms * max(peak_task_units, ideal)

    def loop_iteration_ms(self) -> float:
        return self.cluster.loop_sync_ms

    def cached_read_ms(self, card: float) -> float:
        # Cached RDD blocks are read in parallel from executor memory.
        return 0.00005 * card / self.cluster.effective_parallelism + 0.2

    def ingest_ms(self, card: float) -> float:
        # Parallelising a driver collection serialises every quantum.
        return 0.002 * card + 1.0

    def egest_ms(self, card: float) -> float:
        # collect() funnels all quanta through the driver.
        return 0.002 * card + 1.0


class SparkPlatform(Platform):
    """Partitioned, stage-structured engine over :class:`SimRDD` datasets."""

    name = "spark"
    profiles = frozenset({"batch", "iterative"})
    #: a Spark cluster happily runs several jobs concurrently
    max_concurrent_atoms = 4

    def __init__(
        self,
        cluster: ClusterConfig | None = None,
        cost_model: SparkCostModel | None = None,
        fuse_narrow: bool = True,
    ):
        self.cluster = cluster or ClusterConfig()
        super().__init__(cost_model or SparkCostModel(self.cluster))
        self.fuse_narrow = fuse_narrow
        operators.register_all(self)

    def optimize_atom(self, atom: TaskAtom) -> None:
        """Platform-layer phase: pipeline narrow chains into one stage
        pass (the simulation of Spark's own operator pipelining)."""
        if self.fuse_narrow:
            fuse_narrow_chains(atom)

    def ingest(self, data: list[Any]) -> SimRDD:
        return SimRDD.from_collection(data, self.cluster.default_parallelism)

    def egest(self, native: Any) -> list[Any]:
        return native.collect()

    def native_card(self, native: Any) -> int:
        return native.count()
