"""The relational platform and its calibrated cost model."""

from __future__ import annotations

from typing import Any

from repro.core.optimizer.cost import OperatorCostInput, PlatformCostModel
from repro.core.optimizer.workunits import work_units
from repro.platforms.base import Platform
from repro.platforms.postgres import operators
from repro.platforms.postgres.engine import Database

#: Kinds executed by the compiled relational engine (fast path).
RELATIONAL_KINDS = frozenset(
    {
        "source.collection",
        "source.table",
        "filter",
        "groupby.hash",
        "groupby.sort",
        "reduceby.hash",
        "reduce.global",
        "join.hash",
        "join.broadcast",
        "join.sortmerge",
        "cross",
        "union",
        "sort",
        "distinct.hash",
        "distinct.sort",
        "count",
        "limit",
        "sink.collect",
    }
)


class PostgresCostModel(PlatformCostModel):
    """Virtual-time model of a single-node relational engine.

    Relational operators run in compiled engine code (very low per-unit
    cost); arbitrary UDFs (``map`` and UDF-heavy filters / theta-joins)
    run through the procedural-language escape hatch and pay a heavy
    per-unit penalty — the familiar PL/Python slowdown.  This asymmetry is
    what lets the multi-platform optimizer route aggregation to the
    relational platform and ML to the others (the paper's §1 example).
    """

    platform_name = "postgres"

    def __init__(
        self,
        startup: float = 60.0,
        relational_unit_ms: float = 0.0004,
        udf_unit_ms: float = 0.004,
        per_operator_ms: float = 0.05,
    ):
        self.startup = startup
        self.relational_unit_ms = relational_unit_ms
        self.udf_unit_ms = udf_unit_ms
        self.per_operator_ms = per_operator_ms

    def startup_ms(self) -> float:
        return self.startup

    def operator_ms(self, cost_input: OperatorCostInput) -> float:
        units = work_units(cost_input)
        if cost_input.kind in RELATIONAL_KINDS and cost_input.udf_load <= 1.0:
            return self.per_operator_ms + self.relational_unit_ms * units
        return self.per_operator_ms + self.udf_unit_ms * units

    def udf_work_ms(self, total_units: float, peak_task_units: float) -> float:
        # UDF work runs through the procedural-language path.
        return self.udf_unit_ms * total_units

    def ingest_ms(self, card: float) -> float:
        # COPY FROM: parse + insert per row.
        return 0.003 * card + 2.0

    def egest_ms(self, card: float) -> float:
        # Cursor fetch to the client.
        return 0.001 * card + 1.0


class PostgresPlatform(Platform):
    """Single-node relational engine over record lists.

    Holds its own :class:`Database`; plans using
    :class:`~repro.core.logical.operators.TableSource` read tables stored
    here natively (no movement), which the movement-aware optimizer
    exploits.
    """

    name = "postgres"
    profiles = frozenset({"batch", "relational"})

    def __init__(
        self,
        database: Database | None = None,
        cost_model: PostgresCostModel | None = None,
    ):
        super().__init__(cost_model or PostgresCostModel())
        self.database = database or Database()
        operators.register_all(self)

    def ingest(self, data: list[Any]) -> list[Any]:
        return list(data)

    def egest(self, native: Any) -> list[Any]:
        return list(native)

    def native_card(self, native: Any) -> int:
        return len(native)
