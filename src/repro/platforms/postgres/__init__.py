"""The miniature relational platform, standing in for PostgreSQL."""

from repro.platforms.postgres.engine import Database, HeapTable, SortedIndex
from repro.platforms.postgres.platform import PostgresCostModel, PostgresPlatform

__all__ = [
    "Database",
    "HeapTable",
    "PostgresCostModel",
    "PostgresPlatform",
    "SortedIndex",
]
