"""Execution operators of the relational platform.

Only relational physical operators are registered — scans, filters,
projections, joins, grouping, aggregation, sorting, deduplication.  The
absence of flat-maps, sampling and loops is deliberate: it is what makes
the multi-platform optimizer route non-relational work elsewhere, the
behaviour the paper's Oil & Gas pipeline motivates.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.core.metrics import CostLedger
from repro.core.physical import kernels
from repro.core.physical.compiled import batch_filter, batch_map
from repro.core.physical.operators import PCollectionSource, PTableSource
from repro.core.runtime import RuntimeContext
from repro.errors import ExecutionError
from repro.platforms.base import ExecutionOperator, Platform


class PostgresExecutionOperator(ExecutionOperator):
    """Base class; the native dataset is a list of rows (a relation)."""


class PgCollectionSource(PostgresExecutionOperator):
    """Load an in-memory collection as a relation (COPY FROM equivalent)."""

    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        op: PCollectionSource = self.physical
        return list(op.data)


class PgTableSource(PostgresExecutionOperator):
    """Scan a table — the platform's own database first, catalog second."""

    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        op: PTableSource = self.physical
        database = self.platform.database
        if op.dataset in database:
            return list(database.table(op.dataset).scan())
        if runtime.catalog is not None:
            return runtime.catalog.read_dataset(op.dataset)
        raise ExecutionError(
            f"TableSource({op.dataset!r}): not in database and no catalog attached"
        )


class PgFilter(PostgresExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        return batch_filter(self.physical.predicate, inputs[0])


class PgMap(PostgresExecutionOperator):
    """Projection / computed expression (a SQL SELECT list)."""

    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        return batch_map(self.physical.udf, inputs[0])


class PgHashGroupBy(PostgresExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        return kernels.hash_group_by(inputs[0], self.physical.key)


class PgSortGroupBy(PostgresExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        return kernels.sort_group_by(inputs[0], self.physical.key)


class PgReduceBy(PostgresExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        op = self.physical
        return kernels.hash_reduce_by(inputs[0], op.key, op.reducer)


class PgGlobalReduce(PostgresExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        return kernels.global_reduce(inputs[0], self.physical.reducer)


class PgHashJoin(PostgresExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        op = self.physical
        return list(kernels.hash_join(inputs[0], inputs[1], op.left_key, op.right_key))


class PgSortMergeJoin(PostgresExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        op = self.physical
        return list(
            kernels.sort_merge_join(inputs[0], inputs[1], op.left_key, op.right_key)
        )


class PgNestedLoopJoin(PostgresExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        op = self.physical
        return list(
            kernels.nested_loop_join(inputs[0], inputs[1], op.pair_predicate)
        )


class PgCrossProduct(PostgresExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        return list(kernels.cross_product(inputs[0], inputs[1]))


class PgUnion(PostgresExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        return list(itertools.chain(inputs[0], inputs[1]))


class PgSort(PostgresExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        op = self.physical
        return sorted(inputs[0], key=op.key, reverse=op.reverse)


class PgHashDistinct(PostgresExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        return kernels.hash_distinct(inputs[0])


class PgSortDistinct(PostgresExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        return kernels.sort_distinct(inputs[0])


class PgLimit(PostgresExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        return list(inputs[0][: self.physical.n])


class PgCount(PostgresExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        return [len(inputs[0])]


class PgCollectSink(PostgresExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        return list(inputs[0])


def register_all(platform: Platform) -> None:
    """Register the (relational-only) execution-operator mapping."""
    table = {
        "source.collection": PgCollectionSource,
        "source.table": PgTableSource,
        "filter": PgFilter,
        "map": PgMap,
        "groupby.hash": PgHashGroupBy,
        "groupby.sort": PgSortGroupBy,
        "reduceby.hash": PgReduceBy,
        "reduce.global": PgGlobalReduce,
        "join.hash": PgHashJoin,
        "join.broadcast": PgHashJoin,
        "join.sortmerge": PgSortMergeJoin,
        "join.nestedloop": PgNestedLoopJoin,
        "cross": PgCrossProduct,
        "union": PgUnion,
        "sort": PgSort,
        "distinct.hash": PgHashDistinct,
        "distinct.sort": PgSortDistinct,
        "count": PgCount,
        "limit": PgLimit,
        "sink.collect": PgCollectSink,
    }
    for kind, klass in table.items():
        platform.register_execution_operator(kind, klass)
