"""A miniature single-node relational engine.

Implements the storage-side behaviours the reproduction needs from
"PostgreSQL": heap tables of :class:`~repro.core.types.Record` rows,
sorted (B-tree-like) secondary indexes with point and range lookups, and
predicate push-down scans.  The relational *operators* (joins, grouping,
sorting) reuse the shared kernels from the physical layer; what makes the
platform relational is this storage engine plus its cost profile.

The engine is also reused by the storage abstraction's relational store
(:mod:`repro.storage.platforms.relstore`).
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Iterator, Sequence

from repro.core.types import Record, Schema
from repro.errors import PlatformError, ValidationError


class SortedIndex:
    """A sorted secondary index over one field of a heap table.

    Keeps ``(key, row_position)`` pairs in key order; point and range
    lookups run in ``O(log n + k)`` via :mod:`bisect`.
    """

    def __init__(self, field: str):
        self.field = field
        self._keys: list[Any] = []
        self._positions: list[int] = []

    def insert(self, key: Any, position: int) -> None:
        """Register that ``key`` appears at heap ``position``."""
        at = bisect.bisect_right(self._keys, key)
        self._keys.insert(at, key)
        self._positions.insert(at, position)

    def lookup(self, key: Any) -> list[int]:
        """Heap positions of rows whose indexed field equals ``key``."""
        lo = bisect.bisect_left(self._keys, key)
        hi = bisect.bisect_right(self._keys, key)
        return self._positions[lo:hi]

    def range(self, low: Any, high: Any) -> list[int]:
        """Heap positions of rows with ``low <= field <= high``."""
        lo = bisect.bisect_left(self._keys, low)
        hi = bisect.bisect_right(self._keys, high)
        return self._positions[lo:hi]

    def __len__(self) -> int:
        return len(self._keys)


class HeapTable:
    """An append-only heap of records with optional secondary indexes."""

    def __init__(self, name: str, schema: Schema):
        self.name = name
        self.schema = schema
        self._rows: list[Record] = []
        self._indexes: dict[str, SortedIndex] = {}

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(self, row: Record) -> None:
        """Append one record (schema-checked) and maintain indexes."""
        if row.schema != self.schema:
            raise ValidationError(
                f"row schema {row.schema!r} does not match table "
                f"{self.name!r} schema {self.schema!r}"
            )
        position = len(self._rows)
        self._rows.append(row)
        for field, index in self._indexes.items():
            index.insert(row[field], position)

    def insert_many(self, rows: Sequence[Record]) -> None:
        """Bulk append (the engine's COPY path)."""
        for row in rows:
            self.insert(row)

    def create_index(self, field: str) -> SortedIndex:
        """Build (or return) a sorted index over ``field``."""
        self.schema.index_of(field)
        if field in self._indexes:
            return self._indexes[field]
        index = SortedIndex(field)
        for position, row in enumerate(self._rows):
            index.insert(row[field], position)
        self._indexes[field] = index
        return index

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return len(self._rows)

    def scan(self, predicate: Callable[[Record], bool] | None = None) -> Iterator[Record]:
        """Full scan with optional predicate push-down."""
        if predicate is None:
            yield from self._rows
        else:
            for row in self._rows:
                if predicate(row):
                    yield row

    def index_lookup(self, field: str, key: Any) -> list[Record]:
        """Point lookup through the index on ``field`` (must exist)."""
        index = self._require_index(field)
        return [self._rows[pos] for pos in index.lookup(key)]

    def index_range(self, field: str, low: Any, high: Any) -> list[Record]:
        """Range lookup ``low <= field <= high`` through the index."""
        index = self._require_index(field)
        return [self._rows[pos] for pos in index.range(low, high)]

    def has_index(self, field: str) -> bool:
        return field in self._indexes

    def _require_index(self, field: str) -> SortedIndex:
        try:
            return self._indexes[field]
        except KeyError:
            raise PlatformError(
                f"table {self.name!r} has no index on {field!r}"
            ) from None


class Database:
    """A named collection of heap tables."""

    def __init__(self, name: str = "repro"):
        self.name = name
        self._tables: dict[str, HeapTable] = {}

    def create_table(self, name: str, schema: Schema) -> HeapTable:
        """Create a table; fails if the name is taken."""
        if name in self._tables:
            raise PlatformError(f"table {name!r} already exists")
        table = HeapTable(name, schema)
        self._tables[name] = table
        return table

    def table(self, name: str) -> HeapTable:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise PlatformError(f"no such table: {name!r}") from None

    def drop_table(self, name: str) -> None:
        """Remove a table (idempotent)."""
        self._tables.pop(name, None)

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables
