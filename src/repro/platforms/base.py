"""Platform layer base classes.

A :class:`Platform` models one underlying processing engine.  It owns:

* the *physical→execution operator mapping* for that engine — developers
  "extend the abstract ExecutionOperator and implement its applyOp
  method" (paper §3.2) and register a factory per physical operator kind;
* a calibrated :class:`~repro.core.optimizer.cost.PlatformCostModel`;
* the engine's *native dataset representation* (a plain list for the
  in-process engine, a partitioned RDD for the simulated Spark, a
  relation for the mini relational engine) with ingest/egest conversions.

``execute_atom`` — the shared task-atom interpreter — walks the atom's
operator fragment in topological order, applying execution operators over
native datasets and charging the cost model with the **observed**
cardinalities.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable

from repro.core import workmeter
from repro.core.execution.plan import TaskAtom
from repro.core.metrics import CostLedger
from repro.core.optimizer.cost import OperatorCostInput, PlatformCostModel
from repro.core.physical.compiled import drain_kernel_note
from repro.core.physical.operators import PhysicalOperator, PRepeat
from repro.core.runtime import RuntimeContext
from repro.errors import ExecutionError, UnsupportedOperatorError


class ExecutionOperator(ABC):
    """Platform-dependent implementation of a physical operator.

    In contrast to a logical operator, an execution operator "works on
    multiple data quanta rather than a single one" (§3.1): ``apply_op``
    receives whole native datasets.
    """

    def __init__(self, physical: PhysicalOperator, platform: "Platform"):
        self.physical = physical
        self.platform = platform

    @abstractmethod
    def apply_op(
        self, runtime: RuntimeContext, inputs: list[Any], ledger: CostLedger
    ) -> Any:
        """Run the operator over native inputs; return a native output.

        Most operators do not touch ``ledger`` — the atom interpreter
        charges the standard per-operator cost — but operators with extra
        internal phases (e.g. a shuffle) may charge supplements.
        """


#: Factory signature of the physical→execution mapping entries.
ExecutionOperatorFactory = Callable[[PhysicalOperator, "Platform"], ExecutionOperator]


class Platform(ABC):
    """One simulated processing engine plus its operator mappings."""

    #: Unique platform name (used in metrics and plan explanations).
    name: str = "abstract"
    #: Data-processing profiles supported (paper §8 challenge 2): subset of
    #: {"batch", "iterative", "relational"}.
    profiles: frozenset[str] = frozenset({"batch"})
    #: How many task atoms the concurrent scheduler may run on this
    #: platform at once.  Distributed engines tolerate several concurrent
    #: jobs; single-connection engines (postgres) pin to 1.  The
    #: effective cap is ``min(executor.parallelism, max_concurrent_atoms)``.
    max_concurrent_atoms: int = 1
    #: Whether this platform's execution operators consume
    #: :class:`~repro.core.physical.columnar.ColumnarBatch` hand-offs in
    #: place.  The executor only elides the ``columnar.egest`` row
    #: materialisation for consumers on platforms that opt in.
    columnar_native: bool = False

    def __init__(self, cost_model: PlatformCostModel):
        self.cost_model = cost_model
        self._factories: dict[str, ExecutionOperatorFactory] = {}

    # ------------------------------------------------------------------
    # physical -> execution operator mapping
    # ------------------------------------------------------------------
    def register_execution_operator(
        self, kind: str, factory: ExecutionOperatorFactory
    ) -> None:
        """Declare that this platform can execute physical kind ``kind``."""
        self._factories[kind] = factory

    def supports(self, operator: PhysicalOperator) -> bool:
        """Whether this platform can execute ``operator``.

        Loops additionally require the ``iterative`` profile and support
        for every operator in the loop body.
        """
        if operator.kind == "source.loopinput":
            # Loop-state binding is handled by the atom interpreter itself.
            return True
        if isinstance(operator, PRepeat):
            if "iterative" not in self.profiles:
                return False
            return all(
                self.supports(body_op) or self._any_alternate(body_op)
                for body_op in operator.body.graph
            )
        return operator.kind in self._factories

    def _any_alternate(self, operator: PhysicalOperator) -> bool:
        return any(alt.kind in self._factories for alt in operator.alternates)

    def create_execution_operator(
        self, operator: PhysicalOperator
    ) -> ExecutionOperator:
        """Instantiate the execution operator implementing ``operator``."""
        try:
            factory = self._factories[operator.kind]
        except KeyError:
            raise UnsupportedOperatorError(
                f"platform {self.name!r} has no execution operator for "
                f"kind {operator.kind!r}"
            ) from None
        return factory(operator, self)

    # ------------------------------------------------------------------
    # platform-layer optimization hook (paper §4.3)
    # ------------------------------------------------------------------
    def optimize_atom(self, atom: TaskAtom) -> None:
        """Refine a task atom with platform-specific optimizations.

        Called once per atom after the multi-platform optimizer cuts the
        plan — "a third optimization phase that uses plugged-in
        platform-specific optimization tools" (§4.3).  The default does
        nothing; platforms that pipeline narrow operators override this
        with :func:`repro.core.physical.fusion.fuse_narrow_chains`.
        """

    # ------------------------------------------------------------------
    # native dataset representation
    # ------------------------------------------------------------------
    @abstractmethod
    def ingest(self, data: list[Any]) -> Any:
        """Convert a platform-neutral collection into the native dataset."""

    @abstractmethod
    def egest(self, native: Any) -> list[Any]:
        """Materialise a native dataset into a platform-neutral list."""

    @abstractmethod
    def native_card(self, native: Any) -> int:
        """Number of data quanta in a native dataset."""

    # ------------------------------------------------------------------
    # task-atom interpretation
    # ------------------------------------------------------------------
    def execute_atom(
        self,
        atom: TaskAtom,
        external: dict[tuple[int, int], list[Any]],
        runtime: RuntimeContext,
    ) -> tuple[dict[int, list[Any]], CostLedger]:
        """Run one task atom; return egested boundary outputs and costs.

        ``external`` maps ``(operator_id, slot)`` to the already-moved
        input collection for every input slot crossing the atom boundary
        (movement itself is priced by the executor's movement model).
        """
        ledger = CostLedger()
        # Traced runs: the atom-local ledger advances the same virtual
        # clock as the executor's ledger, so per-operator spans opened
        # below get exact virtual durations.  (The executor merges this
        # ledger without re-clocking.)
        ledger.tracer = getattr(runtime, "tracer", None)
        results: dict[int, Any] = {}
        for operator in atom.fragment.topological_order():
            inputs = self._assemble_inputs(atom, operator, external, results)
            native = self._run_operator(atom, operator, inputs, runtime, ledger)
            results[operator.id] = native
        outputs: dict[int, list[Any]] = {}
        for op_id in atom.output_ids:
            if op_id not in results:
                raise ExecutionError(
                    f"atom #{atom.id} did not produce required output {op_id}"
                )
            outputs[op_id] = self.egest(results[op_id])
        return outputs, ledger

    def _assemble_inputs(
        self,
        atom: TaskAtom,
        operator: PhysicalOperator,
        external: dict[tuple[int, int], list[Any]],
        results: dict[int, Any],
    ) -> list[Any]:
        internal_producers = list(atom.fragment.inputs_of(operator))
        inputs: list[Any] = []
        for slot in range(operator.num_inputs):
            if (operator.id, slot) in external:
                inputs.append(self.ingest(external[(operator.id, slot)]))
            else:
                if not internal_producers:
                    raise ExecutionError(
                        f"atom #{atom.id}: missing producer for slot {slot} "
                        f"of {operator!r}"
                    )
                producer = internal_producers.pop(0)
                inputs.append(results[producer.id])
        return inputs

    def _run_operator(
        self,
        atom: TaskAtom,
        operator: PhysicalOperator,
        inputs: list[Any],
        runtime: RuntimeContext,
        ledger: CostLedger,
    ) -> Any:
        tracer = ledger.tracer
        if tracer is None:  # untraced fast path: no span objects at all
            return self._apply_operator(atom, operator, inputs, runtime, ledger)
        from repro.core.observability.spans import KIND_PLATFORM

        attributes: dict[str, Any] = {
            "op": operator.id,
            "kind": operator.kind,
            "platform": self.name,
            "atom": atom.id,
        }
        # Kernel attribution: algorithmic variants carry the kernel name
        # as the kind suffix (groupby.hash, join.sortmerge, ...).
        if "." in operator.kind:
            attributes["kernel"] = operator.kind.split(".", 1)[1]
        stages = getattr(operator, "stages", None)
        if stages:  # platform-layer fusion attribution
            attributes["fused_stages"] = [stage.kind for stage in stages]
        drain_kernel_note()  # clear any stale note from untraced runs
        with tracer.span(
            f"op.{operator.kind}", KIND_PLATFORM, **attributes
        ) as span:
            native = self._apply_operator(atom, operator, inputs, runtime, ledger)
            span.set(output_card=self.native_card(native))
            batch_kernel = drain_kernel_note()
            if batch_kernel is not None:
                # which compiled batch kernel actually engaged (absent
                # entirely under REPRO_NO_KERNELS=1)
                span.set(batch_kernel=batch_kernel)
            return native

    def _apply_operator(
        self,
        atom: TaskAtom,
        operator: PhysicalOperator,
        inputs: list[Any],
        runtime: RuntimeContext,
        ledger: CostLedger,
    ) -> Any:
        # Loop-state binding: a LoopInput source reads the executor-bound
        # current state instead of executing anything.
        if operator.kind == "source.loopinput":
            state = runtime.bound_sources.get(operator.id)
            if state is None:
                raise ExecutionError(
                    f"LoopInput {operator!r} executed outside a loop context"
                )
            native = self.ingest(state)
            ledger.charge(
                "loop.state_bind",
                self.cost_model.ingest_ms(len(state)),
                self.name,
                atom.id,
            )
            return native

        # Loop-invariant source caching (iterative drivers cache inputs).
        cache_key = (self.name, operator.id)
        if operator.is_source and cache_key in runtime.source_cache:
            native = runtime.source_cache[cache_key]
            ledger.charge(
                "op.cached_source",
                self.cost_model.cached_read_ms(self.native_card(native)),
                self.name,
                atom.id,
            )
            return native

        execution_operator = self.create_execution_operator(operator)
        workmeter.drain_work()  # discard any stale units
        try:
            native = execution_operator.apply_op(runtime, inputs, ledger)
        except ExecutionError:
            raise
        except Exception as error:
            # A UDF (or operator implementation) raised outside the error
            # taxonomy: wrap it with atom/platform/operator context so it
            # hits the Executor's retry/failover machinery instead of
            # crashing the run bare.
            raise ExecutionError(
                f"atom #{atom.id} on {self.name!r}: operator "
                f"{operator.describe()} raised "
                f"{type(error).__name__}: {error}"
            ) from error
        reported = workmeter.drain_work()
        if reported:
            # Work the execution operator did not meter per task itself:
            # treat it as one task (single-node semantics).
            ledger.charge(
                "op.udf_work",
                self.cost_model.udf_work_ms(reported, reported),
                self.name,
                atom.id,
            )
        cost_input = OperatorCostInput(
            kind=operator.kind,
            input_cards=tuple(float(self.native_card(i)) for i in inputs),
            output_card=float(self.native_card(native)),
            udf_load=operator.hints.udf_load,
        )
        ledger.charge(
            f"op.{operator.kind}",
            self.cost_model.operator_ms(cost_input),
            self.name,
            atom.id,
        )
        if operator.is_source and runtime.caching_enabled:
            runtime.source_cache[cache_key] = native
        return native

    def __repr__(self) -> str:
        return f"<Platform {self.name}>"
