"""A Nephele/PACTs-style pipelined dataflow platform ("flink").

The paper names Nephele/PACTs as a platform RHEEM "can also use as
underlying platform" (§7); this package plugs such an engine in *without
any core changes* — the extensibility requirement of §8, challenge 1:

* narrow operators chain lazily over generators (true operator
  pipelining: one pass, no intermediate materialisation);
* wide operators materialise and reuse the shared kernels;
* the cost model reflects the engine's real-world profile: mid-size
  start-up, cheap pipelined narrow operators, and — the differentiator —
  **native cheap iterations** (Flink's closed-loop iterations vs. a
  driver-loop on Spark), making it the optimizer's pick for loop-heavy
  plans at moderate scale.

Not part of the default roster; add it explicitly::

    from repro.platforms import default_platforms
    from repro.platforms.flink import FlinkPlatform

    ctx = RheemContext(platforms=default_platforms() + [FlinkPlatform()])
"""

from repro.platforms.flink.platform import FlinkCostModel, FlinkPlatform
from repro.platforms.flink.stream import DataStream

__all__ = ["DataStream", "FlinkCostModel", "FlinkPlatform"]
