"""The pipelined platform and its calibrated cost model."""

from __future__ import annotations

from typing import Any

from repro.core.execution.plan import TaskAtom
from repro.core.optimizer.cost import OperatorCostInput, PlatformCostModel
from repro.core.optimizer.workunits import work_units
from repro.core.physical.fusion import fuse_narrow_chains
from repro.platforms.base import Platform
from repro.platforms.flink import operators
from repro.platforms.flink.stream import DataStream

#: kinds that break the pipeline (force materialisation / network)
BLOCKING_KINDS = frozenset(
    {
        "groupby.hash",
        "groupby.sort",
        "reduceby.hash",
        "reduce.global",
        "join.hash",
        "join.sortmerge",
        "join.nestedloop",
        "join.iejoin",
        "sort",
        "distinct.hash",
        "distinct.sort",
        "sample",
        "count",
    }
)


class FlinkCostModel(PlatformCostModel):
    """Virtual-time model of a pipelined session-cluster engine.

    Profile relative to the other platforms:

    * **start-up 900ms** — a session cluster is warm-ish: cheaper than a
      fresh Spark application (3s), dearer than in-process (120ms);
    * **pipelined narrow operators** — operator chaining makes per-
      operator overhead negligible;
    * **native iterations** — the engine's closed-loop iteration support
      costs ~2ms per round versus the driver round-trip (15ms) the Spark
      simulation pays; this is what makes it win loop-heavy plans at
      moderate scale;
    * **parallelism 4** — fewer slots than the simulated Spark's 8.
    """

    platform_name = "flink"

    def __init__(
        self,
        startup: float = 900.0,
        per_unit_ms: float = 0.0011,
        parallelism: int = 4,
        pipeline_overhead_ms: float = 0.05,
        blocking_overhead_ms: float = 6.0,
        iteration_ms: float = 2.0,
    ):
        self.startup = startup
        self.per_unit_ms = per_unit_ms
        self.parallelism = parallelism
        self.pipeline_overhead_ms = pipeline_overhead_ms
        self.blocking_overhead_ms = blocking_overhead_ms
        self.iteration_ms = iteration_ms

    def startup_ms(self) -> float:
        return self.startup

    def operator_ms(self, cost_input: OperatorCostInput) -> float:
        compute = self.per_unit_ms * work_units(cost_input) / self.parallelism
        if cost_input.kind in BLOCKING_KINDS:
            network = 0.003 * sum(cost_input.input_cards)
            return self.blocking_overhead_ms + network + compute
        return self.pipeline_overhead_ms + compute

    def udf_work_ms(self, total_units: float, peak_task_units: float) -> float:
        ideal = total_units / self.parallelism
        return self.per_unit_ms * max(peak_task_units, ideal)

    def loop_iteration_ms(self) -> float:
        return self.iteration_ms

    def ingest_ms(self, card: float) -> float:
        return 0.0015 * card + 0.5

    def egest_ms(self, card: float) -> float:
        return 0.0015 * card + 0.5


class FlinkPlatform(Platform):
    """Pipelined dataflow engine over :class:`DataStream` natives.

    Registered like any other platform — no core changes (§8 challenge 1).
    """

    name = "flink"
    profiles = frozenset({"batch", "iterative", "stream"})
    #: Flink job slots allow several concurrent jobs
    max_concurrent_atoms = 4

    def __init__(self, cost_model: FlinkCostModel | None = None,
                 fuse_narrow: bool = True, fuse_sources: bool = True):
        super().__init__(cost_model or FlinkCostModel())
        self.fuse_narrow = fuse_narrow
        #: pipelined engine streams file lines straight into fused chains
        self.fuse_sources = fuse_sources
        operators.register_all(self)

    def optimize_atom(self, atom: TaskAtom) -> None:
        """Operator chaining, the engine's hallmark platform-layer
        optimization."""
        if self.fuse_narrow:
            fuse_narrow_chains(atom, fuse_sources=self.fuse_sources)

    def ingest(self, data: list[Any]) -> DataStream:
        return DataStream.from_list(data)

    def egest(self, native: Any) -> list[Any]:
        return list(native.materialize())

    def native_card(self, native: Any) -> int:
        return len(native)
