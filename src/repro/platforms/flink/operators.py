"""Execution operators of the pipelined ("flink") platform.

Narrow operators chain lazily on :class:`DataStream`; wide operators
force the stream and run the shared kernels.
"""

from __future__ import annotations

import itertools
import operator as _operator
from typing import Any

from repro.core.metrics import CostLedger
from repro.core.physical import kernels
from repro.core.physical.compiled import kernels_enabled
from repro.core.physical.fusion import compose_stream, iter_source
from repro.core.physical.operators import (
    PCollectionSource,
    PSample,
    PSort,
    PTableSource,
    PTextFileSource,
)
from repro.core.runtime import RuntimeContext
from repro.errors import ExecutionError
from repro.platforms.base import ExecutionOperator, Platform
from repro.platforms.flink.stream import DataStream


class FlinkExecutionOperator(ExecutionOperator):
    """Base class; the native dataset is a :class:`DataStream`."""


class FCollectionSource(FlinkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> DataStream:
        op: PCollectionSource = self.physical
        return DataStream.from_list(op.data)


class FTextFileSource(FlinkExecutionOperator):
    _STRIP = _operator.methodcaller("rstrip", "\n")

    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> DataStream:
        op: PTextFileSource = self.physical
        with open(op.path, "r", encoding="utf-8") as handle:
            if kernels_enabled():
                lines = list(map(self._STRIP, handle))
            else:
                lines = [line.rstrip("\n") for line in handle]
        return DataStream.from_list(lines)


class FTableSource(FlinkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> DataStream:
        op: PTableSource = self.physical
        if runtime.catalog is None:
            raise ExecutionError(
                f"TableSource({op.dataset!r}) requires a storage catalog"
            )
        return DataStream.from_list(runtime.catalog.read_dataset(op.dataset))


class FMap(FlinkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> DataStream:
        udf = self.physical.udf
        if kernels_enabled():
            return inputs[0].transform(lambda it: map(udf, it))
        return inputs[0].transform(lambda it: (udf(q) for q in it))


class FFlatMap(FlinkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> DataStream:
        udf = self.physical.udf
        if kernels_enabled():
            return inputs[0].transform(
                lambda it: itertools.chain.from_iterable(map(udf, it))
            )
        return inputs[0].transform(
            lambda it: (out for q in it for out in udf(q))
        )


class FFilter(FlinkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> DataStream:
        predicate = self.physical.predicate
        if kernels_enabled():
            return inputs[0].transform(lambda it: filter(predicate, it))
        return inputs[0].transform(lambda it: (q for q in it if predicate(q)))


class FZipWithId(FlinkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> DataStream:
        return inputs[0].transform(lambda it: iter(enumerate(list(it))))


class FHashGroupBy(FlinkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> DataStream:
        key = self.physical.key
        return DataStream.from_list(
            kernels.hash_group_by(inputs[0].materialize(), key)
        )


class FSortGroupBy(FlinkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> DataStream:
        key = self.physical.key
        return DataStream.from_list(
            kernels.sort_group_by(inputs[0].materialize(), key)
        )


class FReduceBy(FlinkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> DataStream:
        op = self.physical
        return DataStream.from_list(
            kernels.hash_reduce_by(inputs[0].materialize(), op.key, op.reducer)
        )


class FGlobalReduce(FlinkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> DataStream:
        return DataStream.from_list(
            kernels.global_reduce(inputs[0].materialize(), self.physical.reducer)
        )


class FHashJoin(FlinkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> DataStream:
        op = self.physical
        return DataStream.from_list(
            kernels.hash_join(
                inputs[0].materialize(), inputs[1].materialize(),
                op.left_key, op.right_key,
            )
        )


class FSortMergeJoin(FlinkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> DataStream:
        op = self.physical
        return DataStream.from_list(
            kernels.sort_merge_join(
                inputs[0].materialize(), inputs[1].materialize(),
                op.left_key, op.right_key,
            )
        )


class FNestedLoopJoin(FlinkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> DataStream:
        op = self.physical
        return DataStream.from_list(
            kernels.nested_loop_join(
                inputs[0].materialize(), inputs[1].materialize(),
                op.pair_predicate,
            )
        )


class FCrossProduct(FlinkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> DataStream:
        left, right = inputs[0], inputs[1].materialize()
        return left.transform(
            lambda it: ((l, r) for l in it for r in right)
        )


class FUnion(FlinkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> DataStream:
        first, second = inputs
        return DataStream(
            lambda: itertools.chain(first.iterate(), second.iterate())
        )


class FSort(FlinkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> DataStream:
        op: PSort = self.physical
        return DataStream.from_list(
            sorted(inputs[0].materialize(), key=op.key, reverse=op.reverse)
        )


class FHashDistinct(FlinkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> DataStream:
        return DataStream.from_list(kernels.hash_distinct(inputs[0].materialize()))


class FSortDistinct(FlinkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> DataStream:
        return DataStream.from_list(kernels.sort_distinct(inputs[0].materialize()))


class FSample(FlinkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> DataStream:
        op: PSample = self.physical
        return DataStream.from_list(
            kernels.uniform_sample(inputs[0].materialize(), op.size, op.seed)
        )


class FLimit(FlinkExecutionOperator):
    """Pipelined early-out: stops pulling upstream after n quanta."""

    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> DataStream:
        n = self.physical.n
        return inputs[0].transform(lambda it: itertools.islice(it, n))


class FCount(FlinkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> DataStream:
        return DataStream.from_list([len(inputs[0].materialize())])


class FFusedPipeline(FlinkExecutionOperator):
    """Fused narrow chain as one iterator pipeline (operator chaining).

    Compiled mode stacks ``map``/``filter``/``chain.from_iterable``
    lazily — one pass, zero intermediate materialisation; a fused source
    head streams file lines straight into the chain.
    """

    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> DataStream:
        op = self.physical
        stream = compose_stream(op.narrow_stages)
        source = op.source_stage
        if source is not None:
            return DataStream(lambda: stream(iter_source(source)))
        return inputs[0].transform(stream)


class FCollectSink(FlinkExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> DataStream:
        return inputs[0]


def register_all(platform: Platform) -> None:
    """Register the full execution-operator mapping for the platform."""
    table = {
        "source.collection": FCollectionSource,
        "source.textfile": FTextFileSource,
        "source.table": FTableSource,
        "map": FMap,
        "flatmap": FFlatMap,
        "filter": FFilter,
        "zipwithid": FZipWithId,
        "groupby.hash": FHashGroupBy,
        "groupby.sort": FSortGroupBy,
        "reduceby.hash": FReduceBy,
        "reduce.global": FGlobalReduce,
        "join.hash": FHashJoin,
        "join.broadcast": FHashJoin,
        "join.sortmerge": FSortMergeJoin,
        "join.nestedloop": FNestedLoopJoin,
        "cross": FCrossProduct,
        "union": FUnion,
        "sort": FSort,
        "distinct.hash": FHashDistinct,
        "distinct.sort": FSortDistinct,
        "sample": FSample,
        "count": FCount,
        "limit": FLimit,
        "fused.narrow": FFusedPipeline,
        "sink.collect": FCollectSink,
    }
    for kind, klass in table.items():
        platform.register_execution_operator(kind, klass)
