"""The pipelined native dataset: a restartable, lazily transformed stream.

A :class:`DataStream` wraps a zero-argument producer returning a fresh
iterator, so chained narrow transformations compose into one generator
pipeline that is only walked when something downstream needs the data —
the execution model of Nephele/Flink operator chains.  Materialisation
is memoised: once a consumer (a wide operator, the cardinality counter,
egest) forces the stream, everyone shares the same list.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator


class DataStream:
    """A restartable stream of data quanta with lazy transformations."""

    __slots__ = ("_producer", "_materialized")

    def __init__(self, producer: Callable[[], Iterator[Any]]):
        self._producer = producer
        self._materialized: list[Any] | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_list(cls, data: Iterable[Any]) -> "DataStream":
        """A stream over an in-memory collection."""
        snapshot = list(data)
        stream = cls(lambda: iter(snapshot))
        stream._materialized = snapshot
        return stream

    # ------------------------------------------------------------------
    def iterate(self) -> Iterator[Any]:
        """A fresh iterator over the stream's quanta."""
        if self._materialized is not None:
            return iter(self._materialized)
        return self._producer()

    def materialize(self) -> list[Any]:
        """Force the pipeline once; further calls reuse the result."""
        if self._materialized is None:
            self._materialized = list(self._producer())
        return self._materialized

    @property
    def is_materialized(self) -> bool:
        return self._materialized is not None

    def transform(
        self, fn: Callable[[Iterator[Any]], Iterator[Any]]
    ) -> "DataStream":
        """Chain a lazy per-element transformation (no pass happens yet)."""
        return DataStream(lambda: fn(self.iterate()))

    def __len__(self) -> int:
        return len(self.materialize())

    def __repr__(self) -> str:
        state = (
            f"materialized n={len(self._materialized)}"
            if self._materialized is not None
            else "lazy"
        )
        return f"DataStream({state})"
