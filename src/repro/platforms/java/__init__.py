"""The in-process platform, standing in for "plain Java programs"."""

from repro.platforms.java.platform import JavaCostModel, JavaPlatform

__all__ = ["JavaCostModel", "JavaPlatform"]
