"""Execution operators of the in-process ("Java") platform.

The native dataset representation is a plain Python list; operators apply
the shared algorithm kernels eagerly, exactly like a single-threaded Java
program looping over collections.
"""

from __future__ import annotations

import itertools
import operator as _operator
from typing import Any

from repro.core.metrics import CostLedger
from repro.core.physical import kernels
from repro.core.physical.columnar import run_fused
from repro.core.physical.compiled import (
    batch_filter,
    batch_flatmap,
    batch_map,
    kernels_enabled,
)
from repro.core.physical.fusion import (
    compose_stream,
    iter_source,
    pipeline_runner,
)
from repro.core.physical.operators import (
    PCollectionSource,
    PGlobalReduce,
    PHashGroupBy,
    PHashJoin,
    PNestedLoopJoin,
    PReduceBy,
    PSample,
    PSort,
    PSortGroupBy,
    PSortMergeJoin,
    PTableSource,
    PTextFileSource,
)
from repro.core.runtime import RuntimeContext
from repro.errors import ExecutionError
from repro.platforms.base import ExecutionOperator, Platform


class JavaExecutionOperator(ExecutionOperator):
    """Convenience base binding the physical operator with a precise type."""


class JCollectionSource(JavaExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        op: PCollectionSource = self.physical
        return list(op.data)


class JTextFileSource(JavaExecutionOperator):
    """Standalone text-file scan.

    When the source survives fusion un-fused (e.g. it feeds a wide
    operator directly), the batch path strips newlines through the C
    loop; a source feeding a narrow chain is normally fused into a
    :class:`JFusedPipeline` head instead and *streams* its lines (see
    :func:`repro.core.physical.fusion.iter_source`).
    """

    _STRIP = _operator.methodcaller("rstrip", "\n")

    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        op: PTextFileSource = self.physical
        with open(op.path, "r", encoding="utf-8") as handle:
            if kernels_enabled():
                return list(map(self._STRIP, handle))
            return [line.rstrip("\n") for line in handle]


class JTableSource(JavaExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        op: PTableSource = self.physical
        if runtime.catalog is None:
            raise ExecutionError(
                f"TableSource({op.dataset!r}) requires a storage catalog"
            )
        return runtime.catalog.read_dataset(op.dataset)


class JMap(JavaExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        return batch_map(self.physical.udf, inputs[0])


class JFlatMap(JavaExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        return batch_flatmap(self.physical.udf, inputs[0])


class JFilter(JavaExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        return batch_filter(self.physical.predicate, inputs[0])


class JZipWithId(JavaExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        return list(enumerate(inputs[0]))


class JHashGroupBy(JavaExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        op: PHashGroupBy = self.physical
        return kernels.hash_group_by(inputs[0], op.key)


class JSortGroupBy(JavaExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        op: PSortGroupBy = self.physical
        return kernels.sort_group_by(inputs[0], op.key)


class JReduceBy(JavaExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        op: PReduceBy = self.physical
        return kernels.hash_reduce_by(inputs[0], op.key, op.reducer)


class JGlobalReduce(JavaExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        op: PGlobalReduce = self.physical
        return kernels.global_reduce(inputs[0], op.reducer)


class JHashJoin(JavaExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        op: PHashJoin = self.physical
        return list(kernels.hash_join(inputs[0], inputs[1], op.left_key, op.right_key))


class JSortMergeJoin(JavaExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        op: PSortMergeJoin = self.physical
        return list(
            kernels.sort_merge_join(inputs[0], inputs[1], op.left_key, op.right_key)
        )


class JNestedLoopJoin(JavaExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        op: PNestedLoopJoin = self.physical
        return list(
            kernels.nested_loop_join(inputs[0], inputs[1], op.pair_predicate)
        )


class JCrossProduct(JavaExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        return list(kernels.cross_product(inputs[0], inputs[1]))


class JUnion(JavaExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        return list(itertools.chain(inputs[0], inputs[1]))


class JSort(JavaExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        op: PSort = self.physical
        return sorted(inputs[0], key=op.key, reverse=op.reverse)


class JHashDistinct(JavaExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        return kernels.hash_distinct(inputs[0])


class JSortDistinct(JavaExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        return kernels.sort_distinct(inputs[0])


class JSample(JavaExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        op: PSample = self.physical
        return kernels.uniform_sample(inputs[0], op.size, op.seed)


class JLimit(JavaExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        return list(inputs[0][: self.physical.n])


class JCount(JavaExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        return [len(inputs[0])]


class JFusedPipeline(JavaExecutionOperator):
    """One-pass execution of a fused narrow chain (platform-layer opt).

    Compiled once per pipeline into a single-pass closure — one loop
    over the input, no per-stage intermediate lists.  A fused source
    head streams its quanta (file lines) straight into the first stage.
    A columnar batch input runs its leading projection/filter stages
    directly on the column buffers (:func:`repro.core.physical.columnar.
    run_fused`), materialising rows only when a stage is ineligible.
    """

    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        op = self.physical
        source = op.source_stage
        if source is not None:
            return list(compose_stream(op.narrow_stages)(iter_source(source)))
        data = inputs[0]
        if getattr(data, "is_columnar_batch", False):
            return run_fused(op, data)
        return pipeline_runner(op)(data)


class JCollectSink(JavaExecutionOperator):
    def apply_op(self, runtime: RuntimeContext, inputs: list[Any],
                 ledger: CostLedger) -> list[Any]:
        return list(inputs[0])


def register_all(platform: Platform) -> None:
    """Register the full execution-operator mapping for the platform."""
    table = {
        "source.collection": JCollectionSource,
        "source.textfile": JTextFileSource,
        "source.table": JTableSource,
        "map": JMap,
        "flatmap": JFlatMap,
        "filter": JFilter,
        "zipwithid": JZipWithId,
        "groupby.hash": JHashGroupBy,
        "groupby.sort": JSortGroupBy,
        "reduceby.hash": JReduceBy,
        "reduce.global": JGlobalReduce,
        "join.hash": JHashJoin,
        "join.broadcast": JHashJoin,
        "join.sortmerge": JSortMergeJoin,
        "join.nestedloop": JNestedLoopJoin,
        "cross": JCrossProduct,
        "union": JUnion,
        "sort": JSort,
        "distinct.hash": JHashDistinct,
        "distinct.sort": JSortDistinct,
        "sample": JSample,
        "count": JCount,
        "limit": JLimit,
        "fused.narrow": JFusedPipeline,
        "sink.collect": JCollectSink,
    }
    for kind, klass in table.items():
        platform.register_execution_operator(kind, klass)
