"""The in-process platform and its calibrated cost model.

Stands in for the paper's "plain Java program" baseline (Figure 2): an
eager, single-threaded engine with near-zero fixed overhead.  It wins on
small inputs precisely because it pays neither job start-up nor task
scheduling, and loses on large ones because it cannot parallelise —
exactly the trade-off Figure 2 illustrates.
"""

from __future__ import annotations

from typing import Any

from repro.core.execution.plan import TaskAtom
from repro.core.optimizer.cost import OperatorCostInput, PlatformCostModel
from repro.core.optimizer.workunits import work_units
from repro.core.physical.fusion import fuse_narrow_chains
from repro.platforms.base import Platform
from repro.platforms.java import operators


class JavaCostModel(PlatformCostModel):
    """Virtual-time model of a warm, single-threaded in-process engine.

    Calibration (virtual): ~0.8 µs per abstract work unit — a reasonable
    JVM throughput for per-tuple UDF work — plus a small one-off warm-up.
    """

    platform_name = "java"

    def __init__(
        self,
        startup: float = 120.0,
        per_unit_ms: float = 0.0008,
        per_operator_ms: float = 0.004,
        loop_overhead_ms: float = 0.02,
    ):
        self.startup = startup
        self.per_unit_ms = per_unit_ms
        self.per_operator_ms = per_operator_ms
        self.loop_overhead_ms = loop_overhead_ms

    def startup_ms(self) -> float:
        return self.startup

    def operator_ms(self, cost_input: OperatorCostInput) -> float:
        return self.per_operator_ms + self.per_unit_ms * work_units(cost_input)

    def udf_work_ms(self, total_units: float, peak_task_units: float) -> float:
        # Single-threaded: the sum is the latency.
        return self.per_unit_ms * total_units

    def loop_iteration_ms(self) -> float:
        return self.loop_overhead_ms

    def ingest_ms(self, card: float) -> float:
        # Already in-process: ingest is a reference copy.
        return 0.0001 * card

    def egest_ms(self, card: float) -> float:
        return 0.0001 * card


class JavaPlatform(Platform):
    """Eager single-process engine over plain Python lists."""

    name = "java"
    profiles = frozenset({"batch", "iterative"})
    #: in-process engine: each atom is just a thread's worth of work
    max_concurrent_atoms = 8
    #: operators and kernels consume ColumnarBatch hand-offs in place
    columnar_native = True

    def __init__(self, cost_model: JavaCostModel | None = None,
                 fuse_narrow: bool = True, fuse_sources: bool = True):
        super().__init__(cost_model or JavaCostModel())
        self.fuse_narrow = fuse_narrow
        #: in-process engine streams file lines straight into fused chains
        self.fuse_sources = fuse_sources
        operators.register_all(self)

    def optimize_atom(self, atom: TaskAtom) -> None:
        if self.fuse_narrow:
            fuse_narrow_chains(atom, fuse_sources=self.fuse_sources)

    def ingest(self, data: list[Any]) -> Any:
        # Columnar batches stay columnar across the process-local
        # boundary — ingest of an elided hand-off is a reference copy.
        if getattr(data, "is_columnar_batch", False):
            return data
        return list(data)

    def egest(self, native: Any) -> Any:
        if getattr(native, "is_columnar_batch", False):
            return native
        return list(native)

    def native_card(self, native: Any) -> int:
        return len(native)
