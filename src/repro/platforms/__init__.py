"""Simulated processing platforms (the platform layer).

Three platforms ship with the library, standing in for the engines the
paper evaluates on (see DESIGN.md §2 for the substitution argument):

* :mod:`repro.platforms.java` — an eager, single-process engine standing
  in for "plain Java programs";
* :mod:`repro.platforms.spark` — a simulated Spark: partitioned datasets,
  stage-structured execution, shuffles, and a calibrated overhead model;
* :mod:`repro.platforms.postgres` — a miniature relational engine
  standing in for PostgreSQL.

New platforms plug in by subclassing :class:`repro.platforms.base.Platform`
and registering execution-operator factories — no core changes required
(the extensibility requirement of paper §8, challenge 1).
"""

from repro.platforms.base import ExecutionOperator, Platform
from repro.platforms.java import JavaPlatform
from repro.platforms.postgres import PostgresPlatform
from repro.platforms.spark import SparkPlatform


def default_platforms() -> list[Platform]:
    """The standard platform roster used by :class:`repro.RheemContext`."""
    return [JavaPlatform(), SparkPlatform(), PostgresPlatform()]


__all__ = [
    "ExecutionOperator",
    "JavaPlatform",
    "Platform",
    "PostgresPlatform",
    "SparkPlatform",
    "default_platforms",
]
