"""WWHow!-style unified storage optimizer (paper §6).

Decides *where* (which storage platform) and *how* (which format /
transformation plan) to place a dataset given its statistics and the
expected workload mix — scans vs. point lookups, and how projective the
scans are.  The decision minimises the estimated virtual cost per
workload "day", using the same per-store and per-format cost parameters
the catalog charges at run time, so choices and measurements agree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.types import Schema
from repro.errors import StorageError
from repro.storage.catalog import DECODE_MS_PER_VALUE
from repro.storage.formats import ColumnarFormat, CsvFormat, Format, JsonLinesFormat
from repro.storage.platforms.base import StoragePlatform
from repro.storage.platforms.kvstore import KeyValueStore
from repro.storage.platforms.relstore import RelationalStore
from repro.storage.transformation import EncodeStep, TransformationPlan


@dataclass(frozen=True)
class WorkloadProfile:
    """Expected accesses per costing period.

    ``projectivity`` is the average fraction of fields a scan reads.
    """

    scans: float = 1.0
    point_lookups: float = 0.0
    projectivity: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.projectivity <= 1.0:
            raise StorageError(
                f"projectivity must be in (0, 1], got {self.projectivity}"
            )
        if self.scans < 0 or self.point_lookups < 0:
            raise StorageError("workload frequencies must be non-negative")


@dataclass(frozen=True)
class Placement:
    """The optimizer's decision plus its estimated cost and rationale."""

    store_name: str
    format_name: str | None
    plan: TransformationPlan | None
    key_field: str | None
    estimated_ms: float
    rationale: str


class StorageOptimizer:
    """Enumerates (store × format) placements and picks the cheapest."""

    def __init__(self, stores: list[StoragePlatform]):
        if not stores:
            raise StorageError("at least one storage platform is required")
        self.stores = list(stores)

    def choose(
        self,
        schema: Schema,
        cardinality: int,
        avg_record_bytes: int,
        profile: WorkloadProfile,
        key_field: str | None = None,
    ) -> Placement:
        """Pick the cheapest placement for the described dataset/workload."""
        candidates = sorted(
            self.enumerate(schema, cardinality, avg_record_bytes, profile, key_field),
            key=lambda p: p.estimated_ms,
        )
        return candidates[0]

    def enumerate(
        self,
        schema: Schema,
        cardinality: int,
        avg_record_bytes: int,
        profile: WorkloadProfile,
        key_field: str | None = None,
    ) -> list[Placement]:
        """All costed placements (exposed for explainability and tests)."""
        placements: list[Placement] = []
        size_bytes = cardinality * avg_record_bytes
        formats: list[Format] = [ColumnarFormat(), CsvFormat(), JsonLinesFormat()]

        for store in self.stores:
            if isinstance(store, RelationalStore):
                placements.append(
                    self._relational_placement(store, schema, cardinality, profile)
                )
                continue
            if isinstance(store, KeyValueStore) and key_field is not None:
                placements.append(
                    self._keyed_placement(
                        store, schema, cardinality, avg_record_bytes, profile,
                        key_field,
                    )
                )
                continue
            for fmt in formats:
                scan_ms = self._scan_cost(
                    store, fmt, schema, cardinality, size_bytes, profile
                )
                # Point lookups degenerate to full scans on blob stores.
                lookup_ms = scan_ms
                total = profile.scans * scan_ms + profile.point_lookups * lookup_ms
                placements.append(
                    Placement(
                        store.name,
                        fmt.name,
                        TransformationPlan(encode=EncodeStep(fmt)),
                        None,
                        total,
                        f"scan={scan_ms:.2f}ms, lookup=scan (blob store)",
                    )
                )
        if not placements:
            raise StorageError("no feasible placement for this dataset")
        return placements

    # ------------------------------------------------------------------
    def _scan_cost(
        self,
        store: StoragePlatform,
        fmt: Format,
        schema: Schema,
        cardinality: int,
        size_bytes: int,
        profile: WorkloadProfile,
    ) -> float:
        read = store.op_latency_ms + store.read_ms_per_kb * size_bytes / 1024.0
        wanted_fields = max(1, round(profile.projectivity * len(schema)))
        projection = list(schema.fields[:wanted_fields])
        values = fmt.decoded_value_count(
            schema, cardinality, projection if wanted_fields < len(schema) else None
        )
        decode = DECODE_MS_PER_VALUE * values * fmt.decode_cost_factor
        return read + decode

    def _relational_placement(
        self,
        store: RelationalStore,
        schema: Schema,
        cardinality: int,
        profile: WorkloadProfile,
    ) -> Placement:
        scan_ms = (
            store.op_latency_ms
            + store.read_ms_per_kb * cardinality * store.bytes_per_record / 1024.0
        )
        # Indexed lookup: logarithmic probe, essentially latency-bound.
        lookup_ms = store.op_latency_ms * 2
        total = profile.scans * scan_ms + profile.point_lookups * lookup_ms
        return Placement(
            store.name,
            None,
            None,
            None,
            total,
            f"native records: scan={scan_ms:.2f}ms, indexed lookup={lookup_ms:.2f}ms",
        )

    def _keyed_placement(
        self,
        store: KeyValueStore,
        schema: Schema,
        cardinality: int,
        avg_record_bytes: int,
        profile: WorkloadProfile,
        key_field: str,
    ) -> Placement:
        lookup_ms = store.op_latency_ms + store.read_ms_per_kb * avg_record_bytes / 1024.0
        scan_ms = (
            store.op_latency_ms
            + store.read_ms_per_kb * cardinality * avg_record_bytes / 1024.0
            + DECODE_MS_PER_VALUE * cardinality * len(schema)
        )
        total = profile.scans * scan_ms + profile.point_lookups * lookup_ms
        return Placement(
            store.name,
            "pickle",
            None,
            key_field,
            total,
            f"keyed by {key_field!r}: lookup={lookup_ms:.3f}ms, scan={scan_ms:.2f}ms",
        )
