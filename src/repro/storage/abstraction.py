"""L-store operators: the application level of the storage abstraction.

Storage applications express *intents* — store this dataset, load that
one, migrate a third — without naming block sizes, formats or replica
counts.  Lowering an intent produces the p-store transformation plan and
the storage atoms executed against an x-store platform, mirroring how the
processing side lowers logical plans to task atoms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.types import Schema
from repro.errors import StorageError
from repro.storage.catalog import Catalog
from repro.storage.transformation import TransformationPlan


class LStoreOperator:
    """Base class of logical storage operators."""

    def apply_op(self, catalog: Catalog) -> Any:
        """Execute the intent against a catalog; returns intent-specific
        results (stored cost, loaded quanta, …)."""
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class StoreDataset(LStoreOperator):
    """Intent: persist ``rows`` under ``name`` on a chosen store.

    ``plan`` (the p-store transformation plan) may be omitted, in which
    case the catalog's defaults apply — or chosen by the
    :class:`~repro.storage.optimizer.StorageOptimizer`.
    """

    name: str
    rows: Sequence[Any]
    store_name: str
    schema: Schema | None = None
    plan: TransformationPlan | None = None
    key_field: str | None = None

    def apply_op(self, catalog: Catalog) -> float:
        return catalog.write_dataset(
            self.name,
            self.rows,
            self.store_name,
            schema=self.schema,
            plan=self.plan,
            key_field=self.key_field,
        )

    def describe(self) -> str:
        plan = self.plan.describe() if self.plan else "<default>"
        return f"StoreDataset({self.name!r} -> {self.store_name}, plan={plan})"


@dataclass
class LoadDataset(LStoreOperator):
    """Intent: load a dataset (optionally projected)."""

    name: str
    projection: Sequence[str] | None = None

    def apply_op(self, catalog: Catalog) -> list[Any]:
        return catalog.read_dataset(self.name, self.projection)

    def describe(self) -> str:
        return f"LoadDataset({self.name!r}, projection={self.projection})"


@dataclass
class TransformDataset(LStoreOperator):
    """Intent: migrate a dataset to another store and/or layout.

    This is the storage-atom counterpart of re-scheduling a task atom on
    a different platform: read from the current placement, apply the new
    transformation plan, write to the target store.
    """

    name: str
    target_store: str
    plan: TransformationPlan | None = None

    def apply_op(self, catalog: Catalog) -> float:
        entry = catalog.entry(self.name)
        if entry.schema is None and self.plan is not None:
            raise StorageError(
                f"dataset {self.name!r} is schema-less; transformation "
                "plans require records"
            )
        rows, read_cost = catalog.read_dataset_with_cost(self.name)
        write_cost = catalog.write_dataset(
            self.name,
            rows,
            self.target_store,
            schema=entry.schema,
            plan=self.plan,
        )
        return read_cost + write_cost

    def describe(self) -> str:
        return f"TransformDataset({self.name!r} -> {self.target_store})"
