"""The dataset catalog: where datasets live, how they are encoded, and
what the optimizer knows about them.

The catalog is the hinge between the storage and processing abstractions:
``TableSource`` operators resolve dataset names here at run time, and
:class:`CatalogAwareEstimator` feeds the recorded statistics to the
multi-platform optimizer — which is how data location and size influence
platform choice (the paper's data-movement concern).

Every read/write is priced in virtual milliseconds (store cost + format
decode cost), accumulated on :attr:`Catalog.storage_ms` and returned per
call, so storage experiments can report where time went.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.optimizer.cardinality import CardinalityEstimator
from repro.core.physical.operators import PhysicalOperator, PTableSource
from repro.core.types import Record, Schema
from repro.errors import CatalogError
from repro.storage.buffer import HotDataBuffer
from repro.storage.formats import Format, PickleFormat
from repro.storage.platforms.base import StoragePlatform
from repro.storage.platforms.kvstore import KeyValueStore
from repro.storage.platforms.relstore import RelationalStore
from repro.storage.transformation import TransformationPlan

#: virtual cost of decoding one stored value into a quantum field
DECODE_MS_PER_VALUE = 0.0003


@dataclass
class DatasetEntry:
    """Catalog metadata for one stored dataset."""

    name: str
    store: StoragePlatform
    format: Format | None
    schema: Schema | None
    cardinality: int
    size_bytes: int
    block_paths: list[str]
    #: field the dataset is keyed by in a key-value store (point lookups)
    key_field: str | None = None


class Catalog:
    """Registry of stores and datasets with virtual-cost accounting."""

    def __init__(self, buffer: HotDataBuffer | None = None):
        self._stores: dict[str, StoragePlatform] = {}
        self._datasets: dict[str, DatasetEntry] = {}
        self.buffer = buffer
        #: cumulative virtual milliseconds spent in storage operations
        self.storage_ms = 0.0

    # ------------------------------------------------------------------
    # stores
    # ------------------------------------------------------------------
    def register_store(self, store: StoragePlatform) -> StoragePlatform:
        """Add a storage platform (by its ``name``)."""
        if store.name in self._stores:
            raise CatalogError(f"store {store.name!r} already registered")
        self._stores[store.name] = store
        return store

    def store(self, name: str) -> StoragePlatform:
        try:
            return self._stores[name]
        except KeyError:
            raise CatalogError(
                f"unknown store {name!r}; registered: {sorted(self._stores)}"
            ) from None

    @property
    def store_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._stores))

    # ------------------------------------------------------------------
    # datasets
    # ------------------------------------------------------------------
    def write_dataset(
        self,
        name: str,
        rows: Sequence[Any],
        store_name: str,
        schema: Schema | None = None,
        plan: TransformationPlan | None = None,
        key_field: str | None = None,
        tracer: "Any | None" = None,
    ) -> float:
        """Store ``rows`` as dataset ``name`` on the named store.

        Record datasets go through a Cartilage transformation plan
        (default: single columnar block); schema-less datasets use the
        pickle format.  Returns the virtual cost of the write.
        ``tracer`` threads through to the transformation plan so storage
        writes show up in end-to-end traces.
        """
        store = self.store(store_name)
        self.drop_dataset(name)
        cost = 0.0

        if isinstance(store, RelationalStore):
            if schema is None:
                raise CatalogError("relstore datasets require a schema")
            cost += store.put_records(name, schema, list(rows))
            entry = DatasetEntry(
                name, store, None, schema, len(rows),
                len(rows) * store.bytes_per_record, [name],
            )
        elif key_field is not None:
            entry, cost = self._write_keyed(name, rows, store, schema, key_field)
        else:
            if schema is None:
                plan = plan or TransformationPlan(encode=_pickle_encode())
            else:
                plan = plan or TransformationPlan()
            stored_schema, blobs = (
                plan.apply(schema, rows, tracer=tracer) if schema is not None
                else (None, [plan.encode.format.encode(None, list(rows))])
            )
            block_paths = []
            total_bytes = 0
            for index, blob in enumerate(blobs):
                path = f"{name}/part-{index:05d}"
                cost += store.put_blob(path, blob)
                block_paths.append(path)
                total_bytes += len(blob)
            entry = DatasetEntry(
                name, store, plan.encode.format, stored_schema,
                len(rows), total_bytes, block_paths,
            )

        self._datasets[name] = entry
        if self.buffer is not None:
            self.buffer.invalidate(name)
        self.storage_ms += cost
        return cost

    def _write_keyed(
        self,
        name: str,
        rows: Sequence[Any],
        store: StoragePlatform,
        schema: Schema | None,
        key_field: str,
    ) -> tuple[DatasetEntry, float]:
        if not isinstance(store, KeyValueStore):
            raise CatalogError(
                f"key_field requires a key-value store, got {store.name!r}"
            )
        if schema is None:
            raise CatalogError("keyed datasets require a schema")
        codec = PickleFormat()
        cost = 0.0
        total_bytes = 0
        for row in rows:
            value = codec.encode(None, [row])
            cost += store.put_record(name, str(row[key_field]), value)
            total_bytes += len(value)
        entry = DatasetEntry(
            name, store, codec, schema, len(rows), total_bytes, [name],
            key_field=key_field,
        )
        return entry, cost

    def read_dataset(
        self, name: str, projection: Sequence[str] | None = None
    ) -> list[Any]:
        """Fetch and decode a dataset (through the hot buffer when attached)."""
        data, _cost = self.read_dataset_with_cost(name, projection)
        return data

    def read_dataset_with_cost(
        self, name: str, projection: Sequence[str] | None = None
    ) -> tuple[list[Any], float]:
        """Fetch and decode a dataset; returns (quanta, virtual ms)."""
        entry = self.entry(name)
        cache_key = (name, tuple(projection) if projection else None)
        if self.buffer is not None:
            cached = self.buffer.get(cache_key)
            if cached is not None:
                return list(cached), 0.0

        cost = 0.0
        if isinstance(entry.store, RelationalStore):
            rows, cost = entry.store.get_records(name)
            data: list[Any] = list(rows)
            if projection:
                data = [row.project(projection) for row in data]
        elif entry.key_field is not None:
            items, cost = entry.store.scan_records(name)
            codec = entry.format
            data = [codec.decode(None, value)[0] for _, value in items]
            cost += DECODE_MS_PER_VALUE * len(data) * len(entry.schema or ())
        else:
            data = []
            for path in entry.block_paths:
                blob, read_ms = entry.store.get_blob(path)
                cost += read_ms
                data.extend(entry.format.decode(entry.schema, blob, projection))
            values = entry.format.decoded_value_count(
                entry.schema, entry.cardinality, projection
            )
            cost += DECODE_MS_PER_VALUE * values * entry.format.decode_cost_factor

        if self.buffer is not None:
            self.buffer.put(cache_key, data, entry.size_bytes)
        self.storage_ms += cost
        return data, cost

    def point_lookup(self, name: str, key: Any) -> tuple[list[Any], float]:
        """O(1) lookup by key on a keyed (key-value) dataset."""
        entry = self.entry(name)
        if entry.key_field is None or not isinstance(entry.store, KeyValueStore):
            raise CatalogError(
                f"dataset {name!r} is not keyed; point lookups need a "
                "key-value placement"
            )
        value, cost = entry.store.get_record(name, str(key))
        self.storage_ms += cost
        return entry.format.decode(None, value), cost

    def rediscover(self, store_name: str, prefix: str = "") -> int:
        """Re-adopt datasets whose blobs survive in a durable store.

        Catalog *metadata* is process-local; blobs on a durable store
        (e.g. :class:`~repro.storage.platforms.localfs.LocalFsStore`)
        outlive a crash.  This scans the store for block files of
        schema-less pickle datasets — the layout ``write_dataset``
        produces with ``schema=None``, which is what checkpoints use —
        and rebuilds their entries so a fresh process can read them
        again.  Datasets already registered are left alone.  Returns the
        number of datasets adopted.
        """
        store = self.store(store_name)
        lister = getattr(store, "list_paths", None)
        if lister is None:  # store cannot enumerate; nothing to adopt
            return 0
        codec = PickleFormat()
        groups: dict[str, list[str]] = {}
        for path in lister():
            if prefix and not path.startswith(prefix):
                continue
            name, sep, _part = path.rpartition("/part-")
            if not sep or name in self._datasets:
                continue
            groups.setdefault(name, []).append(path)
        adopted = 0
        for name, paths in sorted(groups.items()):
            rows: list[Any] = []
            total_bytes = 0
            try:
                for path in sorted(paths):
                    blob, _cost = store.get_blob(path)
                    rows.extend(codec.decode(None, blob))
                    total_bytes += len(blob)
            except Exception:  # undecodable survivor: leave unregistered
                continue
            self._datasets[name] = DatasetEntry(
                name, store, codec, None, len(rows), total_bytes,
                sorted(paths),
            )
            adopted += 1
        return adopted

    def drop_dataset(self, name: str) -> None:
        """Remove a dataset and its blobs (idempotent)."""
        entry = self._datasets.pop(name, None)
        if entry is None:
            return
        for path in entry.block_paths:
            entry.store.delete_blob(path)
        if self.buffer is not None:
            self.buffer.invalidate(name)

    def entry(self, name: str) -> DatasetEntry:
        """Catalog metadata for ``name``."""
        try:
            return self._datasets[name]
        except KeyError:
            raise CatalogError(
                f"unknown dataset {name!r}; registered: {sorted(self._datasets)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._datasets

    @property
    def dataset_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._datasets))


def _pickle_encode():
    from repro.storage.transformation import EncodeStep

    return EncodeStep(PickleFormat())


class CatalogAwareEstimator(CardinalityEstimator):
    """Cardinality estimator that resolves ``TableSource`` sizes from the
    catalog statistics instead of guessing."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    def estimate_operator(
        self, operator: PhysicalOperator, input_cards: list[float]
    ) -> float:
        if isinstance(operator, PTableSource) and operator.dataset in self.catalog:
            return float(self.catalog.entry(operator.dataset).cardinality)
        return super().estimate_operator(operator, input_cards)
