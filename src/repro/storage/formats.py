"""Storage formats: how record datasets are laid out as bytes.

Three formats with genuinely different access characteristics:

* :class:`CsvFormat` — row-oriented text; cheap to write, every read
  parses whole rows (projection saves nothing);
* :class:`JsonLinesFormat` — row-oriented, self-describing text; most
  expensive to parse, tolerant of heterogeneous rows;
* :class:`ColumnarFormat` — column-oriented binary; projected reads
  decode only the requested columns, the property the ABL5 storage
  experiment measures.

All formats round-trip :class:`~repro.core.types.Record` datasets of a
fixed schema with int / float / str / bool / None values.
"""

from __future__ import annotations

import json
import pickle
from abc import ABC, abstractmethod
from typing import Sequence

from repro.core.types import Record, Schema
from repro.errors import FormatError

_CSV_SEP = ","


class Format(ABC):
    """A dataset ↔ bytes codec plus its cost characteristics."""

    #: format identifier used by the catalog and the storage optimizer
    name: str = "abstract"
    #: relative CPU cost of decoding one value (1.0 = binary baseline)
    decode_cost_factor: float = 1.0
    #: whether a projected read avoids decoding unrequested fields
    supports_projection: bool = False

    @abstractmethod
    def encode(self, schema: Schema, rows: Sequence[Record]) -> bytes:
        """Serialise ``rows`` (all of ``schema``) into bytes."""

    @abstractmethod
    def decode(
        self,
        schema: Schema,
        blob: bytes,
        projection: Sequence[str] | None = None,
    ) -> list[Record]:
        """Deserialise ``blob``; optionally project to a subset of fields."""

    def decoded_value_count(
        self, schema: Schema, card: int, projection: Sequence[str] | None
    ) -> int:
        """How many cell values a (projected) read actually decodes.

        Used by storage cost models: projection only shrinks this when the
        format supports projected reads.
        """
        width = len(projection) if (projection and self.supports_projection) else len(schema)
        return card * width

    def __repr__(self) -> str:
        return f"<Format {self.name}>"


def _check_schema(schema: Schema, rows: Sequence[Record]) -> None:
    for row in rows:
        if row.schema != schema:
            raise FormatError(
                f"row schema {row.schema!r} does not match dataset schema {schema!r}"
            )


class CsvFormat(Format):
    """Row-oriented text with JSON-encoded cells (safe commas/quotes)."""

    name = "csv"
    decode_cost_factor = 2.0
    supports_projection = False

    def encode(self, schema: Schema, rows: Sequence[Record]) -> bytes:
        _check_schema(schema, rows)
        lines = [_CSV_SEP.join(schema.fields)]
        for row in rows:
            try:
                lines.append(_CSV_SEP.join(json.dumps(v) for v in row.values))
            except TypeError as exc:
                raise FormatError(f"value not CSV-encodable: {exc}") from exc
        return ("\n".join(lines) + "\n").encode("utf-8")

    def decode(
        self,
        schema: Schema,
        blob: bytes,
        projection: Sequence[str] | None = None,
    ) -> list[Record]:
        lines = blob.decode("utf-8").splitlines()
        if not lines:
            raise FormatError("empty CSV blob (missing header)")
        header = tuple(lines[0].split(_CSV_SEP))
        if header != schema.fields:
            raise FormatError(
                f"CSV header {header!r} does not match schema {schema.fields!r}"
            )
        rows = []
        for line in lines[1:]:
            cells = _split_csv_line(line)
            if len(cells) != len(schema):
                raise FormatError(
                    f"CSV row has {len(cells)} cells, expected {len(schema)}"
                )
            rows.append(Record(schema, tuple(json.loads(c) for c in cells)))
        if projection:
            return [row.project(projection) for row in rows]
        return rows


def _split_csv_line(line: str) -> list[str]:
    """Split on separators outside JSON string literals."""
    cells: list[str] = []
    current: list[str] = []
    in_string = False
    escaped = False
    for char in line:
        if escaped:
            current.append(char)
            escaped = False
        elif char == "\\" and in_string:
            current.append(char)
            escaped = True
        elif char == '"':
            current.append(char)
            in_string = not in_string
        elif char == _CSV_SEP and not in_string:
            cells.append("".join(current))
            current = []
        else:
            current.append(char)
    cells.append("".join(current))
    return cells


class JsonLinesFormat(Format):
    """One JSON object per line; self-describing and schema-checked."""

    name = "jsonl"
    decode_cost_factor = 3.0
    supports_projection = False

    def encode(self, schema: Schema, rows: Sequence[Record]) -> bytes:
        _check_schema(schema, rows)
        try:
            lines = [json.dumps(row.as_dict(), sort_keys=True) for row in rows]
        except TypeError as exc:
            raise FormatError(f"value not JSON-encodable: {exc}") from exc
        return ("\n".join(lines) + ("\n" if lines else "")).encode("utf-8")

    def decode(
        self,
        schema: Schema,
        blob: bytes,
        projection: Sequence[str] | None = None,
    ) -> list[Record]:
        rows = []
        for line_number, line in enumerate(blob.decode("utf-8").splitlines(), 1):
            try:
                mapping = json.loads(line)
            except json.JSONDecodeError as exc:
                raise FormatError(f"bad JSON on line {line_number}: {exc}") from exc
            rows.append(schema.from_mapping(mapping))
        if projection:
            return [row.project(projection) for row in rows]
        return rows


class ColumnarFormat(Format):
    """Column-oriented binary layout with per-column blobs.

    The encoded form stores each column as an independently pickled blob,
    so a projected read unpickles only the requested columns — the whole
    point of columnar layouts for analytic scans.
    """

    name = "columnar"
    decode_cost_factor = 1.0
    supports_projection = True

    def encode(self, schema: Schema, rows: Sequence[Record]) -> bytes:
        _check_schema(schema, rows)
        columns = {
            field: pickle.dumps([row[field] for row in rows])
            for field in schema.fields
        }
        header = {"fields": list(schema.fields), "count": len(rows)}
        return pickle.dumps((header, columns))

    def decode(
        self,
        schema: Schema,
        blob: bytes,
        projection: Sequence[str] | None = None,
    ) -> list[Record]:
        try:
            header, columns = pickle.loads(blob)
        except Exception as exc:  # pickle raises many types
            raise FormatError(f"corrupt columnar blob: {exc}") from exc
        if tuple(header["fields"]) != schema.fields:
            raise FormatError(
                f"columnar fields {header['fields']!r} do not match schema "
                f"{schema.fields!r}"
            )
        wanted = list(projection) if projection else list(schema.fields)
        out_schema = schema if not projection else schema.project(wanted)
        decoded = {field: pickle.loads(columns[field]) for field in wanted}
        count = header["count"]
        return [
            Record(out_schema, tuple(decoded[field][i] for field in wanted))
            for i in range(count)
        ]


class PickleFormat(Format):
    """Schema-less binary codec for arbitrary (picklable) data quanta.

    The escape hatch for non-record datasets (plain numbers, tuples,
    vectors); pays no per-value decode cost but offers no projection.
    """

    name = "pickle"
    decode_cost_factor = 0.5
    supports_projection = False

    def encode(self, schema: Schema | None, rows: Sequence) -> bytes:  # type: ignore[override]
        try:
            return pickle.dumps(list(rows))
        except Exception as exc:
            raise FormatError(f"quanta not picklable: {exc}") from exc

    def decode(  # type: ignore[override]
        self,
        schema: Schema | None,
        blob: bytes,
        projection: Sequence[str] | None = None,
    ) -> list:
        if projection:
            raise FormatError("pickle format does not support projection")
        try:
            return pickle.loads(blob)
        except Exception as exc:
            raise FormatError(f"corrupt pickle blob: {exc}") from exc

    def decoded_value_count(
        self, schema: Schema | None, card: int, projection: Sequence[str] | None
    ) -> int:
        return card


def format_by_name(name: str) -> Format:
    """Look up a built-in format instance by name."""
    formats: dict[str, Format] = {
        f.name: f
        for f in (CsvFormat(), JsonLinesFormat(), ColumnarFormat(), PickleFormat())
    }
    try:
        return formats[name]
    except KeyError:
        raise FormatError(
            f"unknown format {name!r}; available: {sorted(formats)}"
        ) from None
