"""Cartilage-style transformation plans (paper §6).

"Cartilage introduces the notion of data transformation plans, analogous
to logical query plans, that specify a sequence of data transformations
that should be applied to raw data as it is uploaded into a storage
system."  A :class:`TransformationPlan` is exactly that: an ordered list
of p-store steps — project, sort, partition into blocks, encode — applied
when a dataset is written, enabling storage-side optimizations (columnar
layouts for projective scans, sorted blocks for range access, block
partitioning for parallel readers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.types import Record, Schema
from repro.errors import StorageError
from repro.storage.formats import ColumnarFormat, Format


@dataclass
class TransformedDataset:
    """Intermediate p-store state flowing between transformation steps."""

    schema: Schema
    blocks: list[list[Record]]

    @property
    def cardinality(self) -> int:
        return sum(len(block) for block in self.blocks)


class PStoreStep:
    """Base class of transformation-plan steps (p-store operators)."""

    def apply(self, dataset: TransformedDataset) -> TransformedDataset:
        """Transform the dataset; steps are pure (new state returned)."""
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class ProjectStep(PStoreStep):
    """Keep only the listed fields (narrows the stored schema)."""

    def __init__(self, fields: Sequence[str]):
        self.fields = list(fields)

    def apply(self, dataset: TransformedDataset) -> TransformedDataset:
        schema = dataset.schema.project(self.fields)
        blocks = [
            [row.project(self.fields) for row in block] for block in dataset.blocks
        ]
        return TransformedDataset(schema, blocks)

    def describe(self) -> str:
        return f"Project({self.fields})"


class SortStep(PStoreStep):
    """Globally sort rows by one field (then re-block contiguously)."""

    def __init__(self, field_name: str, reverse: bool = False):
        self.field_name = field_name
        self.reverse = reverse

    def apply(self, dataset: TransformedDataset) -> TransformedDataset:
        dataset.schema.index_of(self.field_name)
        rows = [row for block in dataset.blocks for row in block]
        rows.sort(key=lambda r: r[self.field_name], reverse=self.reverse)
        sizes = [len(block) for block in dataset.blocks]
        blocks: list[list[Record]] = []
        cursor = 0
        for size in sizes:
            blocks.append(rows[cursor : cursor + size])
            cursor += size
        return TransformedDataset(dataset.schema, blocks)

    def describe(self) -> str:
        return f"Sort({self.field_name}, reverse={self.reverse})"


class PartitionStep(PStoreStep):
    """Re-block into chunks of at most ``rows_per_block`` rows."""

    def __init__(self, rows_per_block: int):
        if rows_per_block <= 0:
            raise StorageError(
                f"rows_per_block must be positive, got {rows_per_block}"
            )
        self.rows_per_block = rows_per_block

    def apply(self, dataset: TransformedDataset) -> TransformedDataset:
        rows = [row for block in dataset.blocks for row in block]
        blocks = [
            rows[offset : offset + self.rows_per_block]
            for offset in range(0, len(rows), self.rows_per_block)
        ] or [[]]
        return TransformedDataset(dataset.schema, blocks)

    def describe(self) -> str:
        return f"Partition(rows_per_block={self.rows_per_block})"


@dataclass
class EncodeStep:
    """Terminal step: the format each block is encoded with."""

    format: Format = field(default_factory=ColumnarFormat)

    def describe(self) -> str:
        return f"Encode({self.format.name})"


class TransformationPlan:
    """An ordered sequence of p-store steps ending in an encode."""

    def __init__(
        self,
        steps: Sequence[PStoreStep] | None = None,
        encode: EncodeStep | None = None,
    ):
        self.steps = list(steps or [])
        self.encode = encode or EncodeStep()

    def apply(
        self, schema: Schema, rows: Sequence[Record], tracer=None
    ) -> tuple[Schema, list[bytes]]:
        """Run the plan; returns the stored schema and encoded blocks.

        With a :class:`~repro.core.observability.spans.Tracer` attached,
        the whole plan gets a ``storage.transform`` span and every
        p-store step a child span — the storage layer's slice of the
        end-to-end trace.
        """
        from repro.core.observability.spans import KIND_STORAGE, maybe_span

        with maybe_span(
            tracer,
            "storage.transform",
            KIND_STORAGE,
            steps=[step.describe() for step in self.steps],
            rows=len(rows),
        ) as span:
            dataset = TransformedDataset(schema, [list(rows)])
            for step in self.steps:
                with maybe_span(
                    tracer, f"pstore.{type(step).__name__}", KIND_STORAGE,
                    step=step.describe(),
                ):
                    dataset = step.apply(dataset)
            with maybe_span(
                tracer, "pstore.EncodeStep", KIND_STORAGE,
                step=self.encode.describe(),
            ):
                blobs = [
                    self.encode.format.encode(dataset.schema, block)
                    for block in dataset.blocks
                ]
            if span is not None:
                span.set(
                    blocks=len(blobs),
                    bytes=sum(len(blob) for blob in blobs),
                )
            return dataset.schema, blobs

    def describe(self) -> str:
        parts = [step.describe() for step in self.steps] + [self.encode.describe()]
        return " -> ".join(parts)

    def __repr__(self) -> str:
        return f"TransformationPlan({self.describe()})"
