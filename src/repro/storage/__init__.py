"""The RHEEM data storage abstraction (paper §6, Figure 4).

Mirrors the processing side with three levels:

* **l-store** (application level): declarative intents — store, load,
  transform a dataset (:mod:`repro.storage.abstraction`);
* **p-store** (core level): storage-platform-independent transformation
  steps — encode, project, sort, partition into blocks — composed into
  Cartilage-style *transformation plans*
  (:mod:`repro.storage.transformation`);
* **x-store** (platform level): the storage platforms themselves — local
  filesystem, simulated HDFS (blocks + replicas), a key-value store and a
  relational store (:mod:`repro.storage.platforms`).

Supporting pieces: the dataset :mod:`catalog <repro.storage.catalog>`
(locations + statistics, feeding the processing optimizer), the
WWHow!-style :mod:`storage optimizer <repro.storage.optimizer>` choosing
store and format for a workload, and the hot-data
:mod:`buffer <repro.storage.buffer>` keeping frequently accessed datasets
decoded in their native processing format.
"""

from repro.storage.abstraction import (
    LoadDataset,
    LStoreOperator,
    StoreDataset,
    TransformDataset,
)
from repro.storage.buffer import HotDataBuffer
from repro.storage.catalog import Catalog, CatalogAwareEstimator, DatasetEntry
from repro.storage.formats import (
    ColumnarFormat,
    CsvFormat,
    Format,
    JsonLinesFormat,
)
from repro.storage.optimizer import StorageOptimizer, WorkloadProfile
from repro.storage.platforms import (
    HdfsStore,
    KeyValueStore,
    LocalFsStore,
    RelationalStore,
    StoragePlatform,
)
from repro.storage.transformation import (
    EncodeStep,
    PartitionStep,
    ProjectStep,
    SortStep,
    TransformationPlan,
)

__all__ = [
    "Catalog",
    "CatalogAwareEstimator",
    "ColumnarFormat",
    "CsvFormat",
    "DatasetEntry",
    "EncodeStep",
    "Format",
    "HdfsStore",
    "HotDataBuffer",
    "JsonLinesFormat",
    "KeyValueStore",
    "LStoreOperator",
    "LoadDataset",
    "LocalFsStore",
    "PartitionStep",
    "ProjectStep",
    "RelationalStore",
    "SortStep",
    "StorageOptimizer",
    "StoragePlatform",
    "StoreDataset",
    "TransformDataset",
    "TransformationPlan",
    "WorkloadProfile",
]
