"""Hot-data buffer (paper §6, "Embracing hot data").

"We envision processing platforms or storage applications with
specialized buffers for embracing frequently accessed data in their
native format."  The buffer caches *decoded* datasets keyed by
(dataset, projection), so repeated reads of hot data skip both the store
fetch and the format decode.  Capacity-bounded with LRU eviction.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

from repro.errors import StorageError


class HotDataBuffer:
    """An LRU cache of decoded datasets."""

    def __init__(self, capacity_bytes: int = 32 * 1024 * 1024):
        if capacity_bytes <= 0:
            raise StorageError(
                f"capacity_bytes must be positive, got {capacity_bytes}"
            )
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[tuple, tuple[list[Any], int]]" = OrderedDict()
        self._used_bytes = 0
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> list[Any] | None:
        """Return the cached dataset for ``key`` or None (counts hit/miss)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[0]

    def put(self, key: tuple, data: list[Any], size_bytes: int) -> None:
        """Insert a decoded dataset; evicts least-recently-used as needed.

        Datasets larger than the whole buffer are not cached at all.
        """
        if size_bytes > self.capacity_bytes:
            return
        if key in self._entries:
            self._used_bytes -= self._entries.pop(key)[1]
        while self._used_bytes + size_bytes > self.capacity_bytes and self._entries:
            _, (_, evicted_size) = self._entries.popitem(last=False)
            self._used_bytes -= evicted_size
        self._entries[key] = (data, size_bytes)
        self._used_bytes += size_bytes

    def invalidate(self, dataset: str) -> None:
        """Drop every cached projection of ``dataset`` (after a rewrite)."""
        stale = [key for key in self._entries if key and key[0] == dataset]
        for key in stale:
            self._used_bytes -= self._entries.pop(key)[1]

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)
