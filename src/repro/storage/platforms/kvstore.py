"""A key-value store with record-level access.

Besides the uniform blob API (blobs are chunked into values), the store
offers per-record puts and point lookups — the access pattern the storage
optimizer routes lookup-heavy workloads to.
"""

from __future__ import annotations

from repro.errors import StorageError
from repro.storage.platforms.base import StoragePlatform

_CHUNK = 16 * 1024


class KeyValueStore(StoragePlatform):
    """In-memory ordered key-value store."""

    name = "kvstore"
    op_latency_ms = 0.02
    write_ms_per_kb = 0.025
    read_ms_per_kb = 0.02

    def __init__(self):
        #: namespace -> {key -> value bytes}
        self._spaces: dict[str, dict[str, bytes]] = {}

    # ------------------------------------------------------------------
    # record-level API
    # ------------------------------------------------------------------
    def put_record(self, namespace: str, key: str, value: bytes) -> float:
        """Store one record value; returns virtual milliseconds."""
        self._spaces.setdefault(namespace, {})[key] = value
        return self._write_cost(len(value))

    def get_record(self, namespace: str, key: str) -> tuple[bytes, float]:
        """Point lookup; O(1) with only per-op latency plus value bytes."""
        space = self._spaces.get(namespace, {})
        if key not in space:
            raise StorageError(f"kvstore: no key {key!r} in {namespace!r}")
        value = space[key]
        return value, self._read_cost(len(value))

    def scan_records(self, namespace: str) -> tuple[list[tuple[str, bytes]], float]:
        """Full ordered scan of a namespace."""
        space = self._spaces.get(namespace, {})
        items = sorted(space.items())
        size = sum(len(v) for _, v in items)
        return items, self._read_cost(size) + self.op_latency_ms * max(1, len(items)) * 0.01

    def record_count(self, namespace: str) -> int:
        return len(self._spaces.get(namespace, {}))

    # ------------------------------------------------------------------
    # blob API (chunked)
    # ------------------------------------------------------------------
    def put_blob(self, path: str, blob: bytes) -> float:
        namespace = f"__blob__{path}"
        self._spaces[namespace] = {}
        cost = 0.0
        for index in range(0, max(len(blob), 1), _CHUNK):
            chunk = blob[index : index + _CHUNK]
            cost += self.put_record(namespace, f"{index:012d}", chunk)
        return cost

    def get_blob(self, path: str) -> tuple[bytes, float]:
        namespace = f"__blob__{path}"
        if namespace not in self._spaces:
            raise self._missing(path)
        items, cost = self.scan_records(namespace)
        return b"".join(value for _, value in items), cost

    def delete_blob(self, path: str) -> float:
        self._spaces.pop(f"__blob__{path}", None)
        return self.op_latency_ms

    def exists(self, path: str) -> bool:
        return f"__blob__{path}" in self._spaces

    def list_paths(self) -> list[str]:
        prefix = "__blob__"
        return sorted(
            space[len(prefix):] for space in self._spaces if space.startswith(prefix)
        )
