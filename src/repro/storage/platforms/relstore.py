"""Relational store: datasets as tables of the mini relational engine.

Unlike the byte-oriented stores, records live here in their *native
processing format* — no encode/decode on the path to the relational
processing platform.  Sharing the :class:`Database` instance with a
:class:`~repro.platforms.postgres.PostgresPlatform` models co-located
storage and compute, which the movement-aware optimizer exploits.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.types import Record, Schema
from repro.errors import StorageError
from repro.platforms.postgres.engine import Database
from repro.storage.platforms.base import StoragePlatform


class RelationalStore(StoragePlatform):
    """Record-native storage backed by :class:`Database` heap tables."""

    name = "relstore"
    op_latency_ms = 0.2
    write_ms_per_kb = 0.05  # per-row insert path is slower than file append
    read_ms_per_kb = 0.01
    #: assumed bytes per record for cost purposes (records are not encoded)
    bytes_per_record = 64

    def __init__(self, database: Database | None = None):
        self.database = database or Database()

    # ------------------------------------------------------------------
    # record-level API (the native path)
    # ------------------------------------------------------------------
    def put_records(self, name: str, schema: Schema, rows: Sequence[Record]) -> float:
        """Create/replace table ``name`` with ``rows``."""
        self.database.drop_table(name)
        table = self.database.create_table(name, schema)
        table.insert_many(list(rows))
        return self._write_cost(len(rows) * self.bytes_per_record)

    def get_records(self, name: str) -> tuple[list[Record], float]:
        """Scan table ``name``."""
        if name not in self.database:
            raise self._missing(name)
        table = self.database.table(name)
        rows = list(table.scan())
        return rows, self._read_cost(len(rows) * self.bytes_per_record)

    def schema_of(self, name: str) -> Schema:
        if name not in self.database:
            raise self._missing(name)
        return self.database.table(name).schema

    # ------------------------------------------------------------------
    # blob API — not meaningful for a relational engine
    # ------------------------------------------------------------------
    def put_blob(self, path: str, blob: bytes) -> float:
        raise StorageError(
            "relstore holds records natively; use put_records (the catalog "
            "does this automatically)"
        )

    def get_blob(self, path: str) -> tuple[bytes, float]:
        raise StorageError(
            "relstore holds records natively; use get_records (the catalog "
            "does this automatically)"
        )

    def delete_blob(self, path: str) -> float:
        self.database.drop_table(path)
        return self.op_latency_ms

    def exists(self, path: str) -> bool:
        return path in self.database

    def list_paths(self) -> list[str]:
        return sorted(self.database.table_names)
