"""Local-filesystem store: real files under a root directory."""

from __future__ import annotations

import os
import tempfile

from repro.storage.platforms.base import StoragePlatform


class LocalFsStore(StoragePlatform):
    """Blobs as files on the local disk.

    The cheapest store for sequential scans (no network), with no
    replication or block management.  Paths are flat names; directory
    separators are encoded to keep every blob a direct child of the root.
    """

    name = "localfs"
    op_latency_ms = 0.05
    write_ms_per_kb = 0.015
    read_ms_per_kb = 0.008

    def __init__(self, root: str | None = None):
        self.root = root or tempfile.mkdtemp(prefix="repro-localfs-")
        os.makedirs(self.root, exist_ok=True)

    def _file(self, path: str) -> str:
        # Reversible flat-name escape: underscores first, then
        # separators, so list_paths() can reconstruct the exact blob
        # path even when it contains literal "__" (checkpoint names do).
        safe = path.replace("_", "_u").replace(os.sep, "_d")
        return os.path.join(self.root, safe)

    def put_blob(self, path: str, blob: bytes) -> float:
        with open(self._file(path), "wb") as handle:
            handle.write(blob)
        return self._write_cost(len(blob))

    def get_blob(self, path: str) -> tuple[bytes, float]:
        try:
            with open(self._file(path), "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            raise self._missing(path) from None
        return blob, self._read_cost(len(blob))

    def delete_blob(self, path: str) -> float:
        try:
            os.remove(self._file(path))
        except FileNotFoundError:
            pass
        return self.op_latency_ms

    def exists(self, path: str) -> bool:
        return os.path.exists(self._file(path))

    def list_paths(self) -> list[str]:
        return sorted(
            name.replace("_d", os.sep).replace("_u", "_")
            for name in os.listdir(self.root)
        )
