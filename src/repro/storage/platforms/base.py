"""Base class of the storage platforms.

A storage platform stores named byte blobs and prices every operation in
virtual milliseconds (per-operation latency plus throughput-proportional
cost), so the storage optimizer and the benchmarks can compare placements
quantitatively — the same honest-virtual-time substitution used on the
processing side (DESIGN.md §2).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import StorageError


class StoragePlatform(ABC):
    """A blob store with virtual-time accounting."""

    #: platform identifier used by the catalog and placement decisions
    name: str = "abstract"
    #: fixed virtual latency per storage operation
    op_latency_ms: float = 0.1
    #: virtual cost per kilobyte written
    write_ms_per_kb: float = 0.02
    #: virtual cost per kilobyte read
    read_ms_per_kb: float = 0.01

    @abstractmethod
    def put_blob(self, path: str, blob: bytes) -> float:
        """Store ``blob`` under ``path``; returns virtual milliseconds."""

    @abstractmethod
    def get_blob(self, path: str) -> tuple[bytes, float]:
        """Fetch the blob at ``path``; returns (bytes, virtual ms)."""

    @abstractmethod
    def delete_blob(self, path: str) -> float:
        """Remove ``path`` (idempotent); returns virtual milliseconds."""

    @abstractmethod
    def exists(self, path: str) -> bool:
        """Whether a blob is stored under ``path``."""

    @abstractmethod
    def list_paths(self) -> list[str]:
        """All stored paths, sorted."""

    # ------------------------------------------------------------------
    def _write_cost(self, size_bytes: int) -> float:
        return self.op_latency_ms + self.write_ms_per_kb * size_bytes / 1024.0

    def _read_cost(self, size_bytes: int) -> float:
        return self.op_latency_ms + self.read_ms_per_kb * size_bytes / 1024.0

    def _missing(self, path: str) -> StorageError:
        return StorageError(f"{self.name}: no blob at {path!r}")

    def __repr__(self) -> str:
        return f"<StoragePlatform {self.name}>"
