"""Simulated HDFS: blocks, replicas, datanode failures.

Blobs are split into fixed-size blocks; each block is replicated on
``replication`` of the simulated datanodes (round-robin placement).
Reads fetch every block from any live replica and pay a per-block
overhead — which is why small-block configurations read slower, a knob
the storage benchmarks exercise.  Datanodes can be failed and revived to
test replica fallback.
"""

from __future__ import annotations

from repro.errors import StorageError
from repro.storage.platforms.base import StoragePlatform


class HdfsStore(StoragePlatform):
    """In-memory block store with replication."""

    name = "hdfs"
    op_latency_ms = 0.5
    write_ms_per_kb = 0.03
    read_ms_per_kb = 0.012
    #: extra virtual cost per block fetched (namenode + datanode hop)
    per_block_ms = 0.3

    def __init__(
        self,
        block_size: int = 64 * 1024,
        replication: int = 3,
        datanodes: int = 4,
    ):
        if replication > datanodes:
            raise StorageError(
                f"replication {replication} exceeds datanode count {datanodes}"
            )
        if block_size <= 0:
            raise StorageError(f"block_size must be positive, got {block_size}")
        self.block_size = block_size
        self.replication = replication
        #: per-datanode block storage: datanode -> {(path, index) -> bytes}
        self._datanodes: list[dict[tuple[str, int], bytes]] = [
            {} for _ in range(datanodes)
        ]
        self._alive = [True] * datanodes
        #: namenode metadata: path -> [(block index, [datanode ids])]
        self._metadata: dict[str, list[tuple[int, list[int]]]] = {}
        self._next_node = 0

    # ------------------------------------------------------------------
    # failure simulation
    # ------------------------------------------------------------------
    def fail_datanode(self, node: int) -> None:
        """Mark a datanode as dead; reads fall back to replicas."""
        self._alive[node] = False

    def revive_datanode(self, node: int) -> None:
        """Bring a failed datanode back."""
        self._alive[node] = True

    @property
    def live_datanodes(self) -> int:
        return sum(self._alive)

    # ------------------------------------------------------------------
    # blob API
    # ------------------------------------------------------------------
    def put_blob(self, path: str, blob: bytes) -> float:
        self.delete_blob(path)
        blocks = [
            blob[offset : offset + self.block_size]
            for offset in range(0, len(blob), self.block_size)
        ] or [b""]
        placement: list[tuple[int, list[int]]] = []
        for index, block in enumerate(blocks):
            nodes = self._pick_nodes()
            for node in nodes:
                self._datanodes[node][(path, index)] = block
            placement.append((index, nodes))
        self._metadata[path] = placement
        # Writes push every replica of every block.
        return (
            self._write_cost(len(blob) * self.replication)
            + self.per_block_ms * len(blocks)
        )

    def get_blob(self, path: str) -> tuple[bytes, float]:
        placement = self._metadata.get(path)
        if placement is None:
            raise self._missing(path)
        parts: list[bytes] = []
        for index, nodes in placement:
            replica = next(
                (n for n in nodes if self._alive[n]), None
            )
            if replica is None:
                raise StorageError(
                    f"hdfs: all replicas of block {index} of {path!r} are "
                    "on failed datanodes"
                )
            parts.append(self._datanodes[replica][(path, index)])
        blob = b"".join(parts)
        return blob, self._read_cost(len(blob)) + self.per_block_ms * len(placement)

    def delete_blob(self, path: str) -> float:
        placement = self._metadata.pop(path, None)
        if placement:
            for index, nodes in placement:
                for node in nodes:
                    self._datanodes[node].pop((path, index), None)
        return self.op_latency_ms

    def exists(self, path: str) -> bool:
        return path in self._metadata

    def list_paths(self) -> list[str]:
        return sorted(self._metadata)

    def block_count(self, path: str) -> int:
        """Number of blocks a stored blob occupies."""
        placement = self._metadata.get(path)
        if placement is None:
            raise self._missing(path)
        return len(placement)

    # ------------------------------------------------------------------
    def _pick_nodes(self) -> list[int]:
        total = len(self._datanodes)
        nodes = []
        cursor = self._next_node
        while len(nodes) < self.replication:
            nodes.append(cursor % total)
            cursor += 1
        self._next_node = (self._next_node + 1) % total
        return nodes
