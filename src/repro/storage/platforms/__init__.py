"""Storage platforms (the x-store level of the storage abstraction)."""

from repro.storage.platforms.base import StoragePlatform
from repro.storage.platforms.hdfs import HdfsStore
from repro.storage.platforms.kvstore import KeyValueStore
from repro.storage.platforms.localfs import LocalFsStore
from repro.storage.platforms.relstore import RelationalStore

__all__ = [
    "HdfsStore",
    "KeyValueStore",
    "LocalFsStore",
    "RelationalStore",
    "StoragePlatform",
]
