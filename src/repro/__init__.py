"""repro — a reproduction of "Road to Freedom in Big Data Analytics"
(RHEEM, EDBT 2016).

A cross-platform data analytics layer: applications build plans once,
against logical operators; the library chooses algorithmic variants and
processing platforms with pluggable cost models, splits plans into task
atoms, executes them on simulated platforms (in-process "Java", simulated
Spark, a mini relational engine) and accounts calibrated virtual time.

Quickstart::

    from repro import RheemContext

    ctx = RheemContext()
    evens = ctx.collection(range(10)).filter(lambda x: x % 2 == 0).collect()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-experiment reproductions.
"""

from repro.core.checkpoint import CheckpointManager, plan_fingerprint
from repro.core.context import DataQuanta, RheemContext
from repro.core.executor import ExecutionResult, Executor
from repro.core.listeners import (
    ConsoleProgressListener,
    ExecutionListener,
    RecordingListener,
    VirtualBudgetListener,
)
from repro.core.logical.operators import CostHints
from repro.core.logical.plan import LogicalPlan
from repro.core.metrics import ExecutionMetrics
from repro.core.observability import (
    MetricsRegistry,
    Tracer,
    prometheus_text,
    render_flamegraph,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
)
from repro.core.progressive import ProgressiveExecutor
from repro.core.recovery import (
    CrashInjector,
    RunJournal,
    SimulatedCrash,
    config_epoch,
)
from repro.core.resilience import (
    BackoffPolicy,
    FailureInjector,
    HealthTracker,
    PlatformHealth,
)
from repro.core.runtime import RuntimeContext
from repro.core.types import Record, Schema, records_from_dicts
from repro.errors import (
    ExecutionError,
    PlatformDownError,
    RheemError,
    TransientError,
)

__version__ = "1.0.0"

__all__ = [
    "BackoffPolicy",
    "CheckpointManager",
    "ConsoleProgressListener",
    "CostHints",
    "CrashInjector",
    "DataQuanta",
    "ExecutionError",
    "ExecutionListener",
    "ExecutionMetrics",
    "ExecutionResult",
    "Executor",
    "FailureInjector",
    "HealthTracker",
    "PlatformDownError",
    "PlatformHealth",
    "ProgressiveExecutor",
    "RecordingListener",
    "TransientError",
    "VirtualBudgetListener",
    "LogicalPlan",
    "MetricsRegistry",
    "Record",
    "RheemContext",
    "RheemError",
    "RunJournal",
    "RuntimeContext",
    "Schema",
    "SimulatedCrash",
    "Tracer",
    "config_epoch",
    "plan_fingerprint",
    "prometheus_text",
    "records_from_dicts",
    "render_flamegraph",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "__version__",
]
