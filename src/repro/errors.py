"""Exception hierarchy for the RHEEM reproduction.

Every error raised by the library derives from :class:`RheemError` so that
applications can catch library failures with a single ``except`` clause
while still being able to distinguish plan-construction problems from
optimizer and runtime problems.
"""

from __future__ import annotations


class RheemError(Exception):
    """Base class for all errors raised by this library."""


class PlanError(RheemError):
    """A plan is structurally invalid (bad wiring, arity mismatch, cycles)."""


class ValidationError(PlanError):
    """A plan failed semantic validation before optimization."""


class MappingError(RheemError):
    """No operator mapping exists for a requested translation."""


class OptimizationError(RheemError):
    """The optimizer could not produce an execution plan."""


class ExecutionError(RheemError):
    """A task atom failed during execution."""


class TransientError(ExecutionError):
    """A failure expected to clear on retry (timeouts, flaky I/O).

    The Executor retries transient failures on the *same* platform with
    exponential backoff before considering failover.
    """


class PlatformDownError(ExecutionError):
    """A platform-level outage; retrying on the same platform is futile.

    The Executor skips remaining same-platform retries, quarantines the
    platform in the health tracker, and (when failover is enabled)
    re-plans the remaining plan suffix on the surviving platforms.
    """


class AtomDeadlineError(PlatformDownError):
    """A task atom overran its per-atom wall-clock deadline.

    Deadlines guard recoverable runs against a *hung* platform — one
    that neither fails nor finishes.  Overruns are treated as platform
    outages (hence the :class:`PlatformDownError` base): same-platform
    retries are pointless against a wedged engine, so the breaker trips
    and, when failover is enabled, the suffix re-plans elsewhere.
    """


class AtomExhaustedError(ExecutionError):
    """A task atom failed after exhausting its retry budget.

    Carries the failed atom and the last underlying error so the
    Executor's failover path can quarantine the platform and re-plan the
    remaining suffix.  ``atom`` is a
    :class:`~repro.core.execution.plan.TaskAtom` (or ``LoopAtom``);
    ``cause`` is the final per-attempt exception.
    """

    def __init__(self, message: str, atom=None, cause=None):
        super().__init__(message)
        self.atom = atom
        self.cause = cause


class PlatformError(RheemError):
    """A processing platform was misconfigured or misused."""


class UnsupportedOperatorError(PlatformError):
    """A platform was asked to execute an operator it does not support."""


class StorageError(RheemError):
    """A storage platform or storage plan failed."""


class FormatError(StorageError):
    """A dataset could not be encoded or decoded in a storage format."""


class CatalogError(StorageError):
    """A dataset reference could not be resolved in the catalog."""


class RuleError(RheemError):
    """A data-cleaning rule is malformed or failed to evaluate."""
