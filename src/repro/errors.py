"""Exception hierarchy for the RHEEM reproduction.

Every error raised by the library derives from :class:`RheemError` so that
applications can catch library failures with a single ``except`` clause
while still being able to distinguish plan-construction problems from
optimizer and runtime problems.
"""

from __future__ import annotations


class RheemError(Exception):
    """Base class for all errors raised by this library."""


class PlanError(RheemError):
    """A plan is structurally invalid (bad wiring, arity mismatch, cycles)."""


class ValidationError(PlanError):
    """A plan failed semantic validation before optimization."""


class MappingError(RheemError):
    """No operator mapping exists for a requested translation."""


class OptimizationError(RheemError):
    """The optimizer could not produce an execution plan."""


class ExecutionError(RheemError):
    """A task atom failed during execution (after exhausting retries)."""


class PlatformError(RheemError):
    """A processing platform was misconfigured or misused."""


class UnsupportedOperatorError(PlatformError):
    """A platform was asked to execute an operator it does not support."""


class StorageError(RheemError):
    """A storage platform or storage plan failed."""


class FormatError(StorageError):
    """A dataset could not be encoded or decoded in a storage format."""


class CatalogError(StorageError):
    """A dataset reference could not be resolved in the catalog."""


class RuleError(RheemError):
    """A data-cleaning rule is malformed or failed to evaluate."""
