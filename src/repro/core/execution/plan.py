"""Execution plans: task atoms assigned to platforms.

The multi-platform task optimizer "divides a physical plan into task
atoms, i.e. sub-tasks, which are the units of execution.  A task atom is
a sub-task to be executed on a single data processing platform" (§3.1).
An :class:`ExecutionPlan` is a DAG of such atoms; edges between atoms are
channel hand-offs priced by the movement cost model.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any

from repro.core.dag import OperatorGraph
from repro.core.physical.operators import PCollectSink, PhysicalOperator, PRepeat

if TYPE_CHECKING:  # pragma: no cover
    from repro.platforms.base import Platform

_ATOM_IDS = itertools.count(1)


class TaskAtom:
    """A maximal single-platform fragment of the physical plan.

    Attributes
    ----------
    platform:
        The processing platform this atom is scheduled on.
    fragment:
        The sub-DAG of physical operators (internal edges only).
    external_inputs:
        ``(consumer_op_id, slot_index) -> producer_op_id`` for every input
        slot whose producer lives in another atom.  The executor satisfies
        these from channels.
    output_ids:
        Operator ids whose results must be egested (consumed by another
        atom, or plan results).
    """

    def __init__(
        self,
        platform: "Platform",
        fragment: OperatorGraph[PhysicalOperator],
        external_inputs: dict[tuple[int, int], int],
        output_ids: set[int],
    ):
        self.id: int = next(_ATOM_IDS)
        self.platform = platform
        self.fragment = fragment
        self.external_inputs = external_inputs
        self.output_ids = output_ids

    @property
    def operator_ids(self) -> set[int]:
        """Ids of the physical operators inside this atom."""
        return {op.id for op in self.fragment}

    def describe(self) -> str:
        """One-line summary used by ``ExecutionPlan.explain``."""
        ops = ", ".join(op.describe() for op in self.fragment.topological_order())
        return f"atom#{self.id}@{self.platform.name}[{ops}]"

    def __repr__(self) -> str:
        return f"<TaskAtom #{self.id} {self.platform.name} ops={len(self.fragment)}>"


class LoopAtom:
    """A loop (``PRepeat``) scheduled as a unit on one platform.

    The body is a nested :class:`ExecutionPlan` whose atoms all run on the
    same platform; the executor iterates it, binding the loop-input
    operator to the evolving state channel.
    """

    def __init__(
        self,
        platform: "Platform",
        repeat: PRepeat,
        body_plan: "ExecutionPlan",
        state_producer_id: int,
    ):
        self.id: int = next(_ATOM_IDS)
        self.platform = platform
        self.repeat = repeat
        self.body_plan = body_plan
        #: id of the operator (in the *outer* plan) producing the initial state.
        self.state_producer_id = state_producer_id

    @property
    def operator_ids(self) -> set[int]:
        return {self.repeat.id}

    @property
    def output_ids(self) -> set[int]:
        return {self.repeat.id}

    def describe(self) -> str:
        return (
            f"loop#{self.id}@{self.platform.name}"
            f"(iterations<={self.repeat.iteration_bound}, "
            f"body_atoms={len(self.body_plan.atoms)})"
        )

    def __repr__(self) -> str:
        return f"<LoopAtom #{self.id} {self.platform.name}>"


class ExecutionPlan:
    """A topologically ordered list of task atoms plus result bookkeeping."""

    def __init__(
        self,
        atoms: list[TaskAtom | LoopAtom],
        collect_sinks: tuple[PCollectSink, ...],
        estimates: dict[int, float] | None = None,
    ):
        self.atoms = atoms
        self.collect_sinks = collect_sinks
        #: optimizer cardinality estimates (operator id -> cardinality),
        #: kept so the Executor can report misestimates at run time
        self.estimates = estimates or {}
        #: operator id -> operator kind at estimate time (before variant
        #: substitution renumbers operators) — lets the Executor tag
        #: boundary observations for the cross-run CalibrationStore
        self.estimate_kinds: dict[int, str] = {}
        #: operator id -> correction factor a calibrated estimator
        #: applied to ``estimates[id]`` (only ids whose estimate moved);
        #: divided back out when observations are fed to the store
        self.estimate_corrections: dict[int, float] = {}
        #: the physical plan this execution plan was cut from (set by
        #: MultiPlatformOptimizer.optimize; None for nested loop-body
        #: plans).  The Executor's failover path re-plans the unexecuted
        #: suffix of this plan when a platform is quarantined.
        self.source_plan: Any | None = None
        #: static per-boundary columnar decisions (set by
        #: MultiPlatformOptimizer.optimize via
        #: :func:`repro.core.physical.columnar.analyze_boundaries`;
        #: rendered by ``repro explain`` and priced by the
        #: kernel-aware cost model)
        self.columnar_boundaries: list[dict[str, Any]] = []

    @property
    def platforms(self) -> tuple["Platform", ...]:
        """Distinct platforms used, in first-use order (loops included)."""
        seen: dict[str, Any] = {}
        for atom in self.atoms:
            seen.setdefault(atom.platform.name, atom.platform)
            if isinstance(atom, LoopAtom):
                for platform in atom.body_plan.platforms:
                    seen.setdefault(platform.name, platform)
        return tuple(seen.values())

    def atom_of(self, operator_id: int) -> TaskAtom | LoopAtom:
        """Return the atom containing the given physical operator."""
        for atom in self.atoms:
            if operator_id in atom.operator_ids:
                return atom
        raise KeyError(f"no atom contains operator id {operator_id}")

    def explain(self) -> str:
        """Multi-line rendering of the atom schedule."""
        return "\n".join(atom.describe() for atom in self.atoms)

    def __len__(self) -> int:
        return len(self.atoms)
