"""Execution-layer plan structures (task atoms and execution plans)."""

from repro.core.execution.plan import ExecutionPlan, LoopAtom, TaskAtom

__all__ = ["ExecutionPlan", "LoopAtom", "TaskAtom"]
