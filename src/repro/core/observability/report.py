"""Perf-regression observatory: baselines vs history, with gating.

``benchmarks/results/`` holds two kinds of record:

* ``BENCH_<exp_id>.json`` — the *committed baselines*: one machine-
  readable payload per experiment, refreshed deliberately when a PR
  changes the numbers on purpose;
* ``history.jsonl`` — the *durable run record*: every bench run appends
  one line per experiment (git sha, scale, wall/virtual/makespan,
  resource summary when profiled), whether or not it is ever committed.

``repro report`` renders the last runs against the baselines plus the
trend; ``repro report --check`` turns the comparison into a gate:

* **hard floors** — every baseline key whose value is boolean ``True``
  (``identical``, ``deterministic``, ``outputs_identical``, ...) must be
  ``True`` in every windowed run, at any scale.  Byte-identity is never
  allowed to degrade, noisy CI box or not.
* **floor margins** — for every baseline pair ``X`` / ``X_floor``
  (e.g. ``speedup``/``speedup_floor``), the median of ``X - X_floor``
  over the window must be >= 0.  Each run is measured against *its own*
  recorded floor, so quick-scale runs gate against quick-scale floors.
* **tolerance bands** — numeric ``*_ms`` metrics are compared as
  best-of-N medians against the baseline, only when the run scale
  matches the baseline scale (wall times at quick scale say nothing
  about full-scale baselines).  Keys starting with ``wall`` get the
  loose wall-clock band; everything else ending in ``_ms`` is virtual
  time — deterministic by construction — and gets a tight band.

The module only reads files handed to it (no repo-layout assumptions),
so it lives in core/ while the writers live in benchmarks/harness.
"""

from __future__ import annotations

import json
import os
import statistics
import subprocess
from dataclasses import dataclass, field

#: provenance keys excluded from metric comparison
PROVENANCE_KEYS = ("exp_id", "scale", "git_sha", "recorded_at_utc", "profiled")

DEFAULT_BEST_OF = 3
#: wall-clock metrics are noisy across machines and loads
DEFAULT_WALL_TOLERANCE = 0.50
#: virtual-time metrics are deterministic — drift means the bill changed
DEFAULT_VIRTUAL_TOLERANCE = 0.02

OK = "ok"
FAIL = "FAIL"
SKIP = "skip"


def repo_git_sha(cwd: str | None = None) -> str | None:
    """HEAD commit sha, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or os.getcwd(),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def load_baselines(results_dir: str) -> dict[str, dict]:
    """Committed ``BENCH_<exp_id>.json`` payloads, keyed by exp id."""
    baselines: dict[str, dict] = {}
    if not os.path.isdir(results_dir):
        return baselines
    for name in sorted(os.listdir(results_dir)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        path = os.path.join(results_dir, name)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                document = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        exp_id = document.get("exp_id") or name[len("BENCH_"):-len(".json")]
        baselines[exp_id] = document
    return baselines


def load_history(path: str) -> tuple[list[dict], int]:
    """History entries plus the count of skipped (torn/corrupt) lines.

    Appends are fsync'd but a crash can still tear the final line;
    unparsable or non-dict lines are counted and skipped, never fatal.
    """
    entries: list[dict] = []
    skipped = 0
    if not os.path.exists(path):
        return entries, skipped
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                document = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if isinstance(document, dict) and document.get("exp_id"):
                entries.append(document)
            else:
                skipped += 1
    return entries, skipped


@dataclass
class Gate:
    """One evaluated comparison for one experiment."""

    exp_id: str
    metric: str
    status: str  # OK | FAIL | SKIP
    detail: str


@dataclass
class ExpSection:
    """One experiment's baseline, run window and gate results."""

    exp_id: str
    baseline: dict
    window: list[dict] = field(default_factory=list)
    gates: list[Gate] = field(default_factory=list)


@dataclass
class PerfReport:
    """The full observatory comparison."""

    sections: list[ExpSection] = field(default_factory=list)
    history_runs: int = 0
    skipped_lines: int = 0
    extra_exp_ids: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[Gate]:
        return [
            gate
            for section in self.sections
            for gate in section.gates
            if gate.status == FAIL
        ]


def _median(values: list[float]) -> float:
    return float(statistics.median(values))


def _is_number(value) -> bool:
    return type(value) in (int, float)


def _band_keys(baseline: dict) -> list[str]:
    """Baseline metric keys eligible for tolerance-band comparison."""
    keys = []
    for key, value in baseline.items():
        if key in PROVENANCE_KEYS or not key.endswith("_ms"):
            continue
        if _is_number(value):
            keys.append(key)
        elif isinstance(value, dict) and value and all(
            _is_number(v) for v in value.values()
        ):
            keys.append(key)
    return keys


def _tolerance_for(key: str, wall_tol: float, virtual_tol: float) -> float:
    return wall_tol if key.startswith("wall") else virtual_tol


def build_report(
    baselines: dict[str, dict],
    history: list[dict],
    *,
    best_of: int = DEFAULT_BEST_OF,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    virtual_tolerance: float = DEFAULT_VIRTUAL_TOLERANCE,
    skipped_lines: int = 0,
) -> PerfReport:
    """Compare the last ``best_of`` history runs per experiment against
    the committed baselines and evaluate every gate."""
    report = PerfReport(
        history_runs=len(history), skipped_lines=skipped_lines
    )
    baseline_ids = set(baselines)
    report.extra_exp_ids = sorted(
        {e["exp_id"] for e in history} - baseline_ids
    )
    for exp_id in sorted(baselines):
        baseline = baselines[exp_id]
        window = [e for e in history if e["exp_id"] == exp_id][-best_of:]
        section = ExpSection(exp_id, baseline, window)
        report.sections.append(section)
        if not window:
            section.gates.append(
                Gate(exp_id, "(all)", SKIP, "no history runs recorded")
            )
            continue
        _gate_booleans(section)
        _gate_floors(section)
        _gate_bands(section, wall_tolerance, virtual_tolerance)
    return report


def _gate_booleans(section: ExpSection) -> None:
    """Hard floors: baseline ``True`` booleans must stay ``True``."""
    for key, value in section.baseline.items():
        if key in PROVENANCE_KEYS or value is not True:
            continue
        observed = [e[key] for e in section.window if key in e]
        if not observed:
            section.gates.append(
                Gate(section.exp_id, key, SKIP, "metric absent from runs")
            )
            continue
        holds = sum(1 for v in observed if v is True)
        status = OK if holds == len(observed) else FAIL
        section.gates.append(
            Gate(
                section.exp_id,
                key,
                status,
                f"true in {holds}/{len(observed)} runs (hard floor)",
            )
        )


def _gate_floors(section: ExpSection) -> None:
    """Floor margins: median of ``X - X_floor`` must be >= 0."""
    baseline = section.baseline
    for key, value in baseline.items():
        if not key.endswith("_floor") or not _is_number(value):
            continue
        metric = key[: -len("_floor")]
        if not _is_number(baseline.get(metric)):
            continue
        margins = [
            float(e[metric]) - float(e.get(key, value))
            for e in section.window
            if _is_number(e.get(metric))
        ]
        if not margins:
            section.gates.append(
                Gate(section.exp_id, metric, SKIP, "metric absent from runs")
            )
            continue
        margin = _median(margins)
        status = OK if margin >= 0 else FAIL
        section.gates.append(
            Gate(
                section.exp_id,
                metric,
                status,
                f"median margin {margin:+.3f} over recorded floor "
                f"({len(margins)} run(s))",
            )
        )


def _gate_bands(
    section: ExpSection, wall_tol: float, virtual_tol: float
) -> None:
    """Tolerance bands on ``*_ms`` medians, same-scale runs only."""
    baseline = section.baseline
    base_scale = baseline.get("scale")
    scaled = [e for e in section.window if e.get("scale") == base_scale]
    for key in _band_keys(baseline):
        if not scaled:
            section.gates.append(
                Gate(
                    section.exp_id,
                    key,
                    SKIP,
                    f"no runs at baseline scale {base_scale!r}",
                )
            )
            continue
        tolerance = _tolerance_for(key, wall_tol, virtual_tol)
        base_value = baseline[key]
        if isinstance(base_value, dict):
            for sub, base_v in sorted(base_value.items()):
                observed = [
                    float(e[key][sub])
                    for e in scaled
                    if isinstance(e.get(key), dict)
                    and _is_number(e[key].get(sub))
                ]
                _append_band_gate(
                    section, f"{key}[{sub}]", float(base_v), observed,
                    tolerance,
                )
        else:
            observed = [
                float(e[key]) for e in scaled if _is_number(e.get(key))
            ]
            _append_band_gate(
                section, key, float(base_value), observed, tolerance
            )


def _append_band_gate(
    section: ExpSection,
    metric: str,
    base_value: float,
    observed: list[float],
    tolerance: float,
) -> None:
    if not observed:
        section.gates.append(
            Gate(section.exp_id, metric, SKIP, "metric absent from runs")
        )
        return
    median = _median(observed)
    limit = base_value * (1.0 + tolerance)
    status = OK if median <= limit else FAIL
    section.gates.append(
        Gate(
            section.exp_id,
            metric,
            status,
            f"median {median:.3f} vs baseline {base_value:.3f} "
            f"(band +{tolerance:.0%}, {len(observed)} run(s))",
        )
    )


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _trend(section: ExpSection, key: str = "speedup", width: int = 8) -> str:
    values = [
        float(e[key]) for e in section.window[-width:] if _is_number(e.get(key))
    ]
    if len(values) < 2:
        return ""
    return " -> ".join(f"{v:.2f}" for v in values)


def render_report(report: PerfReport, *, markdown: bool = False) -> str:
    """Render the observatory comparison as text or markdown."""
    if markdown:
        return _render_markdown(report)
    lines = [
        f"perf observatory — {len(report.sections)} baseline(s), "
        f"{report.history_runs} history entr(ies)"
        + (
            f", {report.skipped_lines} torn line(s) skipped"
            if report.skipped_lines
            else ""
        )
    ]
    for section in report.sections:
        sha = (section.baseline.get("git_sha") or "?")[:9]
        lines.append(
            f"\n{section.exp_id}  baseline: "
            f"scale={section.baseline.get('scale')} sha={sha}  "
            f"window: {len(section.window)} run(s)"
        )
        for gate in section.gates:
            lines.append(f"  [{gate.status:>4}] {gate.metric}: {gate.detail}")
        trend = _trend(section)
        if trend:
            lines.append(f"  trend speedup: {trend}")
    if report.extra_exp_ids:
        lines.append(
            "\nhistory-only experiments (no committed baseline): "
            + ", ".join(report.extra_exp_ids)
        )
    regressions = report.regressions
    lines.append(
        f"\n{'REGRESSIONS: ' + str(len(regressions)) if regressions else 'no regressions'}"
    )
    for gate in regressions:
        lines.append(f"  {gate.exp_id}.{gate.metric}: {gate.detail}")
    return "\n".join(lines)


def _render_markdown(report: PerfReport) -> str:
    lines = [
        "# Perf observatory",
        "",
        f"{len(report.sections)} baseline(s), {report.history_runs} "
        f"history entr(ies), {report.skipped_lines} torn line(s) skipped.",
        "",
        "| experiment | metric | status | detail |",
        "| --- | --- | --- | --- |",
    ]
    for section in report.sections:
        for gate in section.gates:
            lines.append(
                f"| {section.exp_id} | `{gate.metric}` | {gate.status} "
                f"| {gate.detail} |"
            )
    regressions = report.regressions
    lines.append("")
    lines.append(
        f"**{len(regressions)} regression(s).**"
        if regressions
        else "**No regressions.**"
    )
    return "\n".join(lines)
