"""Trace diffing: align two span logs and explain what changed.

``repro trace-diff A.jsonl B.jsonl`` compares two runs of (nominally)
the same workload — before/after an optimizer change, kernels on vs
off, one platform roster vs another — and reports:

* **per-layer virtual-time deltas** — the span kinds (optimizer,
  executor, platform, movement, storage) with their summed self-times
  in each trace and the difference;
* **biggest per-span moves** — aligned spans ranked by absolute
  virtual-time delta;
* **added / removed spans** — spans with no counterpart in the other
  trace; movement hops are called out separately because a new
  ``move.java->spark`` span *is* the headline when a plan change
  introduces a cross-platform hand-off;
* **flipped candidate orderings** — enumerator ``candidate`` spans are
  re-ranked by estimated cost in each trace; platform subsets whose
  relative order changed (and any winner change) are reported.

Alignment is structural, not positional: spans pair up by
``(kind, normalised name, identity attributes)`` with an occurrence
index for repeats.  Names are normalised by collapsing ``#<digits>``
ids (``atom#12`` → ``atom#N``) because atom/op counters are
process-global and differ across runs even for identical plans.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import ValidationError

#: attributes that identify *what* a span is (as opposed to volatile
#: run-scoped ids like ``op``/``atom``/``span_id`` or measured outcomes
#: like ``output_card``/``estimated_cost_ms``/``batch_kernel``/
#: ``columnar_elided`` — the batch kernel and elision counts are what a
#: run *did*, so they must not break alignment between a compiled and
#: an interpreted trace, or a columnar-native and an egest-per-consumer
#: trace, of the same plan)
_IDENTITY_ATTRS = (
    "kind",
    "platform",
    "platforms",
    "pair",
    "kernel",
    "fused_stages",
)

_ID_PATTERN = re.compile(r"#\d+")

#: span attributes written by the resource profiler (REPRO_PROFILE=1);
#: when both traces carry them, the diff reports per-layer resource
#: deltas alongside the virtual-time ones
_RESOURCE_ATTRS = (
    "cpu_ms",
    "queue_wait_ms",
    "peak_alloc_bytes",
    "gc_pause_ms",
    "channel_bytes",
)


def load_records(path: str) -> list[dict[str, Any]]:
    """Parse a JSONL span log (one span object per non-blank line)."""
    records: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValidationError(
                    f"{path}:{lineno}: not a JSONL span log ({error})"
                ) from error
            if not isinstance(record, dict) or "name" not in record:
                raise ValidationError(
                    f"{path}:{lineno}: not a span record (missing 'name')"
                )
            records.append(record)
    return records


def _normalise_name(name: str) -> str:
    return _ID_PATTERN.sub("#N", name)


def _freeze(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    return value


def span_identity(record: dict[str, Any]) -> tuple:
    """The structural identity of a span record (occurrence-free)."""
    attributes = record.get("attributes") or {}
    identity = tuple(
        (key, _freeze(attributes[key]))
        for key in _IDENTITY_ATTRS
        if key in attributes
    )
    return (
        record.get("kind", "?"),
        _normalise_name(str(record.get("name", "?"))),
        identity,
    )


def _index(records: Iterable[dict[str, Any]]) -> dict[tuple, dict[str, Any]]:
    """Key every record by (identity, occurrence index)."""
    seen: dict[tuple, int] = {}
    indexed: dict[tuple, dict[str, Any]] = {}
    for record in records:
        identity = span_identity(record)
        occurrence = seen.get(identity, 0)
        seen[identity] = occurrence + 1
        indexed[identity + (occurrence,)] = record
    return indexed


@dataclass
class MatchedSpan:
    """One aligned span pair with its virtual-time delta."""

    key: tuple
    v_ms_a: float
    v_ms_b: float

    @property
    def delta(self) -> float:
        return self.v_ms_b - self.v_ms_a

    def describe(self) -> str:
        kind, name, identity, occurrence = self.key
        extras = ", ".join(
            f"{k}={v}" for k, v in identity if k not in ("kind",)
        )
        suffix = f" [{extras}]" if extras else ""
        nth = f" (x{occurrence + 1})" if occurrence else ""
        return f"{kind}/{name}{suffix}{nth}"


@dataclass
class CandidateFlip:
    """Two platform subsets whose cost order flipped between traces."""

    first: str
    second: str
    costs_a: tuple[float, float]
    costs_b: tuple[float, float]


@dataclass
class TraceDiff:
    """The full structural comparison of two span logs."""

    layer_totals_a: dict[str, float] = field(default_factory=dict)
    layer_totals_b: dict[str, float] = field(default_factory=dict)
    #: per-layer resource totals ({attr: {kind: total}}), present only
    #: when the trace was recorded under REPRO_PROFILE=1
    resource_totals_a: dict[str, dict[str, float]] = field(default_factory=dict)
    resource_totals_b: dict[str, dict[str, float]] = field(default_factory=dict)
    matched: list[MatchedSpan] = field(default_factory=list)
    only_in_a: list[dict[str, Any]] = field(default_factory=list)
    only_in_b: list[dict[str, Any]] = field(default_factory=list)
    candidate_flips: list[CandidateFlip] = field(default_factory=list)
    winner_a: str | None = None
    winner_b: str | None = None

    @property
    def total_a(self) -> float:
        return sum(self.layer_totals_a.values())

    @property
    def total_b(self) -> float:
        return sum(self.layer_totals_b.values())


def _layer_totals(records: Iterable[dict[str, Any]]) -> dict[str, float]:
    totals: dict[str, float] = {}
    for record in records:
        kind = record.get("kind", "?")
        totals[kind] = totals.get(kind, 0.0) + float(
            record.get("v_self_ms", 0.0)
        )
    return totals


def _resource_totals(
    records: Iterable[dict[str, Any]],
) -> dict[str, dict[str, float]]:
    """Per-layer sums of the profiler's span attributes (if any)."""
    totals: dict[str, dict[str, float]] = {}
    for record in records:
        attributes = record.get("attributes") or {}
        kind = record.get("kind", "?")
        for key in _RESOURCE_ATTRS:
            value = attributes.get(key)
            if type(value) in (int, float):
                by_kind = totals.setdefault(key, {})
                by_kind[kind] = by_kind.get(kind, 0.0) + float(value)
    return totals


def _candidate_ranking(
    records: Iterable[dict[str, Any]],
) -> dict[str, float]:
    """feasible enumerator candidates: platform-subset -> estimated cost."""
    ranking: dict[str, float] = {}
    for record in records:
        if record.get("name") != "candidate":
            continue
        attributes = record.get("attributes") or {}
        if not attributes.get("feasible"):
            continue
        platforms = attributes.get("platforms") or []
        subset = "+".join(platforms)
        cost = attributes.get("estimated_cost_ms")
        if subset and cost is not None:
            ranking[subset] = float(cost)
    return ranking


def diff_traces(
    records_a: list[dict[str, Any]], records_b: list[dict[str, Any]]
) -> TraceDiff:
    """Structurally align two span logs and compute every delta."""
    result = TraceDiff(
        layer_totals_a=_layer_totals(records_a),
        layer_totals_b=_layer_totals(records_b),
        resource_totals_a=_resource_totals(records_a),
        resource_totals_b=_resource_totals(records_b),
    )
    indexed_a = _index(records_a)
    indexed_b = _index(records_b)
    for key, record_a in indexed_a.items():
        record_b = indexed_b.get(key)
        if record_b is None:
            result.only_in_a.append(record_a)
            continue
        result.matched.append(
            MatchedSpan(
                key,
                float(record_a.get("v_ms", 0.0)),
                float(record_b.get("v_ms", 0.0)),
            )
        )
    for key, record_b in indexed_b.items():
        if key not in indexed_a:
            result.only_in_b.append(record_b)
    result.matched.sort(key=lambda m: -abs(m.delta))

    ranking_a = _candidate_ranking(records_a)
    ranking_b = _candidate_ranking(records_b)
    shared = sorted(set(ranking_a) & set(ranking_b))
    for i, first in enumerate(shared):
        for second in shared[i + 1:]:
            before = ranking_a[first] - ranking_a[second]
            after = ranking_b[first] - ranking_b[second]
            if (before < 0) != (after < 0) and before != 0 and after != 0:
                result.candidate_flips.append(
                    CandidateFlip(
                        first,
                        second,
                        (ranking_a[first], ranking_a[second]),
                        (ranking_b[first], ranking_b[second]),
                    )
                )
    if ranking_a:
        result.winner_a = min(ranking_a, key=ranking_a.get)
    if ranking_b:
        result.winner_b = min(ranking_b, key=ranking_b.get)
    return result


def _describe_record(record: dict[str, Any]) -> str:
    kind = record.get("kind", "?")
    name = record.get("name", "?")
    v_ms = float(record.get("v_ms", 0.0))
    return f"{kind}/{name} ({v_ms:.3f} virtual ms)"


def render_diff(
    diff: TraceDiff,
    label_a: str = "A",
    label_b: str = "B",
    top: int = 10,
    epsilon: float = 1e-9,
) -> str:
    """Human-readable rendering of a :class:`TraceDiff`."""
    lines: list[str] = []
    lines.append(
        f"virtual time: {label_a}={diff.total_a:.3f}ms "
        f"{label_b}={diff.total_b:.3f}ms "
        f"delta={diff.total_b - diff.total_a:+.3f}ms"
    )
    lines.append("per-layer virtual self-time:")
    for kind in sorted(set(diff.layer_totals_a) | set(diff.layer_totals_b)):
        a = diff.layer_totals_a.get(kind, 0.0)
        b = diff.layer_totals_b.get(kind, 0.0)
        marker = "" if abs(b - a) <= epsilon else "  <-- changed"
        lines.append(
            f"  {kind:<10} {a:>12.3f}ms {b:>12.3f}ms {b - a:>+12.3f}ms"
            f"{marker}"
        )

    # Resource deltas are only meaningful when both runs were profiled
    # — a missing side would render as a bogus 100% regression.
    if diff.resource_totals_a and diff.resource_totals_b:
        lines.append("per-layer resources (profiled runs):")
        for attr in _RESOURCE_ATTRS:
            by_kind_a = diff.resource_totals_a.get(attr, {})
            by_kind_b = diff.resource_totals_b.get(attr, {})
            if not by_kind_a and not by_kind_b:
                continue
            unit = "B" if attr.endswith("bytes") else "ms"
            for kind in sorted(set(by_kind_a) | set(by_kind_b)):
                a = by_kind_a.get(kind, 0.0)
                b = by_kind_b.get(kind, 0.0)
                marker = "" if abs(b - a) <= epsilon else "  <-- changed"
                lines.append(
                    f"  {kind:<10} {attr:<16} {a:>14.3f}{unit} "
                    f"{b:>14.3f}{unit} {b - a:>+14.3f}{unit}{marker}"
                )

    moved = [m for m in diff.matched if abs(m.delta) > epsilon]
    if moved:
        lines.append(f"biggest span moves (top {top}):")
        for match in moved[:top]:
            lines.append(
                f"  {match.delta:>+12.4f}ms  {match.describe()} "
                f"({match.v_ms_a:.4f} -> {match.v_ms_b:.4f})"
            )
    else:
        lines.append("matched spans: no virtual-time differences")

    movement_a = [r for r in diff.only_in_a if r.get("kind") == "movement"]
    movement_b = [r for r in diff.only_in_b if r.get("kind") == "movement"]
    if movement_a or movement_b:
        lines.append("movement hops changed:")
        for record in movement_a:
            lines.append(f"  - removed {_describe_record(record)}")
        for record in movement_b:
            lines.append(f"  + added   {_describe_record(record)}")
    other_a = [r for r in diff.only_in_a if r.get("kind") != "movement"]
    other_b = [r for r in diff.only_in_b if r.get("kind") != "movement"]
    if other_a or other_b:
        lines.append(
            f"unmatched spans: {len(other_a)} only in {label_a}, "
            f"{len(other_b)} only in {label_b}"
        )
        for record in other_a[:top]:
            lines.append(f"  - only in {label_a}: {_describe_record(record)}")
        for record in other_b[:top]:
            lines.append(f"  + only in {label_b}: {_describe_record(record)}")

    if diff.candidate_flips:
        lines.append("flipped candidate orderings:")
        for flip in diff.candidate_flips:
            lines.append(
                f"  {{{flip.first}}} vs {{{flip.second}}}: "
                f"{flip.costs_a[0]:.3f} / {flip.costs_a[1]:.3f} -> "
                f"{flip.costs_b[0]:.3f} / {flip.costs_b[1]:.3f}"
            )
    if diff.winner_a is not None or diff.winner_b is not None:
        if diff.winner_a == diff.winner_b:
            lines.append(f"enumerator winner: {{{diff.winner_a}}} (unchanged)")
        else:
            lines.append(
                f"enumerator winner: {{{diff.winner_a}}} -> "
                f"{{{diff.winner_b}}}  <-- changed"
            )
    return "\n".join(lines)


def diff_files(
    path_a: str, path_b: str, top: int = 10
) -> str:
    """Load two JSONL span logs and render their diff."""
    diff = diff_traces(load_records(path_a), load_records(path_b))
    return render_diff(diff, label_a=path_a, label_b=path_b, top=top)
