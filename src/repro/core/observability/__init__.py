"""End-to-end tracing & metrics (paper §4.2: the Executor "monitors the
progress of plan execution"; the RHEEMix feedback loop consumes exactly
this telemetry).

Public surface:

* :class:`Tracer` / :class:`Span` — hierarchical, virtual-time-aware
  spans covering application optimizer, enumerator, Executor, platform
  operators, data movement and storage transformations;
* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` — labeled series + ``snapshot()``;
* exporters — Chrome trace-event JSON (``chrome://tracing`` / Perfetto),
  JSONL span logs, Prometheus text exposition, and a pure-python
  flamegraph-style text renderer;
* :class:`ResourceProfiler` — opt-in (``REPRO_PROFILE=1``) per-atom
  real-resource attribution: CPU vs wall, peak allocation, GC pauses,
  scheduler queue wait, channel payload bytes — charged as span attrs
  and registry histograms;
* the perf-regression observatory (:mod:`.report`) — baselines vs the
  ``history.jsonl`` run record with statistical gating, behind the
  ``repro report`` CLI.

Attach a tracer via ``RheemContext(tracer=...)`` (or
``ctx.attach_tracer``); with no tracer attached nothing here is touched
— the instrumented paths allocate no spans.  Profiling is equally
opt-in: unprofiled runs allocate no probes and never start tracemalloc.
"""

from repro.core.observability.diff import (
    TraceDiff,
    diff_files,
    diff_traces,
    load_records,
    render_diff,
)
from repro.core.observability.export import (
    prometheus_text,
    span_records,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.core.observability.flame import render_flamegraph
from repro.core.observability.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    set_build_info,
)
from repro.core.observability.report import (
    PerfReport,
    build_report,
    load_baselines,
    load_history,
    render_report,
)
from repro.core.observability.resources import (
    BYTE_BUCKETS,
    PROFILE_ENV,
    AtomProbe,
    ResourceProfiler,
    profiling_enabled,
    resource_summary,
)
from repro.core.observability.server import MetricsHTTPServer
from repro.core.observability.spans import (
    KIND_EXECUTOR,
    KIND_MOVEMENT,
    KIND_OPTIMIZER,
    KIND_PLATFORM,
    KIND_STORAGE,
    KIND_TASK,
    NULL_SPAN,
    Span,
    SpanEvent,
    Tracer,
    maybe_span,
)

__all__ = [
    "AtomProbe",
    "BYTE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "KIND_EXECUTOR",
    "KIND_MOVEMENT",
    "KIND_OPTIMIZER",
    "KIND_PLATFORM",
    "KIND_STORAGE",
    "KIND_TASK",
    "MetricsRegistry",
    "MetricsHTTPServer",
    "NULL_SPAN",
    "PROFILE_ENV",
    "PerfReport",
    "ResourceProfiler",
    "Span",
    "SpanEvent",
    "TraceDiff",
    "Tracer",
    "build_report",
    "diff_files",
    "diff_traces",
    "load_baselines",
    "load_history",
    "load_records",
    "maybe_span",
    "profiling_enabled",
    "render_diff",
    "render_report",
    "prometheus_text",
    "set_build_info",
    "render_flamegraph",
    "resource_summary",
    "span_records",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]
