"""End-to-end tracing & metrics (paper §4.2: the Executor "monitors the
progress of plan execution"; the RHEEMix feedback loop consumes exactly
this telemetry).

Public surface:

* :class:`Tracer` / :class:`Span` — hierarchical, virtual-time-aware
  spans covering application optimizer, enumerator, Executor, platform
  operators, data movement and storage transformations;
* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` — labeled series + ``snapshot()``;
* exporters — Chrome trace-event JSON (``chrome://tracing`` / Perfetto),
  JSONL span logs, Prometheus text exposition, and a pure-python
  flamegraph-style text renderer.

Attach a tracer via ``RheemContext(tracer=...)`` (or
``ctx.attach_tracer``); with no tracer attached nothing here is touched
— the instrumented paths allocate no spans.
"""

from repro.core.observability.diff import (
    TraceDiff,
    diff_files,
    diff_traces,
    load_records,
    render_diff,
)
from repro.core.observability.export import (
    prometheus_text,
    span_records,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.core.observability.flame import render_flamegraph
from repro.core.observability.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.core.observability.server import MetricsHTTPServer
from repro.core.observability.spans import (
    KIND_EXECUTOR,
    KIND_MOVEMENT,
    KIND_OPTIMIZER,
    KIND_PLATFORM,
    KIND_STORAGE,
    KIND_TASK,
    NULL_SPAN,
    Span,
    SpanEvent,
    Tracer,
    maybe_span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "KIND_EXECUTOR",
    "KIND_MOVEMENT",
    "KIND_OPTIMIZER",
    "KIND_PLATFORM",
    "KIND_STORAGE",
    "KIND_TASK",
    "MetricsRegistry",
    "MetricsHTTPServer",
    "NULL_SPAN",
    "Span",
    "SpanEvent",
    "TraceDiff",
    "Tracer",
    "diff_files",
    "diff_traces",
    "load_records",
    "maybe_span",
    "render_diff",
    "prometheus_text",
    "render_flamegraph",
    "span_records",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]
