"""A Prometheus scrape endpoint over a :class:`MetricsRegistry`.

``repro serve-metrics`` (and anything embedding
:class:`MetricsHTTPServer`) exposes the observability registry in the
Prometheus text exposition format on a plain stdlib
:class:`http.server.ThreadingHTTPServer` — no third-party dependency,
no framework.

Routes:

* ``GET /metrics`` — :func:`~repro.core.observability.export.prometheus_text`
  rendered fresh per request (so a long-lived registry shows live
  counters);
* ``GET /healthz`` — ``ok`` (liveness probe);
* ``GET /`` — a tiny index page linking the above;
* anything else — 404.

The server binds lazily on :meth:`start` (``port=0`` picks a free
ephemeral port, handy for tests) and serves from a daemon thread, so it
never blocks the caller and dies with the process.  Use it as a context
manager for deterministic shutdown::

    with MetricsHTTPServer(registry, port=0) as server:
        scrape(f"http://127.0.0.1:{server.port}/metrics")
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

from repro.core.observability.export import prometheus_text

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.observability.registry import MetricsRegistry

_INDEX = (
    "<html><head><title>repro metrics</title></head><body>"
    "<h1>repro metrics</h1>"
    '<p><a href="/metrics">/metrics</a> &mdash; Prometheus text '
    "exposition</p>"
    '<p><a href="/healthz">/healthz</a> &mdash; liveness</p>'
    "</body></html>\n"
)


class _Handler(BaseHTTPRequestHandler):
    """Routes requests against the server's registry; logs nowhere."""

    server: "MetricsHTTPServer._Server"  # set by http.server machinery

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path in ("/metrics", "/metrics/"):
            body = prometheus_text(
                self.server.registry, self.server.prefix
            ).encode("utf-8")
            self._reply(200, body, "text/plain; version=0.0.4; charset=utf-8")
        elif self.path in ("/healthz", "/healthz/"):
            self._reply(200, b"ok\n", "text/plain; charset=utf-8")
        elif self.path in ("", "/"):
            self._reply(200, _INDEX.encode("utf-8"), "text/html; charset=utf-8")
        else:
            self._reply(404, b"not found\n", "text/plain; charset=utf-8")

    def _reply(self, status: int, body: bytes, content_type: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence the default stderr access log."""


class MetricsHTTPServer:
    """Serve one registry's Prometheus exposition from a daemon thread."""

    class _Server(ThreadingHTTPServer):
        daemon_threads = True
        registry: "MetricsRegistry"
        prefix: str

    def __init__(
        self,
        registry: "MetricsRegistry",
        host: str = "127.0.0.1",
        port: int = 9464,
        prefix: str = "repro_",
    ):
        self.registry = registry
        self.host = host
        self._requested_port = port
        self.prefix = prefix
        self._server: MetricsHTTPServer._Server | None = None
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is not None:
            return self._server.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsHTTPServer":
        """Bind and serve from a daemon thread; returns self."""
        if self._server is not None:
            return self
        server = self._Server((self.host, self._requested_port), _Handler)
        server.registry = self.registry
        server.prefix = self.prefix
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever, name="repro-metrics", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down and join the serving thread (idempotent)."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join()
        self._server = None
        self._thread = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "MetricsHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
