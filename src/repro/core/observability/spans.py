"""Hierarchical, virtual-time-aware tracing.

The Executor "monitors the progress of plan execution" (paper §4.2); this
module turns that monitoring into *structured telemetry*: a
:class:`Tracer` produces a tree of :class:`Span` objects covering every
layer of a run — application optimizer (logical→physical translation),
multi-platform enumerator (candidates considered, winner, reason),
Executor (atoms, retries, failovers), platform operators (per-operator
compute with kernel/fusion attribution), data movement and storage
transformation plans.

Two clocks per span
-------------------

* **wall time** — honest ``perf_counter`` timestamps, useful for finding
  interpreter overhead;
* **virtual time** — the simulated cost-model clock.  The tracer keeps a
  monotone virtual clock that advances exactly when a
  :class:`~repro.core.metrics.CostLedger` charge lands (ledgers notify
  their attached tracer), so a span's virtual duration is *by
  construction* the sum of the ledger entries recorded while it was
  open.  Per-subtree virtual durations therefore reconcile with
  ``CostLedger`` totals — the property the trace exporters and the
  integration tests rely on.

No-op fast path
---------------

Everything is opt-in: when no tracer is attached (the default), the
instrumented code paths never allocate a :class:`Span` — they test
``tracer is not None`` (or go through :func:`maybe_span`, which returns a
shared null context).  Attaching a tracer is the only way spans exist.
"""

from __future__ import annotations

import itertools
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.metrics import CostEntry
    from repro.core.observability.registry import MetricsRegistry

#: span kinds — the paper layer a span belongs to
KIND_TASK = "task"
KIND_OPTIMIZER = "optimizer"
KIND_EXECUTOR = "executor"
KIND_PLATFORM = "platform"
KIND_MOVEMENT = "movement"
KIND_STORAGE = "storage"

_ids = itertools.count(1)


@dataclass
class SpanEvent:
    """A point-in-time annotation on a span (retry, quarantine, ...)."""

    name: str
    wall_ms: float
    virtual_ms: float
    attributes: dict[str, Any] = field(default_factory=dict)


@dataclass
class Span:
    """One timed region of a traced run."""

    trace_id: str
    span_id: int
    parent_id: int | None
    name: str
    kind: str
    #: wall-clock offsets from the tracer origin, milliseconds
    wall_start: float
    wall_end: float | None = None
    #: virtual-clock offsets (cost-model milliseconds)
    v_start: float = 0.0
    v_end: float | None = None
    attributes: dict[str, Any] = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)
    #: virtual ms charged while this span was the *innermost* open span
    v_self: float = 0.0

    @property
    def wall_ms(self) -> float:
        """Wall duration (0 while still open)."""
        if self.wall_end is None:
            return 0.0
        return self.wall_end - self.wall_start

    @property
    def virtual_ms(self) -> float:
        """Virtual duration: total ledger charge while the span was open."""
        if self.v_end is None:
            return 0.0
        return self.v_end - self.v_start

    @property
    def complete(self) -> bool:
        return self.wall_end is not None

    def set(self, **attributes: Any) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span #{self.span_id} {self.name!r} kind={self.kind} "
            f"v={self.virtual_ms:.2f}ms>"
        )


class Tracer:
    """Builds one span tree per traced run.

    Single-threaded by design (the whole system is); spans nest via an
    explicit stack.  The tracer owns a
    :class:`~repro.core.observability.registry.MetricsRegistry` so that
    counters/histograms recorded anywhere in a traced run land in one
    place and export together with the spans.
    """

    def __init__(self, registry: "MetricsRegistry | None" = None):
        from repro.core.observability.registry import MetricsRegistry

        self.trace_id = f"{next(_ids):08x}"
        self.registry = registry or MetricsRegistry()
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_span_id = itertools.count(1)
        self._origin = time.perf_counter()
        #: the virtual (cost-model) clock, advanced by ledger charges
        self.v_clock = 0.0

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def _now_ms(self) -> float:
        return (time.perf_counter() - self._origin) * 1000.0

    @property
    def current(self) -> Span | None:
        """The innermost open span (None outside any span)."""
        return self._stack[-1] if self._stack else None

    def start_span(self, name: str, kind: str = KIND_EXECUTOR, /,
                   **attributes: Any) -> Span:
        """Open a span; prefer the :meth:`span` context manager."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            trace_id=self.trace_id,
            span_id=next(self._next_span_id),
            parent_id=parent,
            name=name,
            kind=kind,
            wall_start=self._now_ms(),
            v_start=self.v_clock,
            attributes=dict(attributes),
        )
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end_span(self, span: Span) -> None:
        """Close ``span`` (and anything left open below it)."""
        while self._stack:
            top = self._stack.pop()
            top.wall_end = self._now_ms()
            top.v_end = self.v_clock
            if top is span:
                return
        raise ValueError(f"span {span!r} is not open")

    @contextmanager
    def span(self, name: str, kind: str = KIND_EXECUTOR, /,
             **attributes: Any) -> Iterator[Span]:
        """``with tracer.span("atom", atom=3) as span: ...``"""
        span = self.start_span(name, kind, **attributes)
        try:
            yield span
        finally:
            self.end_span(span)

    def event(self, name: str, /, **attributes: Any) -> None:
        """Record a point event on the current span (dropped when none)."""
        span = self.current
        if span is None:
            return
        span.events.append(
            SpanEvent(name, self._now_ms(), self.v_clock, dict(attributes))
        )

    # ------------------------------------------------------------------
    # virtual clock: fed by CostLedger.charge
    # ------------------------------------------------------------------
    def record_charge(self, entry: "CostEntry") -> None:
        """Advance the virtual clock by one ledger charge.

        Called by :class:`~repro.core.metrics.CostLedger` when a tracer
        is attached; the charge accrues to the innermost open span's
        self-time (and, through clock arithmetic, to every ancestor's
        subtree time).
        """
        self.v_clock += entry.ms
        span = self.current
        if span is not None:
            span.v_self += entry.ms

    # ------------------------------------------------------------------
    # shard grafting (concurrent scheduler)
    # ------------------------------------------------------------------
    def graft(
        self,
        shard: "Tracer",
        parent: Span | None = None,
        stamp: "dict[str, Any] | None" = None,
    ) -> None:
        """Splice a completed *shard* tracer's span tree into this trace.

        The concurrent scheduler runs each task atom against a private
        shard tracer (worker threads must never touch the coordinator's
        span stack); on completion the coordinator grafts shards back in
        deterministic atom-ordinal order.  Spans are re-identified with
        this tracer's id counter, re-parented under ``parent`` (shard
        roots) and shifted onto this tracer's clocks: virtual offsets by
        the current ``v_clock`` (which then advances by the shard's
        total, exactly as if the charges had been clocked live) and wall
        offsets by the difference of origins.  ``stamp`` attributes
        (e.g. ``worker``) are applied to every grafted span.

        The grafted structure is byte-identical (modulo ``stamp``) to
        what single-threaded execution would have produced at the same
        ledger position — the property the scheduler's determinism tests
        pin down.
        """
        v_offset = self.v_clock
        wall_offset = (shard._origin - self._origin) * 1000.0
        id_map: dict[int, int] = {}
        for span in shard.spans:
            new_id = next(self._next_span_id)
            id_map[span.span_id] = new_id
            span.trace_id = self.trace_id
            span.span_id = new_id
            if span.parent_id is not None:
                span.parent_id = id_map[span.parent_id]
            elif parent is not None:
                span.parent_id = parent.span_id
            span.wall_start += wall_offset
            if span.wall_end is not None:
                span.wall_end += wall_offset
            span.v_start += v_offset
            if span.v_end is not None:
                span.v_end += v_offset
            for event in span.events:
                event.wall_ms += wall_offset
                event.virtual_ms += v_offset
            if stamp:
                span.attributes.update(stamp)
            self.spans.append(span)
        self.v_clock += shard.v_clock
        shard.spans = []
        shard._stack = []

    # ------------------------------------------------------------------
    # tree access
    # ------------------------------------------------------------------
    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(self, name: str) -> list[Span]:
        """All spans called ``name``, in start order."""
        return [s for s in self.spans if s.name == name]

    def total_virtual_ms(self) -> float:
        """Virtual time across the whole trace (= final clock value)."""
        return self.v_clock


#: shared reusable null context for the tracer-absent fast path
NULL_SPAN = nullcontext(None)


def maybe_span(tracer: Tracer | None, name: str, kind: str = KIND_EXECUTOR, /,
               **attributes: Any):
    """A span context when ``tracer`` is attached, else a shared no-op.

    The no-op branch allocates nothing (``NULL_SPAN`` is a module-level
    reusable ``nullcontext``), which is what keeps untraced runs free.
    """
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, kind, **attributes)
