"""Pure-python flamegraph-style rendering of the virtual-time span tree.

No d3, no SVG — a fixed-width text rendering where each span gets one
line, indentation encodes nesting, and a bar scaled to the *root* span's
virtual duration shows where simulated time goes::

    task                          12.50ms 100.0% ████████████████████████
      optimize                     0.00ms   0.0%
      execute                     12.50ms 100.0% ████████████████████████
        atom#3 [java]             11.20ms  89.6% █████████████████████▌

Used by ``python -m repro ... --flame`` and handy in tests/REPLs via
:func:`render_flamegraph`.
"""

from __future__ import annotations

from repro.core.observability.spans import Span, Tracer

_FULL = "█"
_HALF = "▌"


def _bar(fraction: float, width: int) -> str:
    cells = fraction * width
    full = int(cells)
    bar = _FULL * full
    if cells - full >= 0.5 and full < width:
        bar += _HALF
    return bar


def render_flamegraph(
    tracer: Tracer, width: int = 32, min_virtual_ms: float = 0.0
) -> str:
    """Render every root's subtree, bars scaled per root.

    ``min_virtual_ms`` prunes spans (and their subtrees) below a
    virtual-duration threshold — useful for large traces.
    """
    # Pre-index children to avoid O(n^2) scans on big traces.
    children: dict[int | None, list[Span]] = {}
    for span in tracer.spans:
        children.setdefault(span.parent_id, []).append(span)

    def label(span: Span) -> str:
        extra = ""
        platform = span.attributes.get("platform")
        if platform:
            extra = f" [{platform}]"
        worker = span.attributes.get("worker")
        if worker is not None:
            extra += f" w{worker}"
        return f"{span.name}{extra}"

    def resources(span: Span) -> str:
        # Profiled spans (REPRO_PROFILE=1) get a self-time vs queue-wait
        # column; unprofiled traces render exactly as before.
        cpu = span.attributes.get("cpu_ms")
        wait = span.attributes.get("queue_wait_ms")
        if cpu is None and wait is None:
            return ""
        return f"  self={float(cpu or 0.0):.2f}ms wait={float(wait or 0.0):.2f}ms"

    # First pass: collect the rendered rows (indent + label + value) so
    # the label column can adapt to the widest visible label instead of
    # truncating or over-padding at a fixed 44 characters.
    rows: list[tuple[str, float, float, str]] = []

    def walk(span: Span, depth: int, scale: float) -> None:
        v = span.virtual_ms
        if depth and v < min_virtual_ms:
            return
        fraction = (v / scale) if scale > 0 else 0.0
        rows.append(
            (f"{'  ' * depth}{label(span)}", v, fraction, resources(span))
        )
        for child in children.get(span.span_id, []):
            walk(child, depth + 1, scale)

    for root in children.get(None, []):
        scale = root.virtual_ms
        walk(root, 0, scale)
    if not rows:
        return "(empty trace)"
    column = max(24, max(len(text) for text, _, _, _ in rows))
    return "\n".join(
        f"{text:<{column}} {v:>10.3f}ms {fraction * 100:>5.1f}% "
        f"{_bar(fraction, width)}{extra}"
        for text, v, fraction, extra in rows
    )
