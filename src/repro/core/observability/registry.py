"""Named metrics: counters, gauges and histograms with labeled series.

A :class:`MetricsRegistry` is the single bookkeeping surface for run
telemetry — :class:`~repro.core.metrics.ExecutionMetrics` is a *view*
over one (its counters are properties reading/writing registry series),
and the exporters render a registry in Prometheus text exposition
format.

All three instrument types support labels::

    registry.counter("atoms_executed").inc()
    registry.histogram("movement_ms").observe(4.2, pair="java->spark")

Series are keyed by the sorted label items, so
``observe(1, a="x", b="y")`` and ``observe(1, b="y", a="x")`` hit the
same series.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Iterable

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value (per label set)."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.series: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative inc {amount}")
        key = _label_key(labels)
        self.series[key] = self.series.get(key, 0.0) + amount

    def set(self, value: float, **labels: Any) -> None:
        """Force a value (ExecutionMetrics-view plumbing, not public API)."""
        self.series[_label_key(labels)] = float(value)

    def value(self, **labels: Any) -> float:
        return self.series.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every label set."""
        return sum(self.series.values())


class Gauge(Counter):
    """A value that can go up and down."""

    kind = "gauge"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        self.series[key] = self.series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)


#: default histogram buckets — virtual-ms scale, roughly exponential
DEFAULT_BUCKETS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0,
)


@dataclass
class HistogramSeries:
    """One label set's bucketed observations."""

    bounds: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    n: int = 0
    #: smallest / largest observed values (exact, tracked alongside the
    #: buckets so quantiles can be clamped to the observed range)
    vmin: float = math.inf
    vmax: float = -math.inf

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        # bisect_left keeps the Prometheus ``le`` convention: a value
        # equal to a bucket bound lands in that bucket (closed upper).
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.n += 1
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate of the observations.

        Walks the cumulative bucket counts to the bucket containing the
        ``q``-th observation and returns its upper bound, clamped to the
        exact observed ``[vmin, vmax]`` range.  Consequences worth
        spelling out (they are what the adaptive p90 drift trigger
        relies on):

        * **empty** series -> ``0.0`` (no evidence, no drift);
        * **single sample** -> the sample itself (clamping beats the
          bucket bound);
        * **all-equal** samples -> exactly that value, at any ``q``;
        * overflow bucket (beyond the last bound) -> ``vmax``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile fraction must be in [0, 1], got {q}")
        if self.n == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.n))
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank:
                if index < len(self.bounds):
                    upper = self.bounds[index]
                else:  # overflow bucket: only the exact max is known
                    upper = self.vmax
                return min(max(upper, self.vmin), self.vmax)
        return self.vmax  # pragma: no cover - counts always sum to n


class Histogram:
    """Bucketed distribution (per label set)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Iterable[float] | None = None):
        self.name = name
        self.help = help
        self.bounds = tuple(sorted(buckets)) if buckets else DEFAULT_BUCKETS
        self.series: dict[LabelKey, HistogramSeries] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        series = self.series.get(key)
        if series is None:
            series = self.series[key] = HistogramSeries(self.bounds)
        series.observe(value)

    def count(self, **labels: Any) -> int:
        series = self.series.get(_label_key(labels))
        return series.n if series else 0

    def sum(self, **labels: Any) -> float:
        series = self.series.get(_label_key(labels))
        return series.total if series else 0.0

    def quantile(self, q: float, **labels: Any) -> float:
        """Bucket-resolution quantile for one label set (0.0 if empty).

        See :meth:`HistogramSeries.quantile` for the edge-case
        contract (empty / single-sample / all-equal / overflow).
        """
        series = self.series.get(_label_key(labels))
        return series.quantile(q) if series else 0.0


class MetricsRegistry:
    """Create-on-first-use registry of named instruments."""

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, cls, name: str, help: str, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, help, **kwargs)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls) or (
            cls is Counter and isinstance(instrument, Gauge)
        ):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, requested {cls.__name__}"
            )
        if help and not instrument.help:
            instrument.help = help
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] | None = None) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def instruments(self) -> list[Counter | Gauge | Histogram]:
        return [self._instruments[k] for k in sorted(self._instruments)]

    # ------------------------------------------------------------------
    def merge_from(
        self,
        other: "MetricsRegistry",
        extra_labels: "dict[str, Any] | None" = None,
    ) -> None:
        """Fold another registry's series into this one.

        The concurrent scheduler gives each in-flight task atom a private
        shard registry; on completion the coordinator merges shards back
        deterministically (atom-ordinal order).  Counters and gauges add
        per label set; histograms add bucket counts, totals and sample
        counts (bucket bounds must match — shards are created by the same
        code paths, so they do).

        ``extra_labels`` stamps every merged series with additional
        labels (the serving daemon folds per-query registries into its
        process registry with ``{"tenant": ...}``, keeping tenants'
        series disjoint).
        """
        for name, instrument in other._instruments.items():
            if isinstance(instrument, Histogram):
                mine = self.histogram(name, instrument.help,
                                      buckets=instrument.bounds)
                for key, series in instrument.series.items():
                    key = _extend_key(key, extra_labels)
                    target = mine.series.get(key)
                    if target is None:
                        target = mine.series[key] = HistogramSeries(mine.bounds)
                    if target.bounds != series.bounds:
                        raise ValueError(
                            f"histogram {name!r}: cannot merge series with "
                            "mismatched bucket bounds"
                        )
                    for i, count in enumerate(series.counts):
                        target.counts[i] += count
                    target.total += series.total
                    target.n += series.n
                    target.vmin = min(target.vmin, series.vmin)
                    target.vmax = max(target.vmax, series.vmax)
            else:
                mine = (
                    self.gauge(name, instrument.help)
                    if isinstance(instrument, Gauge)
                    else self.counter(name, instrument.help)
                )
                for key, value in instrument.series.items():
                    key = _extend_key(key, extra_labels)
                    mine.series[key] = mine.series.get(key, 0.0) + value

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, dict[str, Any]]:
        """A plain-data dump of every series (JSON-serialisable).

        Shape: ``{name: {"type": ..., "series": {label_repr: value}}}``
        where histogram values are ``{"count", "sum", "mean"}`` dicts.
        """
        out: dict[str, dict[str, Any]] = {}
        for instrument in self.instruments():
            series: dict[str, Any] = {}
            if isinstance(instrument, Histogram):
                for key, h in sorted(instrument.series.items()):
                    series[_render_labels(key)] = {
                        "count": h.n, "sum": h.total, "mean": h.mean,
                    }
            else:
                for key, value in sorted(instrument.series.items()):
                    series[_render_labels(key)] = value
            out[instrument.name] = {"type": instrument.kind, "series": series}
        return out


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    return ",".join(f"{k}={v}" for k, v in key)


def _extend_key(key: LabelKey, extra: "dict[str, Any] | None") -> LabelKey:
    """Add ``extra`` labels to a series key (extra wins on collision)."""
    if not extra:
        return key
    merged = dict(key)
    merged.update((k, str(v)) for k, v in extra.items())
    return tuple(sorted(merged.items()))


def set_build_info(
    registry: MetricsRegistry,
    name: str = "run_info",
    help: str = "build identity of the serving process",
    **labels: Any,
) -> None:
    """(Re-)register an info-style gauge with exactly one series.

    Info gauges carry their payload in *labels* (value pinned to 1), so
    a plain ``gauge().set(1, **labels)`` on a restart with different
    labels would accrete a second, stale series — every label set keys
    its own series.  This helper makes registration idempotent: prior
    series are dropped and exactly one remains, with the latest labels.
    """
    gauge = registry.gauge(name, help)
    gauge.series.clear()
    gauge.set(1, **labels)
