"""Per-atom real-resource profiling (opt-in).

The tracer and cost ledger account *virtual* time — the optimizer's
currency.  This module attaches *real* resource attribution to every
atom span when profiling is enabled (``REPRO_PROFILE=1`` or
``Executor(profile=True)``):

* ``cpu_ms`` — per-thread CPU time over the atom (``time.thread_time``),
  contrasted with the span's wall time to expose blocking;
* ``queue_wait_ms`` — dispatch-to-start latency measured by the
  concurrent scheduler (0.0 on the sequential path);
* ``peak_alloc_bytes`` — peak ``tracemalloc`` allocation delta over the
  atom.  Exact when atoms run sequentially; an upper-bound approximation
  when worker threads interleave (tracemalloc's peak is process-wide);
* ``gc_pause_ms`` / ``gc_collections`` — cyclic-GC pauses attributed to
  the atom that triggered them (collections run on the triggering
  thread while it holds the GIL, so pauses are stop-the-world);
* ``channel_bytes`` — payload bytes of the atom's output channels:
  exact buffer bytes for columnar hand-offs, a sampled row estimate for
  collection channels.

The same figures are observed into the metrics registry
(``atom_cpu_ms``, ``atom_queue_wait_ms``, ``atom_rss_peak_bytes``,
``gc_pause_ms``, ``channel_bytes``, plus ``shm_bytes`` for process-mode
shared-memory exports) so they flow through the Prometheus
exposition and shard-merge paths, and the span attrs ride the existing
Chrome-trace/JSONL exporters and the run journal untouched.

When profiling is off the executor holds no profiler and every hook is
an ``is None`` check — zero allocation, no tracemalloc, no GC callback;
enforced by tests exactly like the tracer's no-op fast path.
"""

from __future__ import annotations

import gc
import os
import time
import tracemalloc
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.observability.registry import MetricsRegistry
    from repro.core.observability.spans import Span

#: environment flag enabling profiling (same convention as the other
#: REPRO_* flags: "1"/"true"/"yes"/"on")
PROFILE_ENV = "REPRO_PROFILE"

_TRUTHY = ("1", "true", "yes", "on")


def profiling_enabled(default: bool = False) -> bool:
    """Whether ``REPRO_PROFILE`` asks for per-atom resource profiling."""
    raw = os.environ.get(PROFILE_ENV)
    if raw is None:
        return default
    return raw.strip().lower() in _TRUTHY


#: histogram buckets for byte-scale metrics (256 B .. 256 MiB); the
#: registry default buckets are virtual-ms scale and useless for sizes
BYTE_BUCKETS = (
    256.0,
    1024.0,
    4096.0,
    16384.0,
    65536.0,
    262144.0,
    1048576.0,
    4194304.0,
    16777216.0,
    67108864.0,
    268435456.0,
)

#: histogram buckets for real-millisecond metrics (sub-ms resolution at
#: the low end — atoms are fast; the virtual-ms defaults start at 0.1)
REAL_MS_BUCKETS = (
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    50.0,
    100.0,
    500.0,
    1000.0,
    5000.0,
)


class _GcMonitor:
    """Process-wide cyclic-GC pause accumulator.

    A single callback on ``gc.callbacks`` accumulates total pause
    milliseconds and collection count.  CPython runs a collection on the
    thread that triggered it while holding the GIL, so start/stop pairs
    never interleave across threads and one pending-start slot suffices.
    Atom probes snapshot the totals and charge the delta to whichever
    atom was running on the triggering thread.
    """

    def __init__(self) -> None:
        self.pause_ms = 0.0
        self.collections = 0
        self._pending_start = 0.0
        self._installed = False

    def install(self) -> None:
        if not self._installed:
            gc.callbacks.append(self._on_gc)
            self._installed = True

    def uninstall(self) -> None:
        if self._installed:
            try:
                gc.callbacks.remove(self._on_gc)
            except ValueError:  # pragma: no cover - already removed
                pass
            self._installed = False

    def _on_gc(self, phase: str, info: dict) -> None:
        if phase == "start":
            self._pending_start = time.perf_counter()
        elif phase == "stop":
            self.pause_ms += (time.perf_counter() - self._pending_start) * 1e3
            self.collections += 1

    def snapshot(self) -> tuple[float, int]:
        return self.pause_ms, self.collections


class AtomProbe:
    """Resource snapshot taken at atom start, finalised at atom end.

    One probe per atom execution, allocated only when profiling is on.
    """

    __slots__ = (
        "queue_wait_ms",
        "channel_bytes",
        "_cpu_start",
        "_alloc_start",
        "_gc_pause_start",
        "_gc_count_start",
    )

    def __init__(
        self,
        queue_wait_ms: float,
        cpu_start: float,
        alloc_start: int,
        gc_pause_start: float,
        gc_count_start: int,
    ) -> None:
        self.queue_wait_ms = queue_wait_ms
        self.channel_bytes = 0
        self._cpu_start = cpu_start
        self._alloc_start = alloc_start
        self._gc_pause_start = gc_pause_start
        self._gc_count_start = gc_count_start


class ResourceProfiler:
    """Samples real resources around each atom and charges span + registry.

    Constructing a profiler starts ``tracemalloc`` (if not already
    tracing) and installs the GC pause monitor; both are process-wide
    and shared by worker threads.  The profiler itself is stateless per
    atom — each execution gets its own :class:`AtomProbe`.
    """

    def __init__(self) -> None:
        self._started_tracemalloc = False
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self._gc = _GcMonitor()
        self._gc.install()

    def close(self) -> None:
        """Detach process-wide hooks (tests; optional in normal runs)."""
        self._gc.uninstall()
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracemalloc = False

    # ------------------------------------------------------------------
    def start_atom(self, queue_wait_ms: float = 0.0) -> AtomProbe:
        """Snapshot resources at atom start (on the executing thread)."""
        current, _peak = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        gc_pause, gc_count = self._gc.snapshot()
        return AtomProbe(
            queue_wait_ms=queue_wait_ms,
            cpu_start=time.thread_time(),
            alloc_start=current,
            gc_pause_start=gc_pause,
            gc_count_start=gc_count,
        )

    def finish_atom(
        self,
        probe: AtomProbe,
        span: "Span | None",
        registry: "MetricsRegistry",
        platform: str,
    ) -> None:
        """Finalise the probe: set span attrs, observe registry histograms.

        Must run on the same thread that called :meth:`start_atom` (the
        executor guarantees this — the probe lives inside one
        ``_run_task_atom`` call).
        """
        cpu_ms = (time.thread_time() - probe._cpu_start) * 1e3
        _current, peak = tracemalloc.get_traced_memory()
        peak_alloc = max(0, peak - probe._alloc_start)
        gc_pause, gc_count = self._gc.snapshot()
        gc_pause_ms = gc_pause - probe._gc_pause_start
        gc_collections = gc_count - probe._gc_count_start
        if span is not None:
            span.set(
                cpu_ms=cpu_ms,
                queue_wait_ms=probe.queue_wait_ms,
                peak_alloc_bytes=peak_alloc,
                gc_pause_ms=gc_pause_ms,
                gc_collections=gc_collections,
                channel_bytes=probe.channel_bytes,
            )
        registry.histogram(
            "atom_cpu_ms",
            "per-atom CPU time (thread_time) in real milliseconds",
            buckets=REAL_MS_BUCKETS,
        ).observe(cpu_ms, platform=platform)
        registry.histogram(
            "atom_queue_wait_ms",
            "scheduler dispatch-to-start latency in real milliseconds",
            buckets=REAL_MS_BUCKETS,
        ).observe(probe.queue_wait_ms, platform=platform)
        registry.histogram(
            "atom_rss_peak_bytes",
            "peak tracemalloc allocation delta per atom in bytes",
            buckets=BYTE_BUCKETS,
        ).observe(float(peak_alloc), platform=platform)
        registry.histogram(
            "gc_pause_ms",
            "cyclic-GC pause milliseconds attributed to the atom",
            buckets=REAL_MS_BUCKETS,
        ).observe(gc_pause_ms, platform=platform)

    # ------------------------------------------------------------------
    def record_channel(
        self,
        probe: AtomProbe,
        nbytes: int,
        registry: "MetricsRegistry",
        platform: str,
    ) -> None:
        """Charge one output channel's payload bytes to the atom."""
        probe.channel_bytes += nbytes
        registry.histogram(
            "channel_bytes",
            "payload bytes per output channel (exact for columnar, "
            "sampled row estimate otherwise)",
            buckets=BYTE_BUCKETS,
        ).observe(float(nbytes), platform=platform)


def record_shm_bytes(
    registry: "MetricsRegistry", nbytes: int, platform: str
) -> None:
    """Observe one shared-memory segment export (process mode).

    ``nbytes`` is the exported channel's exact :meth:`payload_bytes` —
    the segment size — so ``shm_bytes`` totals reconcile byte-for-byte
    against ``channel_bytes`` for columnar outputs, which is how the
    zero-pickle transport claim is asserted.  Module-level (not a
    profiler method): workers call it on their shard registry, and the
    shard merge carries it into the main registry like every other
    resource series.
    """
    registry.histogram(
        "shm_bytes",
        "bytes per columnar channel exported to a shared-memory segment",
        buckets=BYTE_BUCKETS,
    ).observe(float(nbytes), platform=platform)


def resource_summary(registry: "MetricsRegistry") -> dict[str, dict]:
    """Aggregate resource histogram totals from a registry, for benches.

    Returns ``{metric: {"n": ..., "total": ..., "max": ...}}`` for each
    resource histogram that saw observations, summed across label sets.
    Empty dict when the run was not profiled.
    """
    out: dict[str, dict] = {}
    for name in (
        "atom_cpu_ms",
        "atom_queue_wait_ms",
        "atom_rss_peak_bytes",
        "gc_pause_ms",
        "channel_bytes",
        "shm_bytes",
    ):
        if name not in registry:
            continue
        hist = registry.histogram(name)
        n = 0
        total = 0.0
        vmax = 0.0
        for series in hist.series.values():
            n += series.n
            total += series.total
            if series.n and series.vmax > vmax:
                vmax = series.vmax
        if n:
            out[name] = {"n": n, "total": total, "max": vmax}
    return out
