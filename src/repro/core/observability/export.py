"""Trace and metrics exporters.

Three wire formats plus a human-facing renderer (see
:mod:`repro.core.observability.flame`):

* **Chrome trace-event JSON** — loadable in ``chrome://tracing`` or
  Perfetto.  The timeline is *virtual time* (cost-model ms rendered as
  trace µs), one thread row per paper layer, so optimize → enumerate →
  atom → operator → movement nesting is visible at a glance.
* **JSONL span log** — one JSON object per span, append-friendly,
  trivially greppable / pandas-loadable for offline analysis.
* **Prometheus text exposition** — the metrics registry rendered in the
  ``# HELP`` / ``# TYPE`` / sample-line format scrapers understand.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.observability.registry import (
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.core.observability.spans import Span, Tracer

#: stable thread-row ids per span kind (Chrome sorts rows by tid)
_KIND_TIDS = {
    "task": 0,
    "optimizer": 1,
    "executor": 2,
    "platform": 3,
    "movement": 4,
    "storage": 5,
}


#: tid base for per-worker rows (concurrent scheduler): worker w → 100+w
_WORKER_TID_BASE = 100


def _tid(span: Span) -> int:
    """Thread row for a span.

    Spans stamped with a ``worker`` attribute (grafted from the
    concurrent scheduler's shard tracers) get their own lane —
    ``100 + worker`` — so parallel atom execution renders as genuinely
    parallel tracks instead of overlapping boxes on one row.  Everything
    else keeps the per-layer row of its kind.
    """
    worker = span.attributes.get("worker")
    if isinstance(worker, int):
        return _WORKER_TID_BASE + worker
    return _KIND_TIDS.get(span.kind, 9)


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------
def to_chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """Render the span tree as a Chrome trace-event document.

    Complete (``"ph": "X"``) events on the virtual timeline: ``ts`` and
    ``dur`` are the span's virtual start/duration in microseconds (1
    virtual ms = 1000 trace µs), so subtree durations in the viewer sum
    to the run's ``CostLedger`` totals.  Wall durations ride along in
    ``args``.  Span events become instant (``"ph": "i"``) events.
    """
    events: list[dict[str, Any]] = [
        {
            "ph": "M", "pid": 1, "tid": 0, "name": "process_name",
            "args": {"name": f"repro trace {tracer.trace_id} (virtual time)"},
        },
    ]
    for kind, tid in sorted(_KIND_TIDS.items(), key=lambda kv: kv[1]):
        events.append({
            "ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
            "args": {"name": kind},
        })
    workers = sorted({
        w for s in tracer.spans
        if isinstance(w := s.attributes.get("worker"), int)
    })
    for worker in workers:
        events.append({
            "ph": "M", "pid": 1, "tid": _WORKER_TID_BASE + worker,
            "name": "thread_name",
            "args": {"name": f"worker-{worker}"},
        })
    for span in tracer.spans:
        if not span.complete:
            continue
        args = dict(_json_safe(span.attributes))
        args.update({
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "wall_ms": round(span.wall_ms, 3),
            "v_self_ms": round(span.v_self, 4),
        })
        events.append({
            "ph": "X",
            "pid": 1,
            "tid": _tid(span),
            "name": span.name,
            "cat": span.kind,
            "ts": span.v_start * 1000.0,
            "dur": span.virtual_ms * 1000.0,
            "args": args,
        })
        for point in span.events:
            events.append({
                "ph": "i",
                "pid": 1,
                "tid": _tid(span),
                "name": point.name,
                "cat": span.kind,
                "s": "t",
                "ts": point.virtual_ms * 1000.0,
                "args": dict(_json_safe(point.attributes)),
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_id": tracer.trace_id,
            "virtual_total_ms": tracer.total_virtual_ms(),
        },
    }


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    """Write :func:`to_chrome_trace` output to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(tracer), handle, indent=1)


# ----------------------------------------------------------------------
# JSONL span log
# ----------------------------------------------------------------------
def span_records(tracer: Tracer) -> list[dict[str, Any]]:
    """One plain dict per span (the JSONL rows)."""
    records = []
    for span in tracer.spans:
        records.append({
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "kind": span.kind,
            "v_start_ms": span.v_start,
            "v_ms": span.virtual_ms,
            "v_self_ms": span.v_self,
            "wall_ms": round(span.wall_ms, 3),
            "complete": span.complete,
            "attributes": _json_safe(span.attributes),
            "events": [
                {"name": e.name, "v_ms": e.virtual_ms,
                 "attributes": _json_safe(e.attributes)}
                for e in span.events
            ],
        })
    return records


def to_jsonl(tracer: Tracer) -> str:
    """The whole trace as newline-delimited JSON (one span per line)."""
    return "\n".join(json.dumps(r) for r in span_records(tracer)) + "\n"


def write_jsonl(tracer: Tracer, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_jsonl(tracer))


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _prom_labels(key: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{_prom_name(k)}="{v}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(registry: MetricsRegistry, prefix: str = "repro_") -> str:
    """Render a registry in Prometheus text exposition format."""
    lines: list[str] = []
    for instrument in registry.instruments():
        name = prefix + _prom_name(instrument.name)
        if instrument.help:
            lines.append(f"# HELP {name} {instrument.help}")
        lines.append(f"# TYPE {name} {instrument.kind}")
        if isinstance(instrument, Histogram):
            for key, series in sorted(instrument.series.items()):
                cumulative = 0
                for bound, count in zip(series.bounds, series.counts):
                    cumulative += count
                    labels = _prom_labels(key, f'le="{bound}"')
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                labels = _prom_labels(key, 'le="+Inf"')
                lines.append(f"{name}_bucket{labels} {series.n}")
                lines.append(f"{name}_sum{_prom_labels(key)} {series.total}")
                lines.append(f"{name}_count{_prom_labels(key)} {series.n}")
        else:
            kind = "gauge" if isinstance(instrument, Gauge) else "counter"
            assert kind == instrument.kind
            for key, value in sorted(instrument.series.items()):
                lines.append(f"{name}{_prom_labels(key)} {value}")
    return "\n".join(lines) + "\n"


def write_prometheus(registry: MetricsRegistry, path: str,
                     prefix: str = "repro_") -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(registry, prefix))
