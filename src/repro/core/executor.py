"""The Executor (paper §4.2, Figure 1).

Responsible for "(i) scheduling the resulting execution plan on the
selected data processing frameworks, (ii) monitoring the progress of plan
execution, (iii) coping with failures, and (iv) aggregating and returning
results to users".

Concretely: task atoms run in dependency order on their assigned
platforms; channel hand-offs between platforms are priced by the movement
cost model; failed atoms are retried up to ``max_retries`` times; loop
atoms iterate their body plans with loop-invariant source caching; and
all virtual-time charges are aggregated into
:class:`~repro.core.metrics.ExecutionMetrics`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.channels import CollectionChannel
from repro.core.execution.plan import ExecutionPlan, LoopAtom, TaskAtom
from repro.core.listeners import (
    ATOM_FINISHED,
    ATOM_RETRIED,
    ATOM_STARTED,
    EXECUTION_FINISHED,
    EXECUTION_STARTED,
    LOOP_ITERATION,
    ExecutionEvent,
    ExecutionListener,
)
from repro.core.metrics import CardinalityMisestimate, ExecutionMetrics
from repro.core.optimizer.cost import MovementCostModel
from repro.core.runtime import RuntimeContext
from repro.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover
    from repro.platforms.base import Platform


@dataclass
class ExecutionResult:
    """Plan outputs (per collect-sink operator id) plus run metrics."""

    outputs: dict[int, list[Any]]
    metrics: ExecutionMetrics

    @property
    def single(self) -> list[Any]:
        """The output when the plan has exactly one collect sink."""
        if len(self.outputs) != 1:
            raise ExecutionError(
                f"plan has {len(self.outputs)} collect sinks; use .outputs"
            )
        return next(iter(self.outputs.values()))


class Executor:
    """Schedules, monitors and retries task atoms."""

    def __init__(
        self,
        movement: MovementCostModel | None = None,
        max_retries: int = 2,
        listeners: list[ExecutionListener] | None = None,
    ):
        self.movement = movement or MovementCostModel()
        self.max_retries = max_retries
        self.listeners: list[ExecutionListener] = list(listeners or [])

    def add_listener(self, listener: ExecutionListener) -> None:
        """Attach a monitoring listener (see repro.core.listeners)."""
        self.listeners.append(listener)

    def _emit(self, kind: str, **details) -> None:
        if not self.listeners:
            return
        event = ExecutionEvent(kind, details)
        for listener in self.listeners:
            listener.on_event(event)

    def execute(
        self, plan: ExecutionPlan, runtime: RuntimeContext | None = None
    ) -> ExecutionResult:
        """Run an execution plan and aggregate its results."""
        runtime = runtime or RuntimeContext()
        metrics = ExecutionMetrics()
        started = time.perf_counter()

        platforms = plan.platforms
        models = {p.name: p.cost_model for p in platforms}
        self._emit(
            EXECUTION_STARTED,
            atoms=len(plan.atoms),
            platforms=[p.name for p in platforms],
        )
        for platform in platforms:
            metrics.ledger.charge(
                "startup", platform.cost_model.startup_ms(), platform.name
            )

        channels: dict[int, CollectionChannel] = {}
        self._estimates = plan.estimates
        self._run_atoms(plan, channels, runtime, metrics, models,
                        top_level=True)

        outputs = {}
        for sink in plan.collect_sinks:
            if sink.id not in channels:
                raise ExecutionError(
                    f"collect sink {sink!r} produced no channel"
                )
            outputs[sink.id] = channels[sink.id].data
        metrics.wall_ms = (time.perf_counter() - started) * 1000.0
        self._emit(
            EXECUTION_FINISHED,
            virtual_ms=metrics.virtual_ms,
            wall_ms=metrics.wall_ms,
            atoms_executed=metrics.atoms_executed,
            retries=metrics.retries,
        )
        return ExecutionResult(outputs, metrics)

    # ------------------------------------------------------------------
    def _run_atoms(
        self,
        plan: ExecutionPlan,
        channels: dict[int, CollectionChannel],
        runtime: RuntimeContext,
        metrics: ExecutionMetrics,
        models: dict[str, Any],
        top_level: bool = False,
    ) -> None:
        for ordinal, atom in enumerate(plan.atoms):
            # Checkpointing applies to top-level atoms only: loop bodies
            # re-run every iteration by design.
            checkpointable = top_level and runtime.checkpoint is not None
            if checkpointable and self._restore_atom(
                ordinal, atom, channels, runtime, metrics
            ):
                continue
            if isinstance(atom, LoopAtom):
                self._run_loop_atom(atom, channels, runtime, metrics, models)
            else:
                self._run_task_atom(atom, channels, runtime, metrics, models)
            if checkpointable:
                self._save_atom(ordinal, atom, channels, runtime, metrics)

    def _restore_atom(
        self,
        ordinal: int,
        atom: TaskAtom | LoopAtom,
        channels: dict[int, CollectionChannel],
        runtime: RuntimeContext,
        metrics: ExecutionMetrics,
    ) -> bool:
        """Restore an atom's outputs from the checkpoint store, if all
        of them are present; returns True when the atom can be skipped."""
        checkpoint = runtime.checkpoint
        output_ids = sorted(atom.output_ids)
        if not output_ids:
            return False
        if not all(checkpoint.has(ordinal, i) for i in range(len(output_ids))):
            return False
        for index, op_id in enumerate(output_ids):
            data, cost = checkpoint.load(ordinal, index)
            channels[op_id] = CollectionChannel(data, atom.platform.name)
            metrics.ledger.charge(
                "checkpoint.restore", cost, atom.platform.name, atom.id
            )
        metrics.atoms_skipped += 1
        self._emit(
            ATOM_FINISHED,
            atom=atom.id,
            platform=atom.platform.name,
            virtual_ms=0.0,
            restored_from_checkpoint=True,
        )
        return True

    def _save_atom(
        self,
        ordinal: int,
        atom: TaskAtom | LoopAtom,
        channels: dict[int, CollectionChannel],
        runtime: RuntimeContext,
        metrics: ExecutionMetrics,
    ) -> None:
        checkpoint = runtime.checkpoint
        for index, op_id in enumerate(sorted(atom.output_ids)):
            cost = checkpoint.save(ordinal, index, channels[op_id].data)
            metrics.ledger.charge(
                "checkpoint.save", cost, atom.platform.name, atom.id
            )

    def _charge_movement(
        self,
        channel: CollectionChannel,
        consumer: "Platform",
        metrics: ExecutionMetrics,
        models: dict[str, Any],
        atom_id: int,
    ) -> None:
        producer_model = models.get(channel.producer_platform)
        if producer_model is None or producer_model is consumer.cost_model:
            return
        ms = self.movement.transfer_ms(
            producer_model, consumer.cost_model, float(len(channel))
        )
        if ms:
            metrics.ledger.charge(
                f"move.{channel.producer_platform}->{consumer.name}",
                ms,
                consumer.name,
                atom_id,
            )

    def _run_task_atom(
        self,
        atom: TaskAtom,
        channels: dict[int, CollectionChannel],
        runtime: RuntimeContext,
        metrics: ExecutionMetrics,
        models: dict[str, Any],
    ) -> None:
        external: dict[tuple[int, int], list[Any]] = {}
        for (consumer_id, slot), producer_id in atom.external_inputs.items():
            try:
                channel = channels[producer_id]
            except KeyError:
                raise ExecutionError(
                    f"atom #{atom.id}: producer {producer_id} has no channel "
                    "(atom ordering bug)"
                ) from None
            self._charge_movement(channel, atom.platform, metrics, models, atom.id)
            external[(consumer_id, slot)] = channel.data

        self._emit(ATOM_STARTED, atom=atom.id, platform=atom.platform.name,
                   operators=len(atom.fragment))
        outputs, ledger = self._attempt_with_retries(atom, external, runtime, metrics)
        metrics.ledger.merge(ledger)
        metrics.atoms_executed += 1
        self._emit(
            ATOM_FINISHED,
            atom=atom.id,
            platform=atom.platform.name,
            virtual_ms=ledger.total_ms,
        )
        for op_id, data in outputs.items():
            channels[op_id] = CollectionChannel(data, atom.platform.name)
            self._check_estimate(op_id, len(data), metrics)

    #: observed/estimated ratio beyond which an estimate counts as wrong
    MISESTIMATE_FACTOR = 4.0

    def _check_estimate(
        self, op_id: int, observed: int, metrics: ExecutionMetrics
    ) -> None:
        """Record estimates the observation contradicts (feedback the
        paper's execution monitoring enables; adaptive re-optimization
        would consume exactly this signal)."""
        estimated = getattr(self, "_estimates", {}).get(op_id)
        if estimated is None:
            return
        report = CardinalityMisestimate(op_id, estimated, observed)
        if report.factor >= self.MISESTIMATE_FACTOR:
            metrics.misestimates.append(report)

    def _attempt_with_retries(
        self,
        atom: TaskAtom,
        external: dict[tuple[int, int], list[Any]],
        runtime: RuntimeContext,
        metrics: ExecutionMetrics,
    ):
        injector = runtime.failure_injector
        ordinal = injector.next_atom() if injector is not None else None
        last_error: Exception | None = None
        for _attempt in range(self.max_retries + 1):
            try:
                if injector is not None:
                    injector.check(ordinal)
                return atom.platform.execute_atom(atom, external, runtime)
            except ExecutionError as error:
                last_error = error
                metrics.retries += 1
                self._emit(
                    ATOM_RETRIED,
                    atom=atom.id,
                    platform=atom.platform.name,
                    attempt=_attempt + 1,
                    error=str(error),
                )
        # The final retry also counts one increment too many; correct it.
        metrics.retries -= 1
        raise ExecutionError(
            f"atom #{atom.id} on {atom.platform.name!r} failed after "
            f"{self.max_retries + 1} attempts: {last_error}"
        )

    def _run_loop_atom(
        self,
        atom: LoopAtom,
        channels: dict[int, CollectionChannel],
        runtime: RuntimeContext,
        metrics: ExecutionMetrics,
        models: dict[str, Any],
    ) -> None:
        repeat = atom.repeat
        try:
            state_channel = channels[atom.state_producer_id]
        except KeyError:
            raise ExecutionError(
                f"loop atom #{atom.id}: initial state channel missing"
            ) from None
        self._charge_movement(state_channel, atom.platform, metrics, models, atom.id)
        state = list(state_channel.data)

        previous_caching = runtime.caching_enabled
        runtime.caching_enabled = True
        try:
            bound = (
                repeat.times if repeat.times is not None else repeat.max_iterations
            )
            for _iteration in range(bound):
                metrics.ledger.charge(
                    "loop.sync",
                    atom.platform.cost_model.loop_iteration_ms(),
                    atom.platform.name,
                    atom.id,
                )
                runtime.bound_sources[repeat.body_input.id] = state
                body_channels: dict[int, CollectionChannel] = {}
                self._run_atoms(
                    atom.body_plan, body_channels, runtime, metrics, models
                )
                try:
                    state = body_channels[repeat.body_output.id].data
                except KeyError:
                    raise ExecutionError(
                        f"loop atom #{atom.id}: body produced no output channel"
                    ) from None
                metrics.loop_iterations += 1
                self._emit(
                    LOOP_ITERATION,
                    atom=atom.id,
                    platform=atom.platform.name,
                    iteration=metrics.loop_iterations,
                    state_card=len(state),
                )
                if repeat.condition is not None and repeat.condition(state):
                    break
        finally:
            runtime.caching_enabled = previous_caching
            runtime.bound_sources.pop(repeat.body_input.id, None)
        channels[repeat.id] = CollectionChannel(state, atom.platform.name)
